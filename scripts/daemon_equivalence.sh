#!/usr/bin/env bash
# Daemon equivalence gate: the same edit script driven through every
# transport — batch `mcheck`, `mcheckd check` against a persistent hot
# daemon, and `mcheck --watch --daemon-socket` as a thin client — must
# surface identical report fingerprints at every step. The daemon stays up
# across the whole script, so its in-memory red/green state is exercised
# by the edit and the revert; a fingerprint that appears or disappears on
# one transport only means the daemon's incremental state diverged from a
# cold check.
#
# Usage: scripts/daemon_equivalence.sh [path-to-mcheck]
# (defaults to target/release/mcheck; builds both binaries if missing)
set -euo pipefail
cd "$(dirname "$0")/.."

MCHECK=${1:-target/release/mcheck}
MCHECKD="$(dirname "$MCHECK")/mcheckd"
if [ ! -x "$MCHECK" ] || [ ! -x "$MCHECKD" ]; then
    cargo build --release -p mc-cli --bin mcheck --bin mcheckd
fi
# The watch client spawns the daemon through this override (its default is
# a sibling of the running binary, which is also correct here).
export MCHECKD_BIN="$MCHECKD"

work=$(mktemp -d)
socket="$work/mcheckd.sock"
cleanup() {
    "$MCHECKD" shutdown --socket "$socket" >/dev/null 2>&1 || true
    rm -rf "$work"
}
trap cleanup EXIT

"$MCHECK" --emit-corpus "$work/corpus" >/dev/null
# One protocol is enough: the gate is about transport equivalence, not
# corpus coverage (cache_equivalence.sh sweeps every protocol).
pdir=$(find "$work/corpus" -mindepth 1 -maxdepth 1 -type d | sort | head -n 1)
pdir=$(readlink -f "$pdir")
spec="$pdir/spec.json"
probe=$(find "$pdir" -name '*.c' | sort | head -n 1)

# Report fingerprints, normalized across compact/pretty JSON spacing.
fingerprints() {
    grep -o '"fingerprint"[: ]*"[^"]*"' "$1" | tr -d ' \t' | sort
}

# mcheck/mcheckd exit 1 when reports are emitted (the corpus plants bugs,
# so they always are); only >= 2 is a real failure.
run_tool() {
    local out=$1
    shift
    local rc=0
    "$@" "$pdir"/*.c >"$out" || rc=$?
    if [ "$rc" -ge 2 ]; then
        echo "FAIL: '$1' exited $rc" >&2
        exit "$rc"
    fi
}

status=0
step() {
    local label=$1
    run_tool "$work/$label-batch.json" \
        "$MCHECK" --builtin --spec "$spec" --format json
    run_tool "$work/$label-daemon.json" \
        "$MCHECKD" check --socket "$socket" --builtin --spec "$spec"
    run_tool "$work/$label-watch.out" \
        "$MCHECK" --builtin --spec "$spec" --watch --watch-iterations 1 \
        --daemon-socket "$socket"
    fingerprints "$work/$label-batch.json" >"$work/$label-batch.fp"
    fingerprints "$work/$label-daemon.json" >"$work/$label-daemon.fp"
    fingerprints "$work/$label-watch.out" >"$work/$label-watch.fp"
    if [ ! -s "$work/$label-batch.fp" ]; then
        echo "FAIL: $label produced no report fingerprints" >&2
        status=1
    fi
    if diff -u "$work/$label-batch.fp" "$work/$label-daemon.fp"; then
        echo "daemon-equivalence ok: $label (mcheckd check)"
    else
        echo "FAIL: $label mcheckd fingerprints differ from batch" >&2
        status=1
    fi
    if diff -u "$work/$label-batch.fp" "$work/$label-watch.fp"; then
        echo "daemon-equivalence ok: $label (watch client)"
    else
        echo "FAIL: $label watch-client fingerprints differ from batch" >&2
        status=1
    fi
}

# The edit script: pristine -> body edit planting a fresh bug -> revert.
cp "$probe" "$work/pristine.c"
step pristine

cat >>"$probe" <<'EOF'
void daemon_probe(void) { long m; m = MISCBUS_READ_DB(a, b); }
EOF
step edited

cp "$work/pristine.c" "$probe"
step reverted

# The edit must be visible through every transport, and the revert must
# restore the pristine fingerprint set exactly.
if cmp -s "$work/pristine-batch.fp" "$work/edited-batch.fp"; then
    echo "FAIL: the planted probe bug changed no fingerprints" >&2
    status=1
fi
if ! cmp -s "$work/pristine-batch.fp" "$work/reverted-batch.fp"; then
    echo "FAIL: revert did not restore the pristine fingerprints" >&2
    status=1
fi
exit "$status"
