#!/usr/bin/env bash
# Shard equivalence gate: checking a corpus as one process must produce
# byte-identical output to checking it as a farm of --shard i/N processes
# folded with `mcheck merge`. Runs every protocol of the seed corpus and
# a slice of the scale-10 fleet corpus, comparing the single-process
# output against a 1-shard and a 4-shard farm (shards and merge share one
# cache directory per cell; the single-process baseline is uncached).
#
# Usage: scripts/shard_equivalence.sh [path-to-mcheck]
# (defaults to target/release/mcheck; builds it if missing)
set -euo pipefail
cd "$(dirname "$0")/.."

MCHECK=${1:-target/release/mcheck}
if [ ! -x "$MCHECK" ]; then
    cargo build --release -p mc-cli --bin mcheck
fi
export MCHECK

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

"$MCHECK" --emit-corpus "$work/seed" >/dev/null
"$MCHECK" --emit-corpus "$work/fleet" --scale 10 >/dev/null

# mcheck exits 1 when it emits reports (the corpus has planted bugs);
# only >= 2 is a real failure. See "Exit codes" in README.md.
tolerate() {
    local rc=0
    "$@" || rc=$?
    if [ "$rc" -ge 2 ]; then
        echo "FAIL: exited $rc: $*" >&2
        exit "$rc"
    fi
}

status=0
check_protocol() {
    local pdir=$1 tag=$2
    local args=(--builtin --spec "$pdir/spec.json" --format json "$pdir"/*.c)
    tolerate "$MCHECK" "${args[@]}" >"$work/$tag-single.json"
    for shards in 1 4; do
        tolerate scripts/shard_check.sh "$shards" "$work/cache-$tag-$shards" \
            "${args[@]}" >"$work/$tag-$shards.json" 2>/dev/null
        if diff -u "$work/$tag-single.json" "$work/$tag-$shards.json"; then
            echo "shard-equivalence ok: $tag ($shards shard(s))"
        else
            echo "FAIL: $tag $shards-shard merge differs from single-process" >&2
            status=1
        fi
    done
}

for pdir in "$work"/seed/*/; do
    check_protocol "$pdir" "seed-$(basename "$pdir")"
done
# The full scale-10 fleet is 60 protocols; two families are enough to
# exercise sharding over fleet-sized units without a multi-minute gate.
for pdir in "$work"/fleet/bitvector_f3/ "$work"/fleet/dyn_ptr_f7/; do
    check_protocol "$pdir" "fleet-$(basename "$pdir")"
done
exit "$status"
