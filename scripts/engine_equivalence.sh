#!/usr/bin/env bash
# Engine equivalence gate: checking the same sources with
# `--metal-engine compiled` (the default) and `--metal-engine interp`
# (the reference interpreter) must produce byte-identical output. The
# compiled dispatcher is an optimization, never a behavior change — any
# diff here means the compiler lowered a metal program incorrectly.
# Runs the whole synthetic corpus, once per protocol, with each engine.
#
# Usage: scripts/engine_equivalence.sh [path-to-mcheck]
# (defaults to target/release/mcheck; builds it if missing)
set -euo pipefail
cd "$(dirname "$0")/.."

MCHECK=${1:-target/release/mcheck}
if [ ! -x "$MCHECK" ]; then
    cargo build --release -p mc-cli --bin mcheck
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

"$MCHECK" --emit-corpus "$work/corpus" >/dev/null

# mcheck exits 1 when it emits reports (the corpus has planted bugs, so it
# always does); only >= 2 is a real failure. See "Exit codes" in README.md.
run_mcheck() {
    local out=$1 engine=$2 pdir=$3 rc=0
    "$MCHECK" --builtin --spec "$pdir/spec.json" --format json \
        --metal-engine "$engine" "$pdir"/*.c >"$out" || rc=$?
    if [ "$rc" -ge 2 ]; then
        echo "FAIL: mcheck --metal-engine $engine exited $rc on $pdir" >&2
        exit "$rc"
    fi
}

status=0
for pdir in "$work"/corpus/*/; do
    name=$(basename "$pdir")
    run_mcheck "$work/$name-interp.json" interp "$pdir"
    run_mcheck "$work/$name-compiled.json" compiled "$pdir"
    if diff -u "$work/$name-interp.json" "$work/$name-compiled.json"; then
        echo "engine-equivalence ok: $name"
    else
        echo "FAIL: $name compiled output differs from interp" >&2
        status=1
    fi
done
exit "$status"
