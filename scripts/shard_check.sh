#!/usr/bin/env bash
# Shard-farm driver: runs mcheck as N shard processes over one shared
# cache directory, then folds them with `mcheck merge`. Each shard parses
# everything but checks only the units it owns (unit fingerprint mod N),
# publishing results into the cache; the merge is an ordinary run that
# finds every unit warm, so its output is byte-identical to a
# single-process check of the same sources.
#
# Usage: scripts/shard_check.sh <shards> <cache-dir> <mcheck-args>...
#   e.g. scripts/shard_check.sh 4 /tmp/cache --builtin --spec spec.json src/*.c
#
# The merge output goes to stdout; shard progress goes to stderr. Exits
# with the merge's exit code (0 = clean, 1 = reports emitted).
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "$#" -lt 3 ]; then
    echo "usage: scripts/shard_check.sh <shards> <cache-dir> <mcheck-args>..." >&2
    exit 2
fi

SHARDS=$1
CACHE=$2
shift 2

MCHECK=${MCHECK:-target/release/mcheck}
if [ ! -x "$MCHECK" ]; then
    cargo build --release -p mc-cli --bin mcheck
fi

# Shards always exit 0 (they render nothing); >= 2 is a real failure.
pids=()
for ((i = 0; i < SHARDS; i++)); do
    "$MCHECK" --cache-dir "$CACHE" --shard "$i/$SHARDS" "$@" &
    pids+=($!)
done
for pid in "${pids[@]}"; do
    wait "$pid"
done

# The merge exits 1 when it emits reports; let the caller see that code
# without tripping `set -e`.
rc=0
"$MCHECK" merge --cache-dir "$CACHE" "$@" || rc=$?
if [ "$rc" -ge 2 ]; then
    echo "FAIL: mcheck merge exited $rc" >&2
fi
exit "$rc"
