#!/usr/bin/env bash
# False-positive regression gate: runs the fp_delta binary over the full
# synthetic corpus and compares its machine-readable `gate:` line against
# the committed baseline (scripts/fp_baseline.txt). Fails if
#
#   * bug recall drops below the baseline (a checker stopped finding a
#     planted bug — never acceptable), or
#   * a false-positive count at any rung (pruned, pruned+interproc,
#     pruned+interproc+refute) rises above the baseline (an analysis got
#     noisier).
#
# Finding *fewer* false positives than the baseline is reported but does
# not fail: update the baseline in the same change to ratchet it down.
#
# Usage: scripts/fp_gate.sh [path-to-fp_delta]
# (defaults to target/release/fp_delta; builds it if missing)
set -euo pipefail
cd "$(dirname "$0")/.."

FP_DELTA=${1:-target/release/fp_delta}
if [ ! -x "$FP_DELTA" ]; then
    cargo build --release -p mc-bench --bin fp_delta
fi

baseline=scripts/fp_baseline.txt
read -r base_bugs base_fp_pruned base_fp_interproc base_fp_refute < <(
    sed -n 's/^gate: bugs=\([0-9]*\) fp_pruned=\([0-9]*\) fp_interproc=\([0-9]*\) fp_refute=\([0-9]*\)$/\1 \2 \3 \4/p' \
        "$baseline"
)
if [ -z "${base_bugs:-}" ]; then
    echo "FAIL: no gate line in $baseline" >&2
    exit 2
fi

out=$("$FP_DELTA")
echo "$out"
read -r bugs fp_pruned fp_interproc fp_refute < <(
    sed -n 's/^gate: bugs=\([0-9]*\) fp_pruned=\([0-9]*\) fp_interproc=\([0-9]*\) fp_refute=\([0-9]*\)$/\1 \2 \3 \4/p' \
        <<<"$out"
)
if [ -z "${bugs:-}" ]; then
    echo "FAIL: fp_delta printed no gate line" >&2
    exit 2
fi

# Names the exact reports that differ from the baseline inventory at one
# rung, by fingerprint, so a count failure is actionable without rerunning.
name_fp_delta() {
    local rung=$1
    local base_fps cur_fps
    base_fps=$(grep "^fp\[$rung\]" "$baseline" | sort || true)
    cur_fps=$(grep "^fp\[$rung\]" <<<"$out" | sort || true)
    local appeared disappeared
    appeared=$(comm -13 <(echo "$base_fps") <(echo "$cur_fps"))
    disappeared=$(comm -23 <(echo "$base_fps") <(echo "$cur_fps"))
    if [ -n "$appeared" ]; then
        echo "  appeared at rung $rung (not in baseline):" >&2
        sed 's/^/    /' <<<"$appeared" >&2
    fi
    if [ -n "$disappeared" ]; then
        echo "  disappeared at rung $rung (baseline report no longer emitted):" >&2
        sed 's/^/    /' <<<"$disappeared" >&2
    fi
}

status=0
if [ "$bugs" -lt "$base_bugs" ]; then
    echo "FAIL: bug recall regressed: $bugs < baseline $base_bugs" >&2
    status=1
fi
if [ "$fp_pruned" -gt "$base_fp_pruned" ]; then
    echo "FAIL: pruned false positives rose: $fp_pruned > baseline $base_fp_pruned" >&2
    name_fp_delta pruned
    status=1
fi
if [ "$fp_interproc" -gt "$base_fp_interproc" ]; then
    echo "FAIL: interproc false positives rose: $fp_interproc > baseline $base_fp_interproc" >&2
    name_fp_delta interproc
    status=1
fi
if [ "$fp_refute" -gt "$base_fp_refute" ]; then
    echo "FAIL: refute false positives rose: $fp_refute > baseline $base_fp_refute" >&2
    name_fp_delta refute
    status=1
fi
if [ "$status" -eq 0 ]; then
    echo "fp-gate ok: bugs=$bugs (>= $base_bugs), fp_pruned=$fp_pruned (<= $base_fp_pruned), fp_interproc=$fp_interproc (<= $base_fp_interproc), fp_refute=$fp_refute (<= $base_fp_refute)"
    if [ "$fp_pruned" -lt "$base_fp_pruned" ] || [ "$fp_interproc" -lt "$base_fp_interproc" ] || [ "$fp_refute" -lt "$base_fp_refute" ]; then
        echo "note: false positives dropped below baseline — ratchet scripts/fp_baseline.txt down"
    fi
fi
exit "$status"
