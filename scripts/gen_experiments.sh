#!/bin/sh
# Regenerates EXPERIMENTS.md from the measured tables.
set -e
cd "$(dirname "$0")/.."
{
cat <<'EOF'
# EXPERIMENTS — paper vs. measured

Every cell below is printed as `paper/measured`. Measured values come from
running the full checker suite (`mc-checkers`) over the synthetic corpus
(`mc-corpus`, seed `0xF1A5`) and joining reports against the planted-defect
manifest — see `crates/mc-corpus/tests/manifest_exactness.rs` for the test
that pins all of this in CI.

Regenerate this file with `scripts/gen_experiments.sh`, or any single table
with `cargo run -p mc-bench --bin tableN`.

## Methodology

The original FLASH protocol sources are proprietary, so the corpus
generator plants the paper's defects (and false-positive triggers, and
suppression annotations) at the **exact per-protocol counts** of Tables
2–6/§7, inside protocols whose size, routine count, variable count, and
operation mix match Tables 1/5. Because the evaluation joins reports
against ground truth, the "Errors" and "False Pos" columns are measured
facts about the checkers, not assumptions: a checker that missed a planted
bug or reported noise would show up immediately (and does, in the
integration tests, if you break one). The planted counts are exact by
construction; everything else — LOC, path statistics, applied counts,
which checker finds what, and that nothing *extra* is reported — is
measured from the generated code and the reports. Seed-independence of the
exactness property is itself property-tested
(`crates/mc-corpus/tests/proptest_seeds.rs`).

## Table 1 — protocol size

EOF
echo '```'
cargo run -q -p mc-bench --bin table1
echo '```'
cat <<'EOF'

LOC matches the paper within 0.3 % per protocol. Path counts, average
path length, and longest path all match within 2× (ordering preserved
for the extremes: dyn_ptr has by far the most paths, bitvector the
fewest). Each protocol carries one deep straight-line handler calibrated
to the paper's longest-path column; the residual shortfall is metric
skew — we count statements where the paper counted lines. The 2× bound
is pinned by `path_lengths_within_2x_of_table1` in `mc-corpus`.

## Table 2 — buffer race checker (Figure 2)

EOF
echo '```'
cargo run -q -p mc-bench --bin table2
echo '```'
cat <<'EOF'

Exact: 4 bugs, all in bitvector (two of them the "only the first byte is
read early" shape), 1 intentional debug-code false positive in the common
code, 59 reads checked.

## Table 3 — message length checker (Figure 3)

EOF
echo '```'
cargo run -q -p mc-bench --bin table3
echo '```'
cat <<'EOF'

Exact on the paper's numbers, including the headline: this checker finds
the most bugs (18), with both coma false positives produced by the same
run-time-selected send in one function. The one extra measured dyn_ptr
false positive is the summary-engine demonstration site (the length is
assigned in a helper the local analysis cannot see into); `mcheck
--interproc` resolves it — see the delta section below.

## Table 4 — buffer management checker

EOF
echo '```'
cargo run -q -p mc-bench --bin table4
echo '```'
cat <<'EOF'

Exact on the paper's numbers across all four columns. "Useful" counts
planted `has_buffer()` / `no_free_needed()` annotations (which correctly
silence the checker); "Useless" counts false-positive reports from
unpruned correlated branches (2 reports each) and data-dependent frees
(1 report each). The one extra measured sci report is the summary-engine
demonstration site (the free hidden in an un-annotated wrapper), resolved
by `mcheck --interproc`.

## Table 5 — execution restriction checker

EOF
echo '```'
cargo run -q -p mc-bench --bin table5
echo '```'
cat <<'EOF'

All 11 violations are missing simulator hooks, as in the paper; sci's 3
violations sit inside `FATAL_ERROR` stubs and are correctly not counted.
The variable count drifts by 1 in coma (the generator's var-distribution
remainder).

## Table 6 — the three lower-yield checks

EOF
echo '```'
cargo run -q -p mc-bench --bin table6
echo '```'
cat <<'EOF'

Exact, including the directory checker's single real bug (bitvector) and
its 31 false positives decomposed as in §9.1: 14 un-annotated write-back
subroutines, 3 speculative back-outs on the NAK reply path, 14 explicit
address-computation abstraction errors.

## §7 — lane/deadlock checker

Two bugs, zero false positives, reproduced in `table7` and pinned by
`crates/mc-checkers/src/lanes.rs` tests and
`crates/mc-checkers/tests/paper_anecdotes.rs`: the dyn_ptr bug (a hardware
workaround in a helper pushes the handler over its lane allowance —
found **inter-procedurally** with a back trace through the call) and the
bitvector bug (a duplicated request send). Send-free loops and recursion
are fixed points and produce no false positives.

## Table 7 — summary

EOF
echo '```'
cargo run -q -p mc-bench --bin table7
echo '```'
cat <<'EOF'

Bug totals are exact (34/34); the false-positive total measures 71 —
the paper's 69 plus the two summary-engine demonstration sites planted
on top (see the delta section below). Checker sizes differ
where the implementation language differs: the two metal checkers are
*smaller* than the paper's, while native Rust extensions carry Rust's
verbosity (e.g. buffer management ~250 lines vs 94 lines of
metal-with-C-actions). The ordering the paper emphasizes — pattern-based
checkers are 1–2 orders of magnitude smaller than the code they check —
holds. (The paper's "No-float 7" row is folded into our `exec_restrict`;
its slot lists the §11 refcount check.)

## The false-positive ladder — pruning, summaries, refutation

The tables above reproduce the paper's xg++, which explored paths with no
feasibility reasoning and treated every call as opaque; `mcheck` adds an
intraprocedural feasibility domain (DESIGN.md §9) that refutes
correlated-branch paths (**on by default**), a bottom-up function
summary engine (DESIGN.md §11) that resolves call sites (`--interproc`,
opt-in), and a post-pass symbolic refuter (DESIGN.md §14) that slices
each surviving report's witness and solves its path condition over
linear integer constraints (`--refute`, the CLI default). The same
suite run all four ways:

EOF
echo '```'
cargo run -q --release -p mc-bench --bin fp_delta
echo '```'
cat <<'EOF'

Pruning removes 24 of the 71 false positives (the 11 correlated-branch
buffer-management pairs and the 2 coma message-length FPs, which the
paper's manual triage had to discard by hand); call-site resolution then
removes the 16 helper-hidden ones (the 14 un-annotated directory
write-back subroutines of §9.1 plus the two demonstration sites),
leaving 31 — below the paper's 45. The symbolic refuter then demotes
the 25 residual witnesses that ride an infeasible multi-variable
credit/debit guard — all 17 remaining directory FPs (the NAK-path
back-outs and address-computation sites of §9.1) and all 8 send-wait
FPs, three of them correlated through a same-file helper the executor
inlines — leaving **6**, while every one of the 46 planted-bug reports
survives all three analyses. Pinned by
`pruning_cuts_false_positives_and_summaries_cut_them_further`,
`pruning_never_drops_a_planted_bug`,
`interproc_never_drops_a_planted_bug`,
`refutation_matches_the_manifest_end_to_end`, and
`interproc_witness_splice_refutes_through_the_helper` in `mc-corpus`,
seed-independent via `proptest_seeds.rs`, and held in CI by
`scripts/fp_gate.sh` against `scripts/fp_baseline.txt` (all three
rungs, per-fingerprint) and `scripts/refute_equivalence.sh` (verdicts
byte-identical across `--jobs 1/4/8` and warm-vs-cold cache). The
confidence line shows the ranking the paper did by hand (§9.1's NAK and
debug-print heuristics, automated in `mc-driver`): surviving reports
are sorted most-likely-real first, and planted bugs rank a full
confidence band above the surviving false positives.

## Figures

* **Figure 1** (FLASH node block diagram) is architectural, not a data
  artifact; its structure is realized by `mc-sim` (R10000-side PI
  interface, MAGIC controller with buffer pool + lanes + directory, NI/IO
  interfaces). A complete MSI coherence protocol written in the handler
  idiom runs on it (`crates/mc-sim/tests/msi_coherence.rs`,
  `examples/msi_coherence.rs`).
* **Figures 2 and 3** (metal checker listings) ship as runnable metal
  programs: `crates/mc-checkers/metal/wait_for_db.metal` and
  `crates/mc-checkers/metal/msglen.metal`, exercised by every table above.

## §11 — the "betrayal" incident

The single manual `DB_REFCOUNT_INCR()` call in all ~80 K lines is planted
in bitvector; the post-incident checker finds exactly it (pinned by
`refcount_incident_found_once_in_bitvector`). The simulator replays the
dynamics: with the manual bump, the apparent double free is *correct* and
removing it leaks (`manual_refcount_bump_requires_two_frees` in `mc-sim`).

## Dynamic validation (FlashLite analog)

`crates/mc-sim/tests/corpus_dynamics.rs` shows the statically-found bugs
manifesting at run time, reproducing the paper's motivation:

* the bitvector race bug reads garbage from a not-yet-filled buffer;
* a rac message-length bug corrupts the wire header **only** when its
  rare double corner-case (`gDirtyRemote && gQueueFull`) is armed — and is
  completely silent otherwise, which is why such bugs survive years of
  simulation;
* the sci leak bug drains the buffer pool and wedges the node only after
  many healthy-looking handler runs (the "deadlocks after several days"
  class, scaled to a small pool);
* clean generated handlers sustain hundreds of messages with no events.

## Fleet scale & the shard farm

The paper checked one ~80 K-line protocol suite; DESIGN.md §16 scales
the reproduction out. `mcheck --emit-corpus <dir> --scale 10` generates
a 10-family fleet (family 0 is byte-identical to the seed corpus above,
so every table here is unaffected), the driver schedules workers with an
in-tree work-stealing deque, and `--shard i/N` + `mcheck merge` split a
check across processes sharing one cache with byte-identical folded
output (`tests/shard.rs` pins the {1,2,4}-shard × {1,4}-job matrix;
`scripts/shard_equivalence.sh` holds it in CI over both corpora).
Measured fleet numbers from `BENCH_driver.json` (`cargo run --release
-p mc-bench --bin perf`; single-core CI shows wall-clock parity between
the fixed and stealing pools, with the steal counters as evidence the
scheduler is live):

EOF
echo '```json'
sed -n '/"scale": {/,/^  }/p' BENCH_driver.json
sed -n '/"scheduler": {/,/^  }/p' BENCH_driver.json
echo '```'
cat <<'EOF'

## Benchmarks

`cargo bench -p mc-bench` (Criterion). `framework` measures front end,
CFG construction, each checker end-to-end over bitvector, and simulator
throughput. `scaling` runs the two ablations from DESIGN.md: state-set
worklist vs. exhaustive path enumeration as sequential branching grows
(4→16 branches ≈ 16→65 536 paths; state-set stays ~10–35 µs while
exhaustive grows from ~50 µs through ~13 ms and beyond), and pattern
pre-filtering vs. naive matching. Full numbers are recorded in
`bench_output.txt`.
EOF
} > EXPERIMENTS.md
echo "EXPERIMENTS.md regenerated"
