#!/usr/bin/env bash
# Refutation equivalence gate: verdicts must be a pure function of the
# sources, never of scheduling or cache state. Two invariants, checked
# over the whole synthetic corpus:
#
#   1. Determinism across worker counts — `--jobs 1`, `--jobs 4`, and
#      `--jobs 8` with `--refute` must produce byte-identical JSON
#      (same reports, same verdicts, same solver models, same order).
#   2. Cache stability — a warm `--cache-dir` run must be byte-identical
#      to the cold run that populated it. Verdicts and models are part of
#      the cached report payload, so a hit that recomputed (or dropped)
#      them would diff here.
#
# Usage: scripts/refute_equivalence.sh [path-to-mcheck]
# (defaults to target/release/mcheck; builds it if missing)
set -euo pipefail
cd "$(dirname "$0")/.."

MCHECK=${1:-target/release/mcheck}
if [ ! -x "$MCHECK" ]; then
    cargo build --release -p mc-cli --bin mcheck
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

"$MCHECK" --emit-corpus "$work/corpus" >/dev/null

# mcheck exits 1 when it emits reports (the corpus has planted bugs, so it
# always does); only >= 2 is a real failure. See "Exit codes" in README.md.
run_mcheck() {
    local out=$1 jobs=$2 pdir=$3 rc=0
    shift 3
    "$MCHECK" --builtin --spec "$pdir/spec.json" --format json --refute \
        --interproc --jobs "$jobs" "$@" "$pdir"/*.c >"$out" || rc=$?
    if [ "$rc" -ge 2 ]; then
        echo "FAIL: mcheck exited $rc on $pdir" >&2
        exit "$rc"
    fi
}

status=0
for pdir in "$work"/corpus/*/; do
    name=$(basename "$pdir")

    # 1. Verdicts must not depend on the worker count.
    run_mcheck "$work/$name-j1.json" 1 "$pdir"
    run_mcheck "$work/$name-j4.json" 4 "$pdir"
    run_mcheck "$work/$name-j8.json" 8 "$pdir"
    for jobs in 4 8; do
        if ! diff -u "$work/$name-j1.json" "$work/$name-j$jobs.json"; then
            echo "FAIL: $name --jobs $jobs verdicts differ from --jobs 1" >&2
            status=1
        fi
    done

    # 2. Warm-cache verdicts must be byte-identical to the cold run.
    cache="$work/cache-$name"
    run_mcheck "$work/$name-cold.json" 2 "$pdir" --cache-dir "$cache"
    run_mcheck "$work/$name-warm.json" 2 "$pdir" --cache-dir "$cache"
    if ! diff -u "$work/$name-cold.json" "$work/$name-warm.json"; then
        echo "FAIL: $name warm-cache verdicts differ from cold" >&2
        status=1
    fi

    if [ "$status" -eq 0 ]; then
        echo "refute-equivalence ok: $name"
    fi
done
exit "$status"
