#!/usr/bin/env bash
# Cache equivalence gate: running mcheck twice over the same sources with a
# shared --cache-dir must produce byte-identical output — the second run is
# served from the cache, and a cache hit is only correct if it is
# indistinguishable from a cold check. Runs the whole synthetic corpus,
# once per protocol, at two worker counts sharing one cache directory
# (worker count is deliberately not part of the cache key).
#
# Usage: scripts/cache_equivalence.sh [path-to-mcheck]
# (defaults to target/release/mcheck; builds it if missing)
set -euo pipefail
cd "$(dirname "$0")/.."

MCHECK=${1:-target/release/mcheck}
if [ ! -x "$MCHECK" ]; then
    cargo build --release -p mc-cli --bin mcheck
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

"$MCHECK" --emit-corpus "$work/corpus" >/dev/null

# mcheck exits 1 when it emits reports (the corpus has planted bugs, so it
# always does); only >= 2 is a real failure. See "Exit codes" in README.md.
run_mcheck() {
    local out=$1 jobs=$2 pdir=$3 cache=$4 rc=0
    "$MCHECK" --builtin --spec "$pdir/spec.json" --format json \
        --jobs "$jobs" --cache-dir "$cache" "$pdir"/*.c >"$out" || rc=$?
    if [ "$rc" -ge 2 ]; then
        echo "FAIL: mcheck exited $rc on $pdir" >&2
        exit "$rc"
    fi
}

status=0
for pdir in "$work"/corpus/*/; do
    name=$(basename "$pdir")
    cache="$work/cache-$name"
    run_mcheck "$work/$name-cold.json" 1 "$pdir" "$cache"
    run_mcheck "$work/$name-warm.json" 4 "$pdir" "$cache"
    if diff -u "$work/$name-cold.json" "$work/$name-warm.json"; then
        echo "cache-equivalence ok: $name"
    else
        echo "FAIL: $name warm output differs from cold" >&2
        status=1
    fi
done
exit "$status"
