//! The "deadlocks after days" demo: run a leaky handler and its fixed
//! version under identical message load in the FlashLite-analog simulator.
//!
//! ```sh
//! cargo run --example simulate_protocol
//! ```

use flash_mc::sim::{Machine, Program, SimConfig, SimEvent};

const LEAKY: &str = r#"
    void NIRemotePut(void) {
        HANDLER_DEFS();
        HANDLER_PROLOGUE();
        WAIT_FOR_DB_FULL(addr);
        gSum = gSum + MISCBUS_READ_DB(addr, 0);
        if (gSum % 16 == 3) {
            /* Rare bookkeeping path — and the buffer is never freed.
             * The buffer-management checker flags this statically as
             * "exit path still holds a data buffer". */
            gRareCount = gRareCount + 1;
            return;
        }
        DB_FREE();
    }
"#;

const FIXED: &str = r#"
    void NIRemotePut(void) {
        HANDLER_DEFS();
        HANDLER_PROLOGUE();
        WAIT_FOR_DB_FULL(addr);
        gSum = gSum + MISCBUS_READ_DB(addr, 0);
        if (gSum % 16 == 3) {
            gRareCount = gRareCount + 1;
            DB_FREE();
            return;
        }
        DB_FREE();
    }
"#;

fn drive(label: &str, src: &str) {
    let program = Program::parse(src).expect("handler parses");
    let config = SimConfig {
        nodes: 2,
        buffers_per_node: 16,
        lane_capacity: 100_000,
        max_handler_runs: 50_000,
    };
    let mut machine = Machine::new(program, config);
    for _ in 0..20_000 {
        machine.inject(0, "NIRemotePut");
    }
    machine.run();

    let leaks = machine
        .events()
        .iter()
        .filter(|e| matches!(e, SimEvent::BufferLeaked { .. }))
        .count();
    let exhausted = machine.events().iter().find_map(|e| match e {
        SimEvent::BufferExhausted { time, .. } => Some(*time),
        _ => None,
    });
    println!("== {label} ==");
    println!("handler invocations: {}", machine.handler_runs());
    println!("buffers leaked:      {leaks}");
    match exhausted {
        Some(t) => println!(
            "DEADLOCK: node 0 ran out of data buffers after {t} handler runs\n\
             (a low-grade leak: every run looked healthy until the pool drained)"
        ),
        None => println!("machine healthy: all messages processed, no deadlock"),
    }
    println!();
}

fn main() {
    println!("Injecting 20,000 messages into a 16-buffer node.\n");
    drive("leaky handler (as shipped)", LEAKY);
    drive("fixed handler (after the checker report)", FIXED);
    println!(
        "The static checker pinpoints the leaking return in milliseconds;\n\
         in simulation the same bug needs ~250 runs to wedge the node, and on\n\
         hardware (1M+ messages/s, 128 buffers) it hides for days."
    );
}
