//! Write your own metal checker — the meta-level compilation methodology.
//!
//! The paper's thesis is that *system implementors* can turn "rules that
//! exist only on paper" into compiler extensions in minutes. This example
//! writes a brand-new checker for an invariant the paper mentions in its
//! templates ("always do X before/after Y"): interrupts disabled with
//! `DISABLE_INTR()` must be re-enabled with `ENABLE_INTR()` on every path,
//! and never disabled twice.
//!
//! ```sh
//! cargo run --example write_a_checker
//! ```

use flash_mc::prelude::*;

/// The whole checker. Compare with the hundreds of lines a hand-written
/// AST walker would take — this is the paper's "10-100 lines, written in
/// a few hours" claim made concrete.
const INTR_CHECKER: &str = r#"
    sm intr_pairing {
        start:
            { DISABLE_INTR(); } ==> disabled
          | { ENABLE_INTR(); } ==>
                { err("interrupts enabled but never disabled"); }
        ;
        disabled:
            { ENABLE_INTR(); } ==> start
          | { DISABLE_INTR(); } ==>
                { err("interrupts disabled twice"); }
          | { return; } ==>
                { err("exit path leaves interrupts disabled"); }
        ;
    }
"#;

const KERNEL_CODE: &str = r#"
    void good_critical_section(void) {
        DISABLE_INTR();
        gCounter = gCounter + 1;
        ENABLE_INTR();
    }

    void leaky_error_path(void) {
        DISABLE_INTR();
        if (gQueueFull) {
            /* BUG: early return with interrupts off. */
            return;
        }
        gCounter = gCounter + 1;
        ENABLE_INTR();
    }

    void double_disable(void) {
        DISABLE_INTR();
        if (gNested) {
            DISABLE_INTR();   /* BUG */
        }
        ENABLE_INTR();
    }
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut driver = Driver::new();
    driver.add_metal_source(INTR_CHECKER)?;
    let reports = driver.check_source(KERNEL_CODE, "critical.c")?;

    println!(
        "checker source: {} lines of metal\n",
        INTR_CHECKER.trim().lines().count()
    );
    for r in &reports {
        println!("{r}");
    }
    assert_eq!(reports.len(), 2);
    assert!(reports.iter().any(|r| r.function == "leaky_error_path"));
    assert!(reports.iter().any(|r| r.function == "double_disable"));
    println!("\n2 bugs found by a checker written in this file.");
    Ok(())
}
