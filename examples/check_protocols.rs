//! Check the full synthetic FLASH corpus with the complete checker suite —
//! the paper's whole evaluation in one command.
//!
//! ```sh
//! cargo run --example check_protocols
//! ```

use flash_mc::checkers::all_checkers;
use flash_mc::corpus::eval::evaluate;
use flash_mc::corpus::{generate_all, PlantedKind, DEFAULT_SEED};
use flash_mc::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t0 = Instant::now();
    let protocols = generate_all(DEFAULT_SEED);
    println!(
        "generated {} protocols, {} lines of FLASH protocol code ({:.1?})\n",
        protocols.len(),
        protocols.iter().map(|p| p.loc()).sum::<usize>(),
        t0.elapsed()
    );

    let mut grand_bugs = 0usize;
    let mut grand_fps = 0usize;
    for proto in &protocols {
        let t = Instant::now();
        let mut driver = Driver::new();
        all_checkers(&mut driver, &proto.spec)?;
        let reports = driver.check_sources(&proto.sources())?;
        let outcome = evaluate(proto, &reports);
        let bugs: usize = outcome
            .matched
            .iter()
            .filter(|(p, _)| matches!(p.kind, PlantedKind::Bug | PlantedKind::Incident))
            .map(|(_, n)| n)
            .sum();
        let fps: usize = outcome
            .matched
            .iter()
            .filter(|(p, _)| p.kind == PlantedKind::FalsePositive)
            .map(|(_, n)| n)
            .sum();
        grand_bugs += bugs;
        grand_fps += fps;
        println!(
            "{:>10}: {:>5} LOC checked in {:>6.1?} — {} reports ({} bugs, {} false positives, {} unexpected)",
            proto.name,
            proto.loc(),
            t.elapsed(),
            reports.len(),
            bugs,
            fps,
            outcome.unexpected.len()
        );
        // Show one representative finding with its location.
        if let Some(r) = reports.iter().find(|r| {
            outcome
                .matched
                .iter()
                .any(|(p, n)| *n > 0 && p.kind == PlantedKind::Bug && p.function == r.function)
        }) {
            println!("            e.g. {r}");
        }
    }
    println!("\ntotal: {grand_bugs} bugs and {grand_fps} false positives across all protocols");
    println!(
        "(paper: 34 Table-7 bugs + 11 hook omissions (Table 5) + 1 refcount \
         incident (§11) = 46; 69 false positives)"
    );
    Ok(())
}
