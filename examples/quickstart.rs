//! Quickstart: check a FLASH handler with the paper's Figure 2 checker.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use flash_mc::checkers::WAIT_FOR_DB_METAL;
use flash_mc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A handler with the classic §4 bug: it reads the incoming data
    // buffer while the hardware may still be filling it.
    let protocol_code = r#"
        void NILocalGet(void) {
            HANDLER_DEFS();
            HANDLER_PROLOGUE();
            int opcode;

            /* BUG: read before WAIT_FOR_DB_FULL on this path. */
            opcode = MISCBUS_READ_DB(addr, 0) & 255;
            if (opcode == OPC_UPGRADE) {
                WAIT_FOR_DB_FULL(addr);
                process_upgrade();
            }
            DB_FREE();
        }
    "#;

    // 1. Load the metal checker — this is the literal program from
    //    Figure 2 of the paper, parsed and compiled at run time.
    let sm = MetalProgram::parse(WAIT_FOR_DB_METAL)?;
    println!(
        "loaded metal checker `{}` ({} states, {} wildcards)\n",
        sm.name,
        sm.states.len(),
        sm.wildcards.len()
    );

    // 2. Register it with the driver and check the source.
    let mut driver = Driver::new();
    driver.add_metal_checker(sm)?;
    let reports = driver.check_source(protocol_code, "nilocalget.c")?;

    // 3. Report.
    for report in &reports {
        println!("{report}");
    }
    assert_eq!(reports.len(), 1, "exactly the planted race is found");
    println!("\n1 bug found — a race the FLASH team would otherwise chase on hardware.");
    Ok(())
}
