//! A working MSI write-invalidate coherence protocol, written in the FLASH
//! handler idiom and executed on the `mc-sim` machine model — the same
//! handler style the checkers analyze statically, here actually moving
//! cache lines between four nodes.
//!
//! ```sh
//! cargo run --example msi_coherence
//! ```

use flash_mc::sim::{Machine, Program, SimConfig};

const MSI: &str = include_str!("../crates/mc-sim/tests/msi_protocol.c");

fn main() {
    let program = Program::parse(MSI).expect("MSI protocol parses");
    let mut m = Machine::new(
        program,
        SimConfig {
            nodes: 4,
            buffers_per_node: 16,
            lane_capacity: 256,
            max_handler_runs: 10_000,
        },
    );
    for (code, handler) in [
        (10, "NIHomeGet"),
        (11, "NIHomeGetX"),
        (12, "NIPut"),
        (13, "NIPutX"),
        (14, "NIInval"),
    ] {
        m.register_opcode(code, handler);
    }
    for n in 0..4 {
        m.set_global(n, "gHomeNode", 0);
    }
    m.set_global(0, "gMemory", 42);

    println!("node 0 homes the line; memory = 42\n");

    m.inject(1, "SWReadMiss");
    m.inject(3, "SWReadMiss");
    m.run();
    println!(
        "nodes 1 and 3 read-miss:     node1.cache = {}, node3.cache = {}, sharers = {:04b}",
        m.nodes[1].globals["gCache"], m.nodes[3].globals["gCache"], m.nodes[0].directory[&0].ptr
    );

    m.set_global(2, "gStoreValue", 99);
    m.inject(2, "SWWriteMiss");
    m.run();
    println!(
        "node 2 writes 99:            node1.valid = {}, node3.valid = {}, memory = {}, sharers = {:04b}",
        m.nodes[1].globals["gCacheValid"],
        m.nodes[3].globals["gCacheValid"],
        m.nodes[0].globals["gMemory"],
        m.nodes[0].directory[&0].ptr
    );

    m.inject(1, "SWReadMiss");
    m.run();
    println!(
        "node 1 re-reads:             node1.cache = {} (sees node 2's write)",
        m.nodes[1].globals["gCache"]
    );

    println!(
        "\n{} handler invocations, all buffers returned: {}",
        m.handler_runs(),
        m.nodes.iter().all(|n| n.buffers.in_use() == 0)
    );
}
