//! An offline, API-compatible subset of the `criterion` crate.
//!
//! The flash-mc workspace builds without crates.io access, so the
//! `cargo bench` targets link against this stub. It measures wall time
//! with `std::time::Instant` (adaptive iteration counts, mean over a
//! fixed measurement window) and prints one line per benchmark — no
//! statistics, plots, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// How throughput is reported for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A parameterized benchmark identifier.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, like criterion renders it.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{parameter}", name.into()),
        }
    }
}

/// The timing harness handed to benchmark closures.
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, first warming up briefly, then running enough
    /// iterations to fill a short measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that takes
        // roughly the measurement window.
        let calibration_start = Instant::now();
        let mut calibration_iters: u64 = 0;
        while calibration_start.elapsed() < Duration::from_millis(40) {
            black_box(routine());
            calibration_iters += 1;
            if calibration_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = calibration_start.elapsed() / calibration_iters.max(1) as u32;
        let target = Duration::from_millis(150);
        let iters = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

fn run_and_report(id: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { measured: None };
    f(&mut bencher);
    match bencher.measured {
        Some((total, iters)) => {
            let mean = total / iters.max(1) as u32;
            let mut line = format!(
                "{id:<44} {:>12}/iter ({iters} iters)",
                format_duration(mean)
            );
            if let Some(tp) = throughput {
                let per_sec = |n: u64| {
                    let secs = mean.as_secs_f64();
                    if secs > 0.0 {
                        n as f64 / secs
                    } else {
                        0.0
                    }
                };
                match tp {
                    Throughput::Bytes(n) => {
                        line.push_str(&format!("  {:.1} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
                    }
                    Throughput::Elements(n) => {
                        line.push_str(&format!("  {:.0} elem/s", per_sec(n)));
                    }
                }
            }
            println!("{line}");
        }
        None => println!("{id:<44} (no measurement)"),
    }
}

/// A named group of benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; this harness sizes samples by wall
    /// time instead of iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; measurement time is fixed.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_and_report(&format!("{}/{id}", self.name), self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_and_report(
            &format!("{}/{}", self.name, id.name),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark manager.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_and_report(&id.to_string(), None, f);
        self
    }
}

/// Declares a group-runner function invoking each benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($bench(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
