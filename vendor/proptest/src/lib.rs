//! An offline, API-compatible subset of the `proptest` crate.
//!
//! The flash-mc workspace builds in environments with no access to
//! crates.io, so the property tests run against this vendored stub instead
//! of the real framework. It keeps the parts of the API the test suite
//! uses — `Strategy`, `prop_map`, `prop_recursive`, `prop_oneof!`,
//! `proptest!`, `any`, collection/option/regex-pattern strategies — with
//! deterministic generation (seeded per test name and case index) and
//! panics-with-input on failure. Shrinking is intentionally not
//! implemented: a failing case prints its seed and value instead.

pub mod test_runner {
    //! Deterministic RNG, config, and the per-test runner.

    /// A small, fast, deterministic RNG (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn next_below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
        pub fn gen_bool(&mut self, p: f64) -> bool {
            let p = p.clamp(0.0, 1.0);
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
        }
    }

    /// Test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Runs one property over `config.cases` generated inputs.
    pub struct TestRunner {
        config: Config,
        seed: u64,
    }

    impl TestRunner {
        /// Creates a runner whose seed is derived from the test name, so
        /// every test gets a distinct but reproducible stream.
        pub fn new(config: Config, name: &str) -> TestRunner {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRunner { config, seed }
        }

        /// Generates and checks each case; panics with the case number,
        /// seed, and input value if the property panics.
        pub fn run<S, F>(&mut self, strategy: &S, test: F)
        where
            S: super::strategy::Strategy,
            S::Value: std::fmt::Debug,
            F: Fn(S::Value),
        {
            for case in 0..self.config.cases {
                let case_seed = self.seed ^ (case as u64).wrapping_mul(0xA24B_AED4_963E_E407);
                let mut rng = TestRng::new(case_seed);
                let value = strategy.generate(&mut rng);
                let desc = format!("{value:?}");
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {case}/{} failed (seed {case_seed:#x})\n  input: {desc}",
                        self.config.cases
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// is just a deterministic function of the RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `f` receives a handle generating
        /// "smaller" values of the same type and returns the compound
        /// strategy. `depth` bounds nesting; the size/branch hints are
        /// accepted for API compatibility but unused.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let branch = f(current).boxed();
                let leaf = leaf.clone();
                // At every level, fall back to a leaf one time in three so
                // generated trees vary in depth instead of always being
                // maximal.
                current = BoxedStrategy::from_fn(move |rng| {
                    if rng.next_below(3) == 0 {
                        leaf.generate(rng)
                    } else {
                        branch.generate(rng)
                    }
                });
            }
            current
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy::from_fn(move |rng| self.generate(rng))
        }
    }

    /// A cloneable, type-erased strategy.
    pub struct BoxedStrategy<T> {
        gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a generation function.
        pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> BoxedStrategy<T> {
            BoxedStrategy { gen_fn: Rc::new(f) }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen_fn: Rc::clone(&self.gen_fn),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen_fn)(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given arms; must be non-empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.next_below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128).max(1) as u64;
                    (self.start as i128 + rng.next_below(span) as i128) as $t
                }
            }
        )*};
    }

    range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);

    /// String literals act as regex-subset strategies, e.g.
    /// `"[a-z][a-z0-9_]{0,6}"`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            super::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Mostly ASCII, occasionally any scalar value.
            if rng.next_below(8) == 0 {
                char::from_u32(rng.next_below(0xD800) as u32).unwrap_or('a')
            } else {
                (b' ' + rng.next_below(95) as u8) as char
            }
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                min: r.start,
                max: r.end.saturating_sub(1).max(r.start),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `Some` three times in four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod string {
    //! Generation from a small regex subset: literal characters, character
    //! classes with ranges (`[a-z0-9_]`), and `{min,max}` / `{n}` / `*` /
    //! `+` / `?` repetition. This covers the patterns used in the test
    //! suite (e.g. `"[ -~\\n]{0,200}"`).

    use super::test_runner::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            'r' => '\r',
            't' => '\t',
            '0' => '\0',
            other => other,
        }
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars[i])
                        } else {
                            chars[i]
                        };
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let hi = if chars[i + 2] == '\\' {
                                i += 1;
                                unescape(chars[i + 2])
                            } else {
                                chars[i + 2]
                            };
                            ranges.push((lo, hi));
                            i += 3;
                        } else {
                            ranges.push((lo, lo));
                            i += 1;
                        }
                    }
                    i += 1; // closing ]
                    Atom::Class(ranges)
                }
                '\\' => {
                    i += 1;
                    let c = unescape(chars[i]);
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            let (min, max) = if i < chars.len() {
                match chars[i] {
                    '{' => {
                        let close = chars[i..].iter().position(|&c| c == '}').unwrap_or(0) + i;
                        let body: String = chars[i + 1..close].iter().collect();
                        i = close + 1;
                        if let Some((lo, hi)) = body.split_once(',') {
                            (
                                lo.trim().parse().unwrap_or(0),
                                hi.trim().parse().unwrap_or(8),
                            )
                        } else {
                            let n = body.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, 8)
                    }
                    '+' => {
                        i += 1;
                        (1, 8)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    /// Generates one string matching `pattern`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let span = (piece.max - piece.min + 1) as u64;
            let count = piece.min + rng.next_below(span) as usize;
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        if ranges.is_empty() {
                            continue;
                        }
                        let (lo, hi) = ranges[rng.next_below(ranges.len() as u64) as usize];
                        let width = (hi as u32).saturating_sub(lo as u32) + 1;
                        let c = char::from_u32(lo as u32 + rng.next_below(width as u64) as u32)
                            .unwrap_or(lo);
                        out.push(c);
                    }
                }
            }
        }
        out
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Asserts a property holds (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::Config as Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($arg:pat in $strategy:expr $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let strategy = $strategy;
            let mut runner =
                $crate::test_runner::TestRunner::new($config, stringify!($name));
            runner.run(&strategy, |$arg| $body);
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism_same_seed_same_values() {
        let strat = prop::collection::vec(0i64..100, 0..10);
        let mut r1 = crate::test_runner::TestRng::new(7);
        let mut r2 = crate::test_runner::TestRng::new(7);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    #[test]
    fn pattern_generation_matches_subset() {
        let mut rng = crate::test_runner::TestRng::new(3);
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern("[a-z][a-z0-9_]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_roundtrip(v in prop::collection::vec(any::<u64>(), 0..5)) {
            prop_assert!(v.len() < 5);
            prop_assert_eq!(v.len(), v.iter().count());
        }
    }
}
