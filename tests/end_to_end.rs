//! Cross-crate integration tests through the `flash-mc` facade: the full
//! pipeline from protocol text to classified reports, and the interplay
//! between the static checkers and the dynamic simulator.

use flash_mc::checkers::{all_checkers, flash::FlashSpec};
use flash_mc::corpus::eval::evaluate;
use flash_mc::corpus::{generate, plan::plan_for, DEFAULT_SEED};
use flash_mc::prelude::*;
use flash_mc::sim::{Machine, Program, SimConfig, SimEvent};

#[test]
fn facade_reexports_compose() {
    let tu = parse_translation_unit("void f(void) { g(); }", "t.c").unwrap();
    let cfg = Cfg::build(tu.function("f").unwrap());
    assert_eq!(cfg.path_stats().paths, 1);
    let sm = MetalProgram::parse("sm s { start: { g(); } ==> stop ; }").unwrap();
    assert_eq!(sm.name, "s");
}

#[test]
fn full_pipeline_on_one_protocol() {
    let proto = generate(plan_for("bitvector").unwrap(), DEFAULT_SEED);
    let mut driver = Driver::new();
    all_checkers(&mut driver, &proto.spec).unwrap();
    let reports = driver.check_sources(&proto.sources()).unwrap();
    let outcome = evaluate(&proto, &reports);
    assert!(
        outcome.is_exact(),
        "missed: {:?}\nunexpected: {:?}",
        outcome.missed,
        outcome.unexpected
    );
}

#[test]
fn figures_2_and_3_run_from_their_shipped_sources() {
    // The shipped metal files are the paper's figures; they must parse and
    // find their respective bug classes.
    let mut driver = Driver::new();
    driver
        .add_metal_source(flash_mc::checkers::WAIT_FOR_DB_METAL)
        .unwrap();
    driver
        .add_metal_source(flash_mc::checkers::MSGLEN_METAL)
        .unwrap();
    let reports = driver
        .check_source(
            r#"void h(void) {
                MISCBUS_READ_DB(a, b);
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                NI_SEND(t, F_DATA, k, w, d, n);
            }"#,
            "both.c",
        )
        .unwrap();
    assert_eq!(reports.len(), 2);
    assert!(reports.iter().any(|r| r.checker == "wait_for_db"));
    assert!(reports.iter().any(|r| r.checker == "msglen_check"));
}

#[test]
fn static_finding_reproduces_dynamically() {
    // One source, two tools: the checker flags the leak statically, the
    // simulator wedges on it dynamically.
    let src = r#"
        void NILeaky(void) {
            HANDLER_DEFS();
            HANDLER_PROLOGUE();
            if (gErr) {
                return;
            }
            DB_FREE();
        }
    "#;
    // Static.
    let mut driver = Driver::new();
    all_checkers(&mut driver, &FlashSpec::new()).unwrap();
    let reports = driver.check_source(src, "leaky.c").unwrap();
    assert!(reports
        .iter()
        .any(|r| r.checker == "buffer_mgmt" && r.message.contains("leak")));

    // Dynamic.
    let mut machine = Machine::new(
        Program::parse(src).unwrap(),
        SimConfig {
            buffers_per_node: 4,
            ..Default::default()
        },
    );
    machine.set_global(0, "gErr", 1);
    for _ in 0..8 {
        machine.inject(0, "NILeaky");
    }
    machine.run();
    assert!(machine.deadlocked());
    assert!(machine
        .events()
        .iter()
        .any(|e| matches!(e, SimEvent::BufferExhausted { .. })));
}

#[test]
fn custom_spec_tables_change_checker_behavior() {
    // The same code is a false positive without the table entry and clean
    // with it — the §9.1 annotation mechanism.
    let src = r#"
        void PIHandler(void) {
            HANDLER_DEFS();
            HANDLER_PROLOGUE();
            DIR_LOAD();
            DIR_SET_STATE(DIR_SHARED);
            commit_dir_entry();
            DB_FREE();
        }
    "#;
    let run = |spec: FlashSpec| {
        let mut driver = Driver::new();
        all_checkers(&mut driver, &spec).unwrap();
        driver
            .check_source(src, "t.c")
            .unwrap()
            .into_iter()
            .filter(|r| r.checker == "directory")
            .count()
    };
    assert_eq!(run(FlashSpec::new()), 1, "un-annotated helper is flagged");
    let mut spec = FlashSpec::new();
    spec.writeback_routines.insert("commit_dir_entry".into());
    assert_eq!(run(spec), 0, "annotated helper is trusted");
}

#[test]
fn exhaustive_and_state_set_modes_agree_on_a_protocol() {
    // The ablation's correctness side: both traversal modes produce the
    // same msglen reports on real protocol code.
    let proto = generate(plan_for("rac").unwrap(), DEFAULT_SEED.wrapping_add(4));
    let run = |mode| {
        let mut driver = Driver::new();
        driver.mode = mode;
        driver
            .add_metal_source(flash_mc::checkers::MSGLEN_METAL)
            .unwrap();
        let mut reports = driver.check_sources(&proto.sources()).unwrap();
        reports.sort();
        reports
    };
    let a = run(flash_mc::cfg::Mode::StateSet);
    let b = run(flash_mc::cfg::Mode::Exhaustive { max_paths: 200_000 });
    assert_eq!(a, b);
    assert_eq!(a.iter().filter(|r| r.checker == "msglen_check").count(), 8);
}
