//! Shard-farm byte-identity: splitting a check across `--shard i/N`
//! processes that share one cache directory, then folding them with
//! `mcheck merge`, must reproduce the single-process output byte for
//! byte — at every shard count, every worker count, warm or cold. The
//! shard farm is a transport for work, never a second analysis pipeline.
//!
//! Also pins the merge guard: manifests written under a different
//! checker suite are rejected instead of silently mixed.

use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mc-shard-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts(args: &[String]) -> mc_cli::Options {
    mc_cli::parse_args(args.iter().cloned()).expect("args parse")
}

/// Runs the full CLI pipeline, returning the exit code and stdout bytes
/// (stderr carries only human-facing notes and is not compared).
fn run_to_string(o: &mc_cli::Options) -> (u8, String) {
    let (mut out, mut err) = (Vec::new(), Vec::new());
    let code = mc_cli::run_full(o, &mut out, &mut err).expect("run succeeds");
    (code, String::from_utf8(out).unwrap())
}

/// Emits the corpus under `dir` and returns one protocol's sorted source
/// paths plus its spec path. One protocol keeps the 12-cell matrix fast
/// while still spanning multiple translation units per shard split.
fn corpus_protocol(dir: &Path) -> (Vec<String>, String) {
    let corpus = dir.join("corpus");
    let emit = opts(&["--emit-corpus".into(), corpus.display().to_string()]);
    run_to_string(&emit);
    let pdir = corpus.join("bitvector");
    let mut files: Vec<String> = std::fs::read_dir(&pdir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "c"))
        .map(|p| p.display().to_string())
        .collect();
    files.sort();
    assert!(files.len() >= 2, "need multiple units to shard over");
    (files, pdir.join("spec.json").display().to_string())
}

fn base_args(files: &[String], spec: &str, jobs: usize) -> Vec<String> {
    let mut a: Vec<String> = [
        "--builtin",
        "--spec",
        spec,
        "--format",
        "json",
        "--jobs",
        &jobs.to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    a.extend(files.iter().cloned());
    a
}

#[test]
fn shard_merge_matrix_is_byte_identical_to_single_process() {
    let dir = scratch("matrix");
    let (files, spec) = corpus_protocol(&dir);

    // The single-process truth, computed once, uncached, at one worker:
    // every matrix cell must reproduce exactly these bytes.
    let (code, baseline) = run_to_string(&opts(&base_args(&files, &spec, 1)));
    assert_eq!(code, 1, "the corpus has planted bugs");
    assert!(baseline.contains("mcheck-reports"));

    for shards in [1u32, 2, 4] {
        for jobs in [1usize, 4] {
            let cache = dir.join(format!("cache-{shards}x{jobs}"));
            let cache_s = cache.display().to_string();
            for i in 0..shards {
                let mut a = base_args(&files, &spec, jobs);
                a.extend([
                    "--cache-dir".into(),
                    cache_s.clone(),
                    "--shard".into(),
                    format!("{i}/{shards}"),
                ]);
                let (code, out) = run_to_string(&opts(&a));
                assert_eq!(code, 0, "a shard run always exits 0");
                assert!(out.is_empty(), "a shard run renders no reports");
                assert!(
                    cache.join(format!("shard-{i}-of-{shards}.json")).exists(),
                    "shard manifest written"
                );
            }
            let mut m = vec!["merge".to_string()];
            m.extend(base_args(&files, &spec, jobs));
            m.extend(["--cache-dir".into(), cache_s.clone()]);
            let (code, cold) = run_to_string(&opts(&m));
            assert_eq!(code, 1);
            assert_eq!(
                cold, baseline,
                "cold merge differs from single-process ({shards} shards, {jobs} jobs)"
            );
            let (_, warm) = run_to_string(&opts(&m));
            assert_eq!(
                warm, baseline,
                "warm merge differs from single-process ({shards} shards, {jobs} jobs)"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_rejects_manifests_from_a_different_suite() {
    let dir = scratch("suite");
    let (files, spec) = corpus_protocol(&dir);
    let cache = dir.join("cache").display().to_string();

    let mut shard = base_args(&files, &spec, 1);
    shard.extend([
        "--cache-dir".into(),
        cache.clone(),
        "--shard".into(),
        "0/2".into(),
    ]);
    let (code, _) = run_to_string(&opts(&shard));
    assert_eq!(code, 0);

    // Same cache, different suite key: --no-refute changes what the
    // checkers compute, so folding those shards would mix incompatible
    // results. The merge must refuse, naming the manifest.
    let mut m = vec!["merge".to_string(), "--no-refute".to_string()];
    m.extend(base_args(&files, &spec, 1));
    m.extend(["--cache-dir".into(), cache.clone()]);
    let err = mc_cli::run_full(&opts(&m), &mut Vec::new(), &mut Vec::new())
        .expect_err("mismatched suite keys must be rejected");
    let msg = err.to_string();
    assert!(
        msg.contains("different checker suite") && msg.contains("shard-0-of-2.json"),
        "{msg}"
    );

    // With the matching options the same cache merges fine.
    let mut ok = vec!["merge".to_string()];
    ok.extend(base_args(&files, &spec, 1));
    ok.extend(["--cache-dir".into(), cache]);
    let (code, out) = run_to_string(&opts(&ok));
    assert_eq!(code, 1);
    assert!(out.contains("mcheck-reports"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn merge_with_no_manifests_is_an_error() {
    let dir = scratch("empty");
    let (files, spec) = corpus_protocol(&dir);
    let mut m = vec!["merge".to_string()];
    m.extend(base_args(&files, &spec, 1));
    m.extend([
        "--cache-dir".into(),
        dir.join("cache").display().to_string(),
    ]);
    let err = mc_cli::run_full(&opts(&m), &mut Vec::new(), &mut Vec::new())
        .expect_err("nothing to merge");
    assert!(err.to_string().contains("no shard manifests"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
