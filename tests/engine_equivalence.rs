//! Engine-equivalence guarantee: the compiled metal engine is an
//! optimization, never a behavior change. For every corpus protocol and
//! every driver configuration, `--metal-engine compiled` must produce a
//! report vector byte-identical to `--metal-engine interp` — same
//! diagnostics, same witness paths, same order.
//!
//! This is the property that lets the driver default to the compiled
//! engine while keeping the interpreter as the differential oracle.

use flash_mc::checkers::all_checkers;
use flash_mc::corpus::plan::PLANS;
use flash_mc::corpus::{generate, DEFAULT_SEED};
use flash_mc::driver::{Driver, MetalEngine, Report};
use proptest::prelude::*;

/// Runs the full built-in checker suite over one protocol's sources with
/// the given metal engine and returns the merged report vector.
fn check_protocol(
    plan_idx: usize,
    seed: u64,
    engine: MetalEngine,
    prune: bool,
    interproc: bool,
) -> Vec<Report> {
    let proto = generate(&PLANS[plan_idx], seed);
    let mut driver = Driver::new();
    driver.jobs(1);
    driver.set_metal_engine(engine);
    driver.prune(prune);
    driver.interproc(interproc);
    all_checkers(&mut driver, &proto.spec).expect("suite registers");
    driver
        .check_sources(&proto.sources())
        .expect("corpus parses")
}

#[test]
fn full_corpus_identical_across_engines() {
    // Every built-in protocol at the canonical corpus seed, under every
    // prune/interproc combination: the compiled engine must reproduce the
    // interpreter's report vector exactly.
    for (i, _) in PLANS.iter().enumerate() {
        let seed = DEFAULT_SEED.wrapping_add(i as u64);
        for (prune, interproc) in [(true, false), (false, false), (true, true)] {
            let interp = check_protocol(i, seed, MetalEngine::Interp, prune, interproc);
            let compiled = check_protocol(i, seed, MetalEngine::Compiled, prune, interproc);
            assert_eq!(
                compiled, interp,
                "protocol #{i} (prune={prune}, interproc={interproc}) \
                 diverged between engines"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_protocols_identical_across_engines(
        (plan_idx, seed_offset, prune) in (0usize..6, 0u64..1024, any::<bool>())
    ) {
        let seed = DEFAULT_SEED.wrapping_add(seed_offset);
        let interp = check_protocol(plan_idx, seed, MetalEngine::Interp, prune, false);
        let compiled = check_protocol(plan_idx, seed, MetalEngine::Compiled, prune, false);
        prop_assert_eq!(
            compiled,
            interp,
            "plan {} seed {:#x} prune {} diverged between engines",
            plan_idx,
            seed,
            prune
        );
    }
}
