//! Incremental engine equivalence: warm, disk-warm, and touched re-runs
//! must reproduce the cold report vector exactly — same reports, same
//! order — at every worker count, and an incremental re-check after an
//! edit must match a from-scratch run on the edited sources.
//!
//! Together with `tests/determinism.rs` this pins the property that makes
//! caching safe to leave on: output never depends on what happens to be in
//! the cache or on thread scheduling.

use flash_mc::checkers::all_checkers;
use flash_mc::corpus::plan::PLANS;
use flash_mc::corpus::{generate, DEFAULT_SEED};
use flash_mc::driver::cache::DiskCache;
use flash_mc::driver::{CheckEngine, Driver, Report};

fn corpus_sources(
    plan_idx: usize,
) -> (Vec<(String, String)>, flash_mc::checkers::flash::FlashSpec) {
    let proto = generate(&PLANS[plan_idx], DEFAULT_SEED.wrapping_add(plan_idx as u64));
    (proto.sources(), proto.spec.clone())
}

fn driver_for(spec: &flash_mc::checkers::flash::FlashSpec, jobs: usize) -> Driver {
    let mut driver = Driver::new();
    driver.jobs(jobs);
    all_checkers(&mut driver, spec).expect("suite registers");
    driver
}

/// Renders reports the way `mcheck` prints them, so "identical" means
/// byte-identical user-visible output, not just structural equality.
fn rendered(reports: &[Report]) -> String {
    reports
        .iter()
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mc-incr-test-{tag}-{}", std::process::id()))
}

#[test]
fn cold_warm_disk_and_touch_identical_across_worker_counts() {
    let (sources, spec) = corpus_sources(0);
    let baseline = driver_for(&spec, 1)
        .check_sources(&sources)
        .expect("corpus parses");

    let dir = scratch_dir("jobs");
    let _ = std::fs::remove_dir_all(&dir);

    // One shared cache directory across every worker count: the first run
    // is cold and populates it, each later engine replays from disk.
    let mut first = true;
    for jobs in [1usize, 4, 8] {
        let driver = driver_for(&spec, jobs);
        let disk = DiskCache::open(&dir).expect("cache dir");
        let mut engine = CheckEngine::with_disk(disk);

        let (cold, stats) = engine.check_sources(&driver, &sources).expect("parses");
        assert_eq!(cold, baseline, "jobs={jobs} cold run diverged");
        assert_eq!(rendered(&cold), rendered(&baseline));
        if first {
            assert!(!stats.program_hit, "first run cannot be a cache hit");
            first = false;
        } else {
            assert!(
                stats.program_hit,
                "jobs={jobs} should replay the program record from the shared dir"
            );
        }

        // Warm: same engine, same sources.
        let (warm, stats) = engine.check_sources(&driver, &sources).expect("parses");
        assert_eq!(warm, baseline, "jobs={jobs} warm run diverged");
        assert!(stats.program_hit && stats.parses == 0);

        // "Touch": re-presenting the same bytes (what a watch poll sees
        // after a timestamp-only change) must also be a pure replay.
        let touched: Vec<(String, String)> = sources.clone();
        let (after_touch, stats) = engine.check_sources(&driver, &touched).expect("parses");
        assert_eq!(after_touch, baseline, "jobs={jobs} touched run diverged");
        assert!(stats.program_hit && stats.units_checked == 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn one_dirty_warm_run_equals_fresh_cold_run() {
    let (sources, spec) = corpus_sources(1);
    let driver = driver_for(&spec, 4);

    let mut engine = CheckEngine::in_memory();
    engine.check_sources(&driver, &sources).expect("parses");

    // Edit one file: a new helper the local checkers flag (it reads the
    // data buffer without the simulator hooks), so the edit changes reports.
    let mut edited = sources.clone();
    edited[0]
        .0
        .push_str("\nvoid incr_probe(void) { long m; m = MISCBUS_READ_DB(a, b); }\n");

    let (incremental, stats) = engine.check_sources(&driver, &edited).expect("parses");
    assert!(!stats.program_hit);
    assert_eq!(
        stats.units_checked, 1,
        "exactly the edited unit should re-check, got {stats:?}"
    );
    assert_eq!(
        stats.source_hits,
        sources.len() - 1,
        "every other unit should replay, got {stats:?}"
    );

    let (from_scratch, _) = CheckEngine::in_memory()
        .check_sources(&driver, &edited)
        .expect("parses");
    let batch = driver.check_sources(&edited).expect("parses");
    assert_eq!(incremental, from_scratch, "incremental diverged from cold");
    assert_eq!(incremental, batch, "engine diverged from the batch driver");
    assert_eq!(rendered(&incremental), rendered(&batch));
}

#[test]
fn reverting_an_edit_restores_the_original_reports_from_cache() {
    let (sources, spec) = corpus_sources(2);
    let driver = driver_for(&spec, 2);

    let dir = scratch_dir("revert");
    let _ = std::fs::remove_dir_all(&dir);
    let mut engine = CheckEngine::with_disk(DiskCache::open(&dir).expect("cache dir"));

    let (original, _) = engine.check_sources(&driver, &sources).expect("parses");

    let mut edited = sources.clone();
    edited[0].0.push_str("\nvoid transient(void) { }\n");
    engine.check_sources(&driver, &edited).expect("parses");

    // Undo: the original program record is still on disk and in memory, so
    // the revert is a whole-program replay.
    let (reverted, stats) = engine.check_sources(&driver, &sources).expect("parses");
    assert!(stats.program_hit, "revert should hit the program cache");
    assert_eq!(reverted, original);
    let _ = std::fs::remove_dir_all(&dir);
}
