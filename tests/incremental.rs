//! Incremental engine equivalence: warm, disk-warm, and touched re-runs
//! must reproduce the cold report vector exactly — same reports, same
//! order — at every worker count, and an incremental re-check after an
//! edit must match a from-scratch run on the edited sources.
//!
//! Together with `tests/determinism.rs` this pins the property that makes
//! caching safe to leave on: output never depends on what happens to be in
//! the cache or on thread scheduling.

use flash_mc::checkers::all_checkers;
use flash_mc::corpus::plan::PLANS;
use flash_mc::corpus::{generate, DEFAULT_SEED};
use flash_mc::driver::cache::DiskCache;
use flash_mc::driver::{CheckEngine, Driver, Report};

fn corpus_sources(
    plan_idx: usize,
) -> (Vec<(String, String)>, flash_mc::checkers::flash::FlashSpec) {
    let proto = generate(&PLANS[plan_idx], DEFAULT_SEED.wrapping_add(plan_idx as u64));
    (proto.sources(), proto.spec.clone())
}

fn driver_for(spec: &flash_mc::checkers::flash::FlashSpec, jobs: usize) -> Driver {
    let mut driver = Driver::new();
    driver.jobs(jobs);
    all_checkers(&mut driver, spec).expect("suite registers");
    driver
}

/// Renders reports the way `mcheck` prints them, so "identical" means
/// byte-identical user-visible output, not just structural equality.
fn rendered(reports: &[Report]) -> String {
    reports
        .iter()
        .map(|r| r.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("mc-incr-test-{tag}-{}", std::process::id()))
}

#[test]
fn cold_warm_disk_and_touch_identical_across_worker_counts() {
    let (sources, spec) = corpus_sources(0);
    let baseline = driver_for(&spec, 1)
        .check_sources(&sources)
        .expect("corpus parses");

    let dir = scratch_dir("jobs");
    let _ = std::fs::remove_dir_all(&dir);

    // One shared cache directory across every worker count: the first run
    // is cold and populates it, each later engine replays from disk.
    let mut first = true;
    for jobs in [1usize, 4, 8] {
        let driver = driver_for(&spec, jobs);
        let disk = DiskCache::open(&dir).expect("cache dir");
        let mut engine = CheckEngine::with_disk(disk);

        let (cold, stats) = engine.check_sources(&driver, &sources).expect("parses");
        assert_eq!(cold, baseline, "jobs={jobs} cold run diverged");
        assert_eq!(rendered(&cold), rendered(&baseline));
        if first {
            assert!(!stats.program_hit, "first run cannot be a cache hit");
            first = false;
        } else {
            assert!(
                stats.program_hit,
                "jobs={jobs} should replay the program record from the shared dir"
            );
        }

        // Warm: same engine, same sources.
        let (warm, stats) = engine.check_sources(&driver, &sources).expect("parses");
        assert_eq!(warm, baseline, "jobs={jobs} warm run diverged");
        assert!(stats.program_hit && stats.parses == 0);

        // "Touch": re-presenting the same bytes (what a watch poll sees
        // after a timestamp-only change) must also be a pure replay.
        let touched: Vec<(String, String)> = sources.clone();
        let (after_touch, stats) = engine.check_sources(&driver, &touched).expect("parses");
        assert_eq!(after_touch, baseline, "jobs={jobs} touched run diverged");
        assert!(stats.program_hit && stats.units_checked == 0);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn one_dirty_warm_run_equals_fresh_cold_run() {
    let (sources, spec) = corpus_sources(1);
    let driver = driver_for(&spec, 4);

    let mut engine = CheckEngine::in_memory();
    engine.check_sources(&driver, &sources).expect("parses");

    // Edit one file: a new helper the local checkers flag (it reads the
    // data buffer without the simulator hooks), so the edit changes reports.
    let mut edited = sources.clone();
    edited[0]
        .0
        .push_str("\nvoid incr_probe(void) { long m; m = MISCBUS_READ_DB(a, b); }\n");

    let (incremental, stats) = engine.check_sources(&driver, &edited).expect("parses");
    assert!(!stats.program_hit);
    assert_eq!(
        stats.units_checked, 1,
        "exactly the edited unit should re-check, got {stats:?}"
    );
    assert_eq!(
        stats.source_hits,
        sources.len() - 1,
        "every other unit should replay, got {stats:?}"
    );

    let (from_scratch, _) = CheckEngine::in_memory()
        .check_sources(&driver, &edited)
        .expect("parses");
    let batch = driver.check_sources(&edited).expect("parses");
    assert_eq!(incremental, from_scratch, "incremental diverged from cold");
    assert_eq!(incremental, batch, "engine diverged from the batch driver");
    assert_eq!(rendered(&incremental), rendered(&batch));
}

/// One edit step of the invalidation matrix: a probe callee/caller pair
/// appended to the first corpus file, each field independently editable so
/// a step can change exactly one invalidation-relevant dimension.
#[derive(Clone, Copy)]
struct ProbeEdit {
    /// Body of `mtx_callee` — editing it changes the callee's summary.
    callee_body: &'static str,
    /// Full signature of the caller — editing it flips the signature hash.
    caller_sig: &'static str,
    /// Body of `mtx_caller` after the `mtx_callee()` call site.
    caller_body: &'static str,
    /// Trailing whitespace after everything: a layout-only edit that
    /// displaces no token.
    trailing_pad: &'static str,
}

const PROBE_BASE: ProbeEdit = ProbeEdit {
    callee_body: "PROC_DEFS();",
    caller_sig: "void mtx_caller(void)",
    caller_body: "PROC_DEFS();",
    trailing_pad: "",
};

/// The matrix: each step differs from its predecessor in exactly one
/// dimension, and the final step reverts to the primed base.
const MATRIX: [(&str, ProbeEdit); 5] = [
    (
        "body-only",
        ProbeEdit {
            caller_body: "PROC_DEFS(); PROC_PROLOGUE();",
            ..PROBE_BASE
        },
    ),
    (
        "signature",
        ProbeEdit {
            caller_sig: "void mtx_caller(int pad)",
            caller_body: "PROC_DEFS(); PROC_PROLOGUE();",
            ..PROBE_BASE
        },
    ),
    (
        "layout-only",
        ProbeEdit {
            caller_sig: "void mtx_caller(int pad)",
            caller_body: "PROC_DEFS(); PROC_PROLOGUE();",
            trailing_pad: "   \n",
            ..PROBE_BASE
        },
    ),
    (
        "callee-summary",
        ProbeEdit {
            callee_body: "PROC_DEFS(); DB_FREE();",
            caller_sig: "void mtx_caller(int pad)",
            caller_body: "PROC_DEFS(); PROC_PROLOGUE();",
            trailing_pad: "   \n",
        },
    ),
    ("revert", PROBE_BASE),
];

fn with_probes(sources: &[(String, String)], e: &ProbeEdit) -> Vec<(String, String)> {
    let mut out = sources.to_vec();
    out[0].0.push_str(&format!(
        "\nvoid mtx_callee(void) {{ {} }}\n{} {{ mtx_callee(); {} }}\n{}",
        e.callee_body, e.caller_sig, e.caller_body, e.trailing_pad
    ));
    out
}

fn interproc_driver(spec: &flash_mc::checkers::flash::FlashSpec, jobs: usize) -> Driver {
    let mut driver = driver_for(spec, jobs);
    driver.interproc(true);
    driver
}

/// The full invalidation matrix, at every worker count: every step's
/// incremental output is byte-identical to a from-scratch batch run on the
/// same sources, and the per-step stats show the intended tier answered —
/// function replay for a body edit, the AST key for a layout edit, a
/// red caller for a callee-summary change, a program replay for a revert.
#[test]
fn invalidation_matrix_byte_identical_across_jobs() {
    let (sources, spec) = corpus_sources(0);

    // Batch output is jobs-independent by contract, so one jobs=1 baseline
    // per step also pins cross-job byte identity for the engines below.
    let baseline_driver = interproc_driver(&spec, 1);
    let base_sources = with_probes(&sources, &PROBE_BASE);
    let prime_baseline = baseline_driver
        .check_sources(&base_sources)
        .expect("probes parse");
    let baselines: Vec<Vec<Report>> = MATRIX
        .iter()
        .map(|(_, e)| {
            baseline_driver
                .check_sources(&with_probes(&sources, e))
                .expect("probes parse")
        })
        .collect();

    for jobs in [1usize, 4, 8] {
        let driver = interproc_driver(&spec, jobs);
        let mut engine = CheckEngine::in_memory();
        let (prime, _) = engine
            .check_sources(&driver, &base_sources)
            .expect("parses");
        assert_eq!(prime, prime_baseline, "jobs={jobs} prime diverged");

        for ((label, edit), baseline) in MATRIX.iter().zip(&baselines) {
            let step = with_probes(&sources, edit);
            let (got, stats) = engine.check_sources(&driver, &step).expect("parses");
            assert_eq!(got, *baseline, "jobs={jobs} step={label} diverged");
            assert_eq!(
                rendered(&got),
                rendered(baseline),
                "jobs={jobs} step={label} rendering diverged"
            );
            match *label {
                "body-only" => {
                    // Under interproc the edited unit's whole component is
                    // demoted (its callee summaries changed), so the unit
                    // counters reflect the component — the function tier is
                    // where the edit stays small.
                    assert!(
                        stats.functions_replayed >= 10,
                        "{label}: the unchanged functions of the dirty \
                         component should replay green, got {stats:?}"
                    );
                    assert!(
                        stats.functions_rechecked >= 1 && stats.functions_rechecked <= 4,
                        "{label}: only the edited caller (and its red \
                         neighbourhood) should re-check, got {stats:?}"
                    );
                    assert!(
                        stats.functions_rechecked * 10 < stats.functions_replayed,
                        "{label}: a body-only edit must re-check under 10% \
                         of the replayed functions, got {stats:?}"
                    );
                }
                "signature" => {
                    assert!(
                        stats.functions_rechecked >= 1,
                        "{label}: a signature edit must redden the function, \
                         got {stats:?}"
                    );
                }
                "layout-only" => {
                    assert_eq!(stats.ast_hits, 1, "{label}: {stats:?}");
                    assert_eq!(stats.units_checked, 0, "{label}: {stats:?}");
                }
                "callee-summary" => {
                    assert!(
                        stats.functions_rechecked >= 2,
                        "{label}: the callee AND its summary-dependent \
                         caller must both re-check, got {stats:?}"
                    );
                }
                "revert" => {
                    assert!(
                        stats.program_hit,
                        "{label}: the primed program record should replay, \
                         got {stats:?}"
                    );
                    assert_eq!(
                        got, prime,
                        "{label}: revert must restore the primed reports"
                    );
                }
                other => unreachable!("unknown matrix step {other}"),
            }
        }
    }
}

/// The component-replay oracle (`--invalidate component`) walks the same
/// matrix and must agree with function-granular invalidation step for
/// step — the differential contract that keeps the fast path honest.
#[test]
fn component_oracle_matches_function_invalidation_step_for_step() {
    use flash_mc::driver::Invalidation;

    let (sources, spec) = corpus_sources(0);
    let driver = interproc_driver(&spec, 4);
    let base_sources = with_probes(&sources, &PROBE_BASE);

    let mut fine = CheckEngine::in_memory();
    let mut oracle = CheckEngine::in_memory();
    oracle.set_invalidation(Invalidation::Component);

    let (a, _) = fine.check_sources(&driver, &base_sources).expect("parses");
    let (b, _) = oracle
        .check_sources(&driver, &base_sources)
        .expect("parses");
    assert_eq!(a, b, "prime diverged between invalidation modes");

    for (label, edit) in &MATRIX {
        let step = with_probes(&sources, edit);
        let (fine_reports, fine_stats) = fine.check_sources(&driver, &step).expect("parses");
        let (oracle_reports, _) = oracle.check_sources(&driver, &step).expect("parses");
        assert_eq!(
            fine_reports, oracle_reports,
            "step={label}: function-granular and component invalidation \
             disagreed ({fine_stats:?})"
        );
        assert_eq!(rendered(&fine_reports), rendered(&oracle_reports));
    }
}

/// Changing a metal program is a suite change: every cached artifact is
/// scoped out, and the next run matches a from-scratch run under the new
/// program.
#[test]
fn metal_program_change_invalidates_and_matches_cold() {
    const SM_V1: &str = r#"
        sm wait_for_db {
            decl { scalar } addr, buf;
            start:
                { WAIT_FOR_DB_FULL(addr); } ==> stop
              | { MISCBUS_READ_DB(addr, buf); } ==> { err("Buffer not synchronized"); }
            ;
        }
    "#;
    // Same machine, different diagnostic text: a one-token program edit.
    const SM_V2: &str = r#"
        sm wait_for_db {
            decl { scalar } addr, buf;
            start:
                { WAIT_FOR_DB_FULL(addr); } ==> stop
              | { MISCBUS_READ_DB(addr, buf); } ==> { err("Raw read of unsynchronized buffer"); }
            ;
        }
    "#;

    let srcs: Vec<(String, String)> = vec![
        (
            "void raw(void) { MISCBUS_READ_DB(x, y); }".into(),
            "raw.c".into(),
        ),
        (
            "void synced(void) { WAIT_FOR_DB_FULL(x); MISCBUS_READ_DB(x, y); }".into(),
            "synced.c".into(),
        ),
    ];

    let mut d1 = Driver::new();
    d1.add_metal_source(SM_V1).expect("v1 compiles");
    let mut d2 = Driver::new();
    d2.add_metal_source(SM_V2).expect("v2 compiles");
    assert_ne!(
        d1.suite_key(),
        d2.suite_key(),
        "a metal edit must change the suite key"
    );

    let mut engine = CheckEngine::in_memory();
    engine.check_sources(&d1, &srcs).expect("parses");

    let (under_v2, stats) = engine.check_sources(&d2, &srcs).expect("parses");
    assert!(!stats.program_hit, "old metal program must not replay");
    assert_eq!(stats.units_checked, srcs.len(), "{stats:?}");
    assert_eq!(
        under_v2,
        d2.check_sources(&srcs).expect("parses"),
        "post-edit engine output diverged from cold"
    );
    assert!(
        rendered(&under_v2).contains("Raw read of unsynchronized buffer"),
        "the new diagnostic text should surface: {}",
        rendered(&under_v2)
    );
}

#[test]
fn reverting_an_edit_restores_the_original_reports_from_cache() {
    let (sources, spec) = corpus_sources(2);
    let driver = driver_for(&spec, 2);

    let dir = scratch_dir("revert");
    let _ = std::fs::remove_dir_all(&dir);
    let mut engine = CheckEngine::with_disk(DiskCache::open(&dir).expect("cache dir"));

    let (original, _) = engine.check_sources(&driver, &sources).expect("parses");

    let mut edited = sources.clone();
    edited[0].0.push_str("\nvoid transient(void) { }\n");
    engine.check_sources(&driver, &edited).expect("parses");

    // Undo: the original program record is still on disk and in memory, so
    // the revert is a whole-program replay.
    let (reverted, stats) = engine.check_sources(&driver, &sources).expect("parses");
    assert!(stats.program_hit, "revert should hit the program cache");
    assert_eq!(reverted, original);
    let _ = std::fs::remove_dir_all(&dir);
}
