//! Determinism guarantee of the parallel driver: for any corpus protocol
//! and any worker count, `check_sources` produces a report vector that is
//! byte-identical to the sequential run — same reports, same order.
//!
//! This is the property that makes `--jobs` safe to default to the
//! machine's parallelism: output never depends on thread scheduling.

use flash_mc::checkers::all_checkers;
use flash_mc::corpus::plan::PLANS;
use flash_mc::corpus::{generate, DEFAULT_SEED};
use flash_mc::driver::{Driver, Report};
use proptest::prelude::*;

/// Runs the full built-in checker suite over one protocol's sources at the
/// given worker count and returns the merged report vector.
fn check_protocol(plan_idx: usize, seed: u64, jobs: usize) -> Vec<Report> {
    let proto = generate(&PLANS[plan_idx], seed);
    let mut driver = Driver::new();
    driver.jobs(jobs);
    all_checkers(&mut driver, &proto.spec).expect("suite registers");
    driver
        .check_sources(&proto.sources())
        .expect("corpus parses")
}

#[test]
fn full_corpus_identical_across_worker_counts() {
    // Every built-in protocol at the canonical corpus seed: the parallel
    // runs must reproduce the sequential report vector exactly.
    for (i, _) in PLANS.iter().enumerate() {
        let seed = DEFAULT_SEED.wrapping_add(i as u64);
        let sequential = check_protocol(i, seed, 1);
        for jobs in [2, 4, 8] {
            let parallel = check_protocol(i, seed, jobs);
            assert_eq!(
                parallel, sequential,
                "protocol #{i} at jobs={jobs} diverged from the sequential run"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_protocols_identical_across_worker_counts(
        (plan_idx, seed_offset, jobs) in (0usize..6, 0u64..1024, 2usize..9)
    ) {
        let seed = DEFAULT_SEED.wrapping_add(seed_offset);
        let sequential = check_protocol(plan_idx, seed, 1);
        let parallel = check_protocol(plan_idx, seed, jobs);
        prop_assert_eq!(
            parallel,
            sequential,
            "plan {} seed {:#x} jobs {} diverged",
            plan_idx,
            seed,
            jobs
        );
    }
}
