//! # flash-mc
//!
//! A reproduction, as a Rust library, of the system from:
//!
//! > Andy Chou, Benjamin Chelf, Dawson Engler, Mark Heinrich.
//! > *Using Meta-level Compilation to Check FLASH Protocol Code.*
//! > ASPLOS 2000.
//!
//! Meta-level compilation (MC) lets system implementors write small,
//! system-specific compiler extensions — state-machine *checkers* in a DSL
//! called **metal** — that are applied down every execution path of every
//! function in the checked source. This workspace provides:
//!
//! * [`ast`] — front end for the C subset FLASH protocol code is written in,
//! * [`mod@cfg`] — control-flow graphs and path statistics,
//! * [`metal`] — the metal DSL (parser, pattern matcher, SM engine),
//! * [`driver`] — the xg++-like analysis driver and global (inter-procedural)
//!   analysis framework,
//! * [`checkers`] — the paper's eight FLASH checkers,
//! * [`corpus`] — a deterministic synthetic FLASH protocol generator with
//!   seeded bugs matching the paper's per-protocol counts,
//! * [`sim`] — a FlashLite-analog protocol simulator that demonstrates the
//!   dynamic consequences of the statically-found bugs.
//!
//! # Quickstart
//!
//! ```
//! use flash_mc::prelude::*;
//!
//! // 1. Obtain protocol code (here: one generated FLASH protocol file).
//! let src = r#"
//!     void NILocalGet(void) {
//!         MISCBUS_READ_DB(addr, buf);   /* read before wait: race! */
//!         WAIT_FOR_DB_FULL(addr);
//!     }
//! "#;
//!
//! // 2. Load the buffer-race checker (Figure 2 of the paper) and run it.
//! let sm = MetalProgram::parse(flash_mc::checkers::WAIT_FOR_DB_METAL)?;
//! let mut driver = Driver::new();
//! driver.add_metal_checker(sm)?;
//! let reports = driver.check_source(src, "example.c")?;
//! assert_eq!(reports.len(), 1);
//! assert!(reports[0].message.contains("Buffer not synchronized"));
//! # Ok::<(), flash_mc::driver::DriverError>(())
//! ```

#![warn(missing_docs)]

pub use mc_ast as ast;
pub use mc_cfg as cfg;
pub use mc_checkers as checkers;
pub use mc_corpus as corpus;
pub use mc_driver as driver;
pub use mc_metal as metal;
pub use mc_sim as sim;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use mc_ast::{parse_translation_unit, TranslationUnit};
    pub use mc_cfg::Cfg;
    pub use mc_driver::{Driver, Report, Severity};
    pub use mc_metal::MetalProgram;
}
