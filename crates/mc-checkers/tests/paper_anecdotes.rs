//! Regression tests for the paper's *specific anecdotes* — each test is a
//! faithful code-shape of a bug or incident the paper narrates, checked
//! end-to-end through the driver with the full suite registered.

use mc_checkers::{all_checkers, flash::FlashSpec};
use mc_driver::{Driver, Report};

fn check_with(spec: FlashSpec, src: &str) -> Vec<Report> {
    let mut driver = Driver::new();
    all_checkers(&mut driver, &spec).unwrap();
    driver.check_source(src, "anecdote.c").unwrap()
}

fn check(src: &str) -> Vec<Report> {
    check_with(FlashSpec::new(), src)
}

/// §4: "in a couple of cases only the first byte of the buffer was read
/// without explicit synchronization ... they were indeed possible race
/// conditions."
#[test]
fn first_byte_early_peek() {
    let r = check(
        r#"void NIOpcodePeek(void) {
            HANDLER_DEFS();
            HANDLER_PROLOGUE();
            int op;
            op = MISCBUS_READ_DB(addr, 0) & 255;
            if (op == OPC_SPECIAL) {
                WAIT_FOR_DB_FULL(addr);
                gSlow = gSlow + 1;
            }
            DB_FREE();
        }"#,
    );
    assert_eq!(r.iter().filter(|x| x.checker == "wait_for_db").count(), 1);
}

/// §5: "It is not unusual for a length assignment to be hundreds of lines
/// away from the message send that uses it" — with the send buried under
/// the dirty-remote + full-queue double corner case that "might never
/// occur in practice".
#[test]
fn uncached_read_corner_case() {
    let filler: String = (0..60).map(|i| format!("g{i} = g{i} + 1;\n")).collect();
    let src = format!(
        r#"void NIUncachedRead(void) {{
            HANDLER_DEFS();
            HANDLER_PROLOGUE();
            HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
            {filler}
            if (gDirtyRemote) {{
                if (gQueueFull) {{
                    NI_SEND(MSG_REPLY, F_DATA, 1, W_NOWAIT, 1, 0);
                }}
            }}
            DB_FREE();
        }}"#
    );
    let r = check(&src);
    let msglen: Vec<_> = r.iter().filter(|x| x.checker == "msglen_check").collect();
    assert_eq!(msglen.len(), 1);
    assert_eq!(msglen[0].message, "data send, zero len");
}

/// §6: "dyn_ptr, rac and bitvector all share a similar bug because of
/// their common heritage ... it was fixed in the original source, but the
/// maintainer did not know to update the other protocols." The checker
/// finds the same double free in each copy.
#[test]
fn shared_legacy_double_free_found_in_every_copy() {
    let template = |name: &str| {
        format!(
            r#"void {name}(void) {{
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                NI_SEND(MSG_REPLY, F_NODATA, 1, W_NOWAIT, 1, 0);
                DB_FREE();
                DB_FREE();
            }}"#
        )
    };
    for proto_copy in ["NIDynPtrLegacy", "NIRacLegacy", "NIBvLegacy"] {
        let r = check(&template(proto_copy));
        assert_eq!(
            r.iter().filter(|x| x.checker == "buffer_mgmt").count(),
            1,
            "{proto_copy}"
        );
    }
}

/// §7: "an implementor who had not written the protocol inserted code to
/// workaround a hardware bug" — the extra send lives in a helper, so only
/// inter-procedural analysis sees the quota violation, and the report
/// carries a back trace through the call.
#[test]
fn lane_workaround_back_trace() {
    let mut spec = FlashSpec::new();
    spec.lane_quota.insert("NIRemoteGet".into(), [4, 4, 1, 4]);
    let r = check_with(
        spec,
        r#"void hw_workaround(void) {
            PROC_DEFS();
            PROC_PROLOGUE();
            HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
            NI_SEND(MSG_REQ, F_NODATA, 1, W_NOWAIT, 1, 0);
        }
        void NIRemoteGet(void) {
            HANDLER_DEFS();
            HANDLER_PROLOGUE();
            HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
            NI_SEND(MSG_REQ, F_NODATA, 1, W_NOWAIT, 1, 0);
            hw_workaround();
            DB_FREE();
        }"#,
    );
    let lanes: Vec<_> = r.iter().filter(|x| x.checker == "lanes").collect();
    assert_eq!(lanes.len(), 1);
    assert_eq!(lanes[0].function, "NIRemoteGet");
    assert!(
        lanes[0]
            .steps
            .iter()
            .any(|t| t.note.contains("hw_workaround")),
        "witness path must name the helper: {:?}",
        lanes[0].steps
    );
}

/// §11: the "betrayal" — a manual refcount double-increment made a
/// double free *correct*; the checker was blind to it, an implementor
/// "fixed" the non-bug, and the machine stopped booting. The post-incident
/// check objects to the call itself.
#[test]
fn post_incident_refcount_check() {
    let r = check(
        r#"void NIBetrayal(void) {
            HANDLER_DEFS();
            HANDLER_PROLOGUE();
            DB_REFCOUNT_INCR();
            DB_FREE();
            DB_FREE();
        }"#,
    );
    // The refcount check fires; the buffer checker still (blindly) calls
    // the second free a double free — exactly the blindness the incident
    // exposed.
    assert!(r.iter().any(|x| x.checker == "refcount_bump"));
    assert!(r.iter().any(|x| x.checker == "buffer_mgmt"));
}

/// §6.1: annotations are "checkable comments" — `no_free_needed()`
/// documents an intentional ownership transfer and silences the leak
/// report on exactly that path.
#[test]
fn annotation_as_checkable_comment() {
    let without = check(
        r#"void NIChained(void) {
            HANDLER_DEFS();
            HANDLER_PROLOGUE();
            if (gDeferToNext) {
                return;
            }
            DB_FREE();
        }"#,
    );
    assert!(without.iter().any(|x| x.checker == "buffer_mgmt"));
    let with = check(
        r#"void NIChained(void) {
            HANDLER_DEFS();
            HANDLER_PROLOGUE();
            if (gDeferToNext) {
                no_free_needed();
                return;
            }
            DB_FREE();
        }"#,
    );
    assert!(!with.iter().any(|x| x.checker == "buffer_mgmt"));
}

/// §9: speculative handlers that "modify the entry in anticipation of the
/// common case" and bail with a NAK are recognized via the NAK reply; the
/// same back-out without a NAK is reported.
#[test]
fn speculative_nak_heuristic() {
    let with_nak = check(
        r#"void NISpec(void) {
            HANDLER_DEFS();
            HANDLER_PROLOGUE();
            DIR_LOAD();
            DIR_SET_STATE(DIR_PENDING);
            if (gQueueFull) {
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                NI_SEND(MSG_NAK, F_NODATA, 1, W_NOWAIT, 1, 0);
                DB_FREE();
                return;
            }
            DIR_WRITEBACK();
            DB_FREE();
        }"#,
    );
    assert!(
        !with_nak.iter().any(|x| x.checker == "directory"),
        "{with_nak:?}"
    );
}

/// A handler exercising every rule at once stays clean — the suite does
/// not trip over correct, idiomatic FLASH code.
#[test]
fn kitchen_sink_clean_handler() {
    let r = check(
        r#"void NIKitchenSink(void) {
            HANDLER_DEFS();
            HANDLER_PROLOGUE();
            int v;
            int nb;
            WAIT_FOR_DB_FULL(addr);
            v = MISCBUS_READ_DB(addr, 0);
            DIR_LOAD();
            switch (DIR_STATE()) {
            case DIR_IDLE:
                HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
                NI_SEND(MSG_REPLY, F_DATA, 1, W_NOWAIT, 1, 0);
                break;
            case DIR_SHARED:
                DIR_SET_STATE(DIR_PENDING);
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                PI_SEND(F_NODATA, 1, 0, W_WAIT, 1, 0);
                PI_WAIT();
                break;
            default:
                break;
            }
            DIR_WRITEBACK();
            DB_FREE();
            nb = DB_ALLOC();
            if (nb != DB_FAIL) {
                DB_WRITE(nb, 0, v);
            }
            DB_FREE();
        }"#,
    );
    assert!(r.is_empty(), "{r:#?}");
}
