//! §4 — Buffer fill race conditions (Figure 2, Table 2).
//!
//! When a message arrives, the handler starts running while the hardware is
//! still filling the data buffer. Reading the buffer (`MISCBUS_READ_DB`)
//! without first synchronizing (`WAIT_FOR_DB_FULL`) races the hardware.
//! The checker itself is the metal program in
//! [`crate::WAIT_FOR_DB_METAL`]; this module provides a convenience runner
//! and statistics helper used by the Table 2 reproduction.

use crate::flash;
use mc_ast::{walk_function, Expr, Function, Visitor};
use mc_cfg::{run_machine, Cfg, Mode};
use mc_metal::{MetalMachine, MetalProgram, MetalReport};

/// Runs the Figure 2 checker over one function, returning its reports.
///
/// # Panics
///
/// Panics if the embedded metal source is invalid (checked by tests).
pub fn check_function(func: &Function) -> Vec<MetalReport> {
    let prog = MetalProgram::parse(crate::WAIT_FOR_DB_METAL).expect("Figure 2 parses");
    let cfg = Cfg::build(func);
    let mut machine = MetalMachine::new(&prog);
    let init = machine.start_state();
    run_machine(&cfg, &mut machine, init, Mode::StateSet);
    machine.reports
}

/// Counts the `MISCBUS_READ_DB` uses in a function — the "Applied" column
/// of Table 2 ("the number of reads performed").
pub fn count_reads(func: &Function) -> usize {
    struct V(usize);
    impl Visitor for V {
        fn visit_expr(&mut self, e: &Expr) {
            if let Some((name, _)) = e.as_call() {
                if name == flash::MISCBUS_READ_DB {
                    self.0 += 1;
                }
            }
        }
    }
    let mut v = V(0);
    walk_function(&mut v, func);
    v.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::parse_translation_unit;

    fn func(src: &str) -> mc_ast::Function {
        let tu = parse_translation_unit(src, "t.c").unwrap();
        let f = tu.functions().next().unwrap().clone();
        f
    }

    #[test]
    fn race_detected() {
        let f = func("void h(void) { MISCBUS_READ_DB(a, b); }");
        let r = check_function(&f);
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("not synchronized"));
    }

    #[test]
    fn synchronized_read_clean() {
        let f = func("void h(void) { WAIT_FOR_DB_FULL(a); MISCBUS_READ_DB(a, b); }");
        assert!(check_function(&f).is_empty());
    }

    #[test]
    fn late_wait_on_needed_path_only_is_fine() {
        // The paper: WAIT_FOR_DB_FULL is called as late as possible, only
        // on paths that read the buffer.
        let f = func(
            "void h(void) { if (needs_data) { WAIT_FOR_DB_FULL(a); MISCBUS_READ_DB(a, b); } DB_FREE(); }",
        );
        assert!(check_function(&f).is_empty());
    }

    #[test]
    fn first_byte_shortcut_is_still_a_race() {
        // One of the real bitvector bugs: only the first byte was read
        // without synchronization.
        let f = func("void h(void) { x = MISCBUS_READ_DB(a, 0) & 255; WAIT_FOR_DB_FULL(a); }");
        assert_eq!(check_function(&f).len(), 1);
    }

    #[test]
    fn read_counting() {
        let f = func(
            "void h(void) { WAIT_FOR_DB_FULL(a); MISCBUS_READ_DB(a, b); MISCBUS_READ_DB(a, c); }",
        );
        assert_eq!(count_reads(&f), 2);
    }
}
