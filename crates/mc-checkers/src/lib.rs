//! # mc-checkers
//!
//! The eight FLASH protocol checkers of the paper, plus the §11
//! "manual-refcount" check added after the double-free incident:
//!
//! | module | paper section | kind |
//! |---|---|---|
//! | [`buffer_race`] | §4, Figure 2, Table 2 | metal |
//! | [`msglen`] | §5, Figure 3, Table 3 | metal |
//! | [`buffer_mgmt`] | §6, Table 4 | native SM + tables + annotations |
//! | [`lanes`] | §7 | native, inter-procedural |
//! | [`exec_restrict`] | §8, Table 5 | native AST walks |
//! | [`alloc_check`] | §9, Table 6 | native SM |
//! | [`directory`] | §9, Table 6 | native SM |
//! | [`send_wait`] | §9, Table 6 | native SM |
//! | [`REFCOUNT_BUMP_METAL`] | §11 | metal |
//!
//! The [`flash`] module holds the macro vocabulary and the per-protocol
//! [`flash::FlashSpec`] tables the native checkers consult.
//!
//! # Example
//!
//! ```
//! use mc_checkers::{all_checkers, flash::FlashSpec};
//! use mc_driver::Driver;
//!
//! let mut driver = Driver::new();
//! all_checkers(&mut driver, &FlashSpec::new()).unwrap();
//! let reports = driver.check_source(r#"
//!     void NILocalGet(void) {
//!         HANDLER_DEFS();
//!         HANDLER_PROLOGUE();
//!         MISCBUS_READ_DB(addr, tmp);   /* race: no WAIT_FOR_DB_FULL */
//!         DB_FREE();
//!     }
//! "#, "ni.c")?;
//! assert!(reports.iter().any(|r| r.checker == "wait_for_db"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod alloc_check;
pub mod buffer_mgmt;
pub mod buffer_race;
pub mod directory;
pub mod exec_restrict;
pub mod flash;
pub mod lanes;
pub mod msglen;
pub mod send_wait;
mod violations;

pub(crate) use violations::{dedup_found, stamp_witness};

use mc_driver::{Driver, DriverError};

/// The metal source of the buffer-race checker (Figure 2 of the paper).
pub const WAIT_FOR_DB_METAL: &str = include_str!("../metal/wait_for_db.metal");

/// The metal source of the message-length checker (Figure 3 of the paper).
pub const MSGLEN_METAL: &str = include_str!("../metal/msglen.metal");

/// The §11 check added after the "betrayal" incident: aggressively object
/// to the manual reference-count bump that blinded the buffer checker.
pub const REFCOUNT_BUMP_METAL: &str = r#"
sm refcount_bump {
    start:
        { DB_REFCOUNT_INCR(); } ==>
            { err("manual data-buffer refcount increment: invisible to the buffer checker"); }
    ;
}
"#;

/// Registers the full checker suite — the two metal checkers, the §11
/// refcount check, and the six native extensions — on `driver`.
///
/// # Errors
///
/// Returns [`DriverError::Metal`] if an embedded metal source fails to
/// parse (a build-time invariant; the test suite pins it).
pub fn all_checkers(driver: &mut Driver, spec: &flash::FlashSpec) -> Result<(), DriverError> {
    driver.add_metal_source(WAIT_FOR_DB_METAL)?;
    driver.add_metal_source(MSGLEN_METAL)?;
    driver.add_metal_source(REFCOUNT_BUMP_METAL)?;
    driver.add_checker(Box::new(buffer_mgmt::BufferMgmt::new(spec.clone())));
    driver.add_checker(Box::new(lanes::Lanes::new(spec.clone())));
    driver.add_checker(Box::new(exec_restrict::ExecRestrict::new(spec.clone())));
    driver.add_checker(Box::new(alloc_check::AllocCheck::new()));
    driver.add_checker(Box::new(directory::Directory::new(spec.clone())));
    driver.add_checker(Box::new(send_wait::SendWait::new()));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_metal_sources_parse() {
        assert!(mc_metal::MetalProgram::parse(WAIT_FOR_DB_METAL).is_ok());
        assert!(mc_metal::MetalProgram::parse(MSGLEN_METAL).is_ok());
        assert!(mc_metal::MetalProgram::parse(REFCOUNT_BUMP_METAL).is_ok());
    }

    #[test]
    fn suite_registers_nine_checkers() {
        let mut d = Driver::new();
        all_checkers(&mut d, &flash::FlashSpec::new()).unwrap();
        assert_eq!(d.checker_count(), 9);
    }
}
