//! FLASH protocol vocabulary: the macro names, handler conventions, and
//! per-protocol tables the checkers consult.
//!
//! The real FLASH headers defined these macros; protocol handlers are
//! written entirely in terms of them, which is what makes the code so
//! amenable to pattern-based checking. The corpus generator emits code in
//! exactly this vocabulary.

use mc_json::{FromJson, Json, JsonError, ToJson};
use std::collections::{BTreeMap, BTreeSet};

/// Number of virtual network lanes (§7 of the paper).
pub const NUM_LANES: usize = 4;

/// The buffer-synchronization wait macro (Figure 2).
pub const WAIT_FOR_DB_FULL: &str = "WAIT_FOR_DB_FULL";
/// The explicit data-buffer read macro (Figure 2).
pub const MISCBUS_READ_DB: &str = "MISCBUS_READ_DB";

/// Send macros: `PI_SEND(flag, keep, swap, wait, dec, null)`.
pub const PI_SEND: &str = "PI_SEND";
/// `IO_SEND(flag, keep, swap, wait, dec, null)`.
pub const IO_SEND: &str = "IO_SEND";
/// `NI_SEND(type, flag, keep, wait, dec, null)`.
pub const NI_SEND: &str = "NI_SEND";

/// Wait-for-reply macros, one per hardware interface.
pub const PI_WAIT: &str = "PI_WAIT";
/// See [`PI_WAIT`].
pub const IO_WAIT: &str = "IO_WAIT";
/// See [`PI_WAIT`].
pub const NI_WAIT: &str = "NI_WAIT";

/// `F_DATA` / `F_NODATA`: the has-data send parameter (Figure 3).
pub const F_DATA: &str = "F_DATA";
/// See [`F_DATA`].
pub const F_NODATA: &str = "F_NODATA";
/// `W_WAIT` / `W_NOWAIT`: the wait send parameter (§9 send-wait check).
pub const W_WAIT: &str = "W_WAIT";
/// See [`W_WAIT`].
pub const W_NOWAIT: &str = "W_NOWAIT";

/// Message-length constants (Figure 3).
pub const LEN_NODATA: &str = "LEN_NODATA";
/// See [`LEN_NODATA`].
pub const LEN_WORD: &str = "LEN_WORD";
/// See [`LEN_NODATA`].
pub const LEN_CACHELINE: &str = "LEN_CACHELINE";

/// Message-type constant for negative acknowledgements; a speculative
/// handler that sends a NAK legitimately discards directory modifications.
pub const MSG_NAK: &str = "MSG_NAK";

/// Data-buffer management macros (§6).
pub const DB_FREE: &str = "DB_FREE";
/// `b = DB_ALLOC();` allocates a new data buffer.
pub const DB_ALLOC: &str = "DB_ALLOC";
/// Sentinel returned by a failed [`DB_ALLOC`].
pub const DB_FAIL: &str = "DB_FAIL";
/// `DB_WRITE(buf, off, val)` writes message data into a buffer.
pub const DB_WRITE: &str = "DB_WRITE";

/// Directory-entry macros (§9).
pub const DIR_LOAD: &str = "DIR_LOAD";
/// Reads the loaded entry's state.
pub const DIR_STATE: &str = "DIR_STATE";
/// Reads the loaded entry's sharer vector / pointer field.
pub const DIR_PTR: &str = "DIR_PTR";
/// Modifies the loaded entry.
pub const DIR_SET_STATE: &str = "DIR_SET_STATE";
/// Modifies the loaded entry.
pub const DIR_SET_PTR: &str = "DIR_SET_PTR";
/// Writes the (modified) entry back to memory.
pub const DIR_WRITEBACK: &str = "DIR_WRITEBACK";
/// Explicit directory-address computation macro; computing the address by
/// hand instead is the "abstraction error" false-positive class of §9.1.
pub const DIR_ADDR: &str = "DIR_ADDR";

/// Simulator hooks (§8): hardware handlers.
pub const HANDLER_DEFS: &str = "HANDLER_DEFS";
/// See [`HANDLER_DEFS`].
pub const HANDLER_PROLOGUE: &str = "HANDLER_PROLOGUE";
/// Simulator hooks: software handlers.
pub const SWHANDLER_DEFS: &str = "SWHANDLER_DEFS";
/// See [`SWHANDLER_DEFS`].
pub const SWHANDLER_PROLOGUE: &str = "SWHANDLER_PROLOGUE";
/// Simulator hooks: ordinary subroutines.
pub const PROC_DEFS: &str = "PROC_DEFS";
/// See [`PROC_DEFS`].
pub const PROC_PROLOGUE: &str = "PROC_PROLOGUE";

/// No-stack assertion, placed directly after the prologue hooks.
pub const NO_STACK: &str = "NO_STACK";
/// Must immediately precede every call in a no-stack handler.
pub const SET_STACKPTR: &str = "SET_STACKPTR";
/// Marks intentionally unimplemented routines; the execution-restriction
/// checker skips them (the paper did not count sci's three violations in
/// unimplemented routines for exactly this reason).
pub const FATAL_ERROR: &str = "FATAL_ERROR";

/// Checker-suppression annotations (§6.1).
pub const HAS_BUFFER: &str = "has_buffer";
/// See [`HAS_BUFFER`].
pub const NO_FREE_NEEDED: &str = "no_free_needed";

/// The manual reference-count bump that caused the §11 "betrayal" incident;
/// after that incident the extension "aggressively objects" to it.
pub const DB_REFCOUNT_INCR: &str = "DB_REFCOUNT_INCR";

/// Macros deprecated in favor of newer interfaces (§8 warns on use).
pub const DEPRECATED_MACROS: &[&str] = &["OLD_WAIT_DB", "MISCBUS_READ_DB_OLD", "BUF_CAST"];

/// Message-type constants and the lane each send class uses.
///
/// `PI_SEND` → lane 0, `IO_SEND` → lane 1, `NI_SEND(MSG_REQ, …)` → lane 2,
/// `NI_SEND` of reply types (including NAKs) → lane 3.
pub fn lane_of_send(callee: &str, first_arg_const: Option<&str>) -> Option<usize> {
    match callee {
        PI_SEND => Some(0),
        IO_SEND => Some(1),
        NI_SEND => match first_arg_const {
            Some("MSG_REQ") => Some(2),
            _ => Some(3),
        },
        _ => None,
    }
}

/// How a routine is classified for buffer/hook rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutineKind {
    /// Invoked by hardware dispatch with a live data buffer.
    HardwareHandler,
    /// Scheduled in software; starts without a buffer.
    SoftwareHandler,
    /// Ordinary subroutine.
    Procedure,
}

/// Per-protocol tables the checkers consult: handler classification, lane
/// quotas, and the routine tables of the buffer-management and directory
/// checkers.
///
/// In the paper these came from the protocol specification plus small
/// checker-maintained tables; here they are built by the corpus generator
/// (or by hand for ad-hoc use) and handed to the checkers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlashSpec {
    /// Names of hardware handlers.
    pub hardware_handlers: BTreeSet<String>,
    /// Names of software handlers.
    pub software_handlers: BTreeSet<String>,
    /// Per-handler lane allowances; handlers absent from the map get
    /// [`FlashSpec::default_quota`].
    pub lane_quota: BTreeMap<String, [u32; NUM_LANES]>,
    /// Default lane allowance.
    pub default_quota: [u32; NUM_LANES],
    /// Routines that expect a live buffer and free it.
    pub free_routines: BTreeSet<String>,
    /// Routines that expect a live buffer and keep it live.
    pub use_routines: BTreeSet<String>,
    /// Routines returning 1 if they freed the buffer and 0 otherwise; the
    /// value-sensitive branch handling for these removed over twenty
    /// useless annotations in the paper.
    pub cond_free_routines: BTreeSet<String>,
    /// Subroutines that write the directory entry back on the caller's
    /// behalf (annotating these removes the §9.1 subroutine false
    /// positives).
    pub writeback_routines: BTreeSet<String>,
}

impl ToJson for FlashSpec {
    fn to_json(&self) -> Json {
        mc_json::object(vec![
            ("hardware_handlers", self.hardware_handlers.to_json()),
            ("software_handlers", self.software_handlers.to_json()),
            ("lane_quota", self.lane_quota.to_json()),
            ("default_quota", self.default_quota.to_json()),
            ("free_routines", self.free_routines.to_json()),
            ("use_routines", self.use_routines.to_json()),
            ("cond_free_routines", self.cond_free_routines.to_json()),
            ("writeback_routines", self.writeback_routines.to_json()),
        ])
    }
}

impl FromJson for FlashSpec {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        // Every field is optional with a `Default` fallback, mirroring the
        // hand-written spec files which usually set only a few tables.
        Ok(FlashSpec {
            hardware_handlers: mc_json::field_or_default(v, "hardware_handlers")?,
            software_handlers: mc_json::field_or_default(v, "software_handlers")?,
            lane_quota: mc_json::field_or_default(v, "lane_quota")?,
            default_quota: mc_json::field_or_default(v, "default_quota")?,
            free_routines: mc_json::field_or_default(v, "free_routines")?,
            use_routines: mc_json::field_or_default(v, "use_routines")?,
            cond_free_routines: mc_json::field_or_default(v, "cond_free_routines")?,
            writeback_routines: mc_json::field_or_default(v, "writeback_routines")?,
        })
    }
}

impl FlashSpec {
    /// A spec with sensible defaults: quota of one send per lane.
    pub fn new() -> FlashSpec {
        FlashSpec {
            default_quota: [1; NUM_LANES],
            ..FlashSpec::default()
        }
    }

    /// Classifies a routine by the spec tables, falling back to the FLASH
    /// naming convention (`PI*`/`NI*`/`IO*` are hardware handlers, `SW*`
    /// software handlers).
    pub fn classify(&self, name: &str) -> RoutineKind {
        if self.hardware_handlers.contains(name) {
            return RoutineKind::HardwareHandler;
        }
        if self.software_handlers.contains(name) {
            return RoutineKind::SoftwareHandler;
        }
        if name.starts_with("PI") || name.starts_with("NI") || name.starts_with("IO") {
            RoutineKind::HardwareHandler
        } else if name.starts_with("SW") {
            RoutineKind::SoftwareHandler
        } else {
            RoutineKind::Procedure
        }
    }

    /// The lane allowance for `handler`.
    pub fn quota(&self, handler: &str) -> [u32; NUM_LANES] {
        self.lane_quota
            .get(handler)
            .copied()
            .unwrap_or(self.default_quota)
    }
}

/// Returns `true` if the function is an intentionally-unimplemented stub
/// (its body begins with `FATAL_ERROR()`). All checkers skip these, as the
/// paper did when it declined to count sci's violations "in unimplemented
/// routines which caused a fatal error if called".
pub fn is_unimplemented(f: &mc_ast::Function) -> bool {
    match f.body.first().map(|s| &s.kind) {
        Some(mc_ast::StmtKind::Expr(e)) => {
            matches!(e.as_call(), Some((FATAL_ERROR, _)))
        }
        _ => false,
    }
}

/// Returns `true` if `name` is one of the send macros.
pub fn is_send(name: &str) -> bool {
    matches!(name, PI_SEND | IO_SEND | NI_SEND)
}

/// Returns `true` if `name` is one of the wait macros.
pub fn is_wait(name: &str) -> bool {
    matches!(name, PI_WAIT | IO_WAIT | NI_WAIT)
}

/// The wait macro matching a send macro's interface.
pub fn wait_for_send(send: &str) -> Option<&'static str> {
    match send {
        PI_SEND => Some(PI_WAIT),
        IO_SEND => Some(IO_WAIT),
        NI_SEND => Some(NI_WAIT),
        _ => None,
    }
}

/// All FLASH macro names — calls to these are intrinsics, not subroutine
/// calls (the no-stack checker does not require `SET_STACKPTR` before
/// them).
pub fn is_flash_macro(name: &str) -> bool {
    matches!(
        name,
        WAIT_FOR_DB_FULL
            | MISCBUS_READ_DB
            | PI_SEND
            | IO_SEND
            | NI_SEND
            | PI_WAIT
            | IO_WAIT
            | NI_WAIT
            | DB_FREE
            | DB_ALLOC
            | DB_WRITE
            | DIR_LOAD
            | DIR_STATE
            | DIR_PTR
            | DIR_SET_STATE
            | DIR_SET_PTR
            | DIR_WRITEBACK
            | DIR_ADDR
            | HANDLER_DEFS
            | HANDLER_PROLOGUE
            | SWHANDLER_DEFS
            | SWHANDLER_PROLOGUE
            | PROC_DEFS
            | PROC_PROLOGUE
            | NO_STACK
            | SET_STACKPTR
            | FATAL_ERROR
            | HAS_BUFFER
            | NO_FREE_NEEDED
            | DB_REFCOUNT_INCR
            | "HANDLER_GLOBALS"
            | "debug_print"
    ) || DEPRECATED_MACROS.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_by_table_overrides_convention() {
        let mut spec = FlashSpec::new();
        spec.software_handlers.insert("PIOddball".into());
        assert_eq!(spec.classify("PIOddball"), RoutineKind::SoftwareHandler);
        assert_eq!(spec.classify("PILocalGet"), RoutineKind::HardwareHandler);
        assert_eq!(spec.classify("SWPageMigrate"), RoutineKind::SoftwareHandler);
        assert_eq!(spec.classify("compute_owner"), RoutineKind::Procedure);
    }

    #[test]
    fn lane_mapping() {
        assert_eq!(lane_of_send(PI_SEND, None), Some(0));
        assert_eq!(lane_of_send(IO_SEND, None), Some(1));
        assert_eq!(lane_of_send(NI_SEND, Some("MSG_REQ")), Some(2));
        assert_eq!(lane_of_send(NI_SEND, Some("MSG_REPLY")), Some(3));
        assert_eq!(lane_of_send("memcpy", None), None);
    }

    #[test]
    fn quota_fallback() {
        let mut spec = FlashSpec::new();
        spec.lane_quota.insert("NILocalGet".into(), [2, 0, 1, 1]);
        assert_eq!(spec.quota("NILocalGet"), [2, 0, 1, 1]);
        assert_eq!(spec.quota("other"), [1, 1, 1, 1]);
    }

    #[test]
    fn send_wait_pairing() {
        assert_eq!(wait_for_send(PI_SEND), Some(PI_WAIT));
        assert_eq!(wait_for_send(NI_SEND), Some(NI_WAIT));
        assert!(is_send(IO_SEND));
        assert!(is_wait(IO_WAIT));
        assert!(!is_send(IO_WAIT));
    }

    #[test]
    fn macro_table() {
        assert!(is_flash_macro("DB_FREE"));
        assert!(is_flash_macro("OLD_WAIT_DB"));
        assert!(!is_flash_macro("compute_owner"));
    }
}
