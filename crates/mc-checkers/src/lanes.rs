//! §7 — Deadlock restrictions on message sends.
//!
//! FLASH avoids network deadlock by running a handler only when its
//! pre-declared output-queue allowance (per virtual "lane") is available.
//! A handler that can send more than its allowance on some path can wedge
//! the whole machine. The check is inherently inter-procedural: sends
//! happen inside helpers, so the checker opts into the driver's shared
//! summary engine ([`mc_driver::summaries`]) — [`Checker::summarize_function`]
//! annotates each send with its lane and folds callee summaries in
//! (bottom-up order guarantees they exist), and the program pass reads the
//! per-handler lane maxima straight from the store, with the fixed-point
//! rule for cycles (send-free cycles are ignored; cycles containing sends
//! are flagged).

use crate::flash::{self, FlashSpec, RoutineKind, NUM_LANES};
use mc_ast::ExprKind;
use mc_cfg::{summarize_counts, FnSummary};
use mc_driver::{CheckSink, Checker, Fact, FunctionContext, ProgramContext, Report, Summaries};
use std::collections::HashSet;

/// The lane-quota checker.
#[derive(Debug)]
pub struct Lanes {
    spec: FlashSpec,
    /// When `false`, cycles are not given fixed-point treatment and every
    /// cycle is flagged (the ablation arm showing why the paper added the
    /// fixed point: recursion-based false positives).
    pub fixed_point_cycles: bool,
}

impl Lanes {
    /// Creates the checker with the given protocol spec.
    pub fn new(spec: FlashSpec) -> Lanes {
        Lanes {
            spec,
            fixed_point_cycles: true,
        }
    }

    /// The counter key used for lane `i` in function summaries.
    fn key(i: usize) -> String {
        format!("lane{i}")
    }
}

impl Checker for Lanes {
    fn name(&self) -> &str {
        "lanes"
    }

    /// Inter-procedural: the program pass reads whole-component summaries,
    /// so it must re-run whenever any unit in the component changes.
    fn has_program_pass(&self) -> bool {
        true
    }

    /// The quota analysis cannot run without summaries, so the driver
    /// computes them whenever this checker is registered — with or without
    /// `--interproc`.
    fn needs_summaries(&self) -> bool {
        true
    }

    /// All per-function work happens in [`Checker::summarize_function`];
    /// nothing is emitted here.
    fn check_function(&self, _: &FunctionContext<'_>, _: &mut CheckSink) {}

    /// Emit half: count this function's sends per lane along its worst
    /// path, folding in the already-summarized callees.
    fn summarize_function(&self, ctx: &FunctionContext<'_>, summary: &mut FnSummary, _: bool) {
        let store = ctx
            .summaries
            .expect("the summary engine always provides the store");
        let counts = summarize_counts(
            ctx.file,
            ctx.cfg,
            &mut |e| {
                let (name, args) = e.as_call()?;
                let first_const = args.first().and_then(|a| match &a.kind {
                    ExprKind::Ident(n) => Some(n.as_str()),
                    _ => None,
                });
                let lane = flash::lane_of_send(name, first_const)?;
                Some((Lanes::key(lane), 1))
            },
            &|callee| store.resolve(callee),
        );
        summary.counters.extend(counts.counters);
        summary.traces.extend(counts.traces);
        summary.warnings.extend(counts.warnings);
    }

    /// Link half: for every handler, compare its per-lane maxima against
    /// its allowance and surface cycle warnings from every function the
    /// handler can reach.
    fn check_program(&self, ctx: &ProgramContext<'_>, _: Vec<Fact>, sink: &mut Vec<Report>) {
        let Some(store) = ctx.summaries else {
            return;
        };
        for (file, func) in ctx.functions() {
            let kind = self.spec.classify(&func.name);
            if kind == RoutineKind::Procedure {
                continue;
            }
            let Some(summary) = store.get(&func.name) else {
                continue;
            };
            let quota = self.spec.quota(&func.name);
            for (lane, &allowance) in quota.iter().enumerate().take(NUM_LANES) {
                let max = summary
                    .counters
                    .get(&Lanes::key(lane))
                    .copied()
                    .unwrap_or(0);
                if max > allowance as i64 {
                    let mut report = Report::error(
                        "lanes",
                        file,
                        &func.name,
                        func.span,
                        format!(
                            "handler can send {max} messages on lane {lane} but its \
                             allowance is {allowance}"
                        ),
                    );
                    if let Some(trace) = summary.traces.get(&Lanes::key(lane)) {
                        // The summary's maximizing path, spliced through
                        // callee traces, becomes the report's witness.
                        report.steps = trace.clone();
                    }
                    sink.push(report);
                }
            }
            for w in reachable_warnings(store, &func.name) {
                if self.fixed_point_cycles && w.keys.iter().all(|k| k == "<recursion>") {
                    // Send-free recursion never produces a warning in the
                    // first place; a <recursion> marker here means sends
                    // exist somewhere in the function, which the per-lane
                    // counting above covers. Skip the duplicate.
                    continue;
                }
                sink.push(Report::warning(
                    "lanes",
                    file,
                    &func.name,
                    func.span,
                    w.description.clone(),
                ));
            }
        }
    }
}

/// Collects the cycle warnings of every function reachable from `root`
/// through summarized calls, in deterministic DFS order (a helper's cycle
/// is the *handler's* problem — it runs under the handler's allowance).
fn reachable_warnings<'a>(store: &'a Summaries, root: &str) -> Vec<&'a mc_cfg::CycleWarning> {
    let mut out = Vec::new();
    let mut seen: HashSet<&str> = HashSet::new();
    let mut stack: Vec<&str> = vec![root];
    while let Some(name) = stack.pop() {
        if !seen.insert(name) {
            continue;
        }
        let Some(summary) = store.get(name) else {
            continue;
        };
        out.extend(summary.warnings.iter());
        // `calls` is sorted; push reversed so DFS visits in sorted order.
        for callee in summary.calls.iter().rev() {
            if !seen.contains(callee.as_str()) {
                stack.push(callee);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    use mc_driver::Driver;

    fn check_with(spec: FlashSpec, src: &str) -> Vec<Report> {
        let mut d = Driver::new();
        d.add_checker(Box::new(Lanes::new(spec)));
        d.check_source(src, "p.c").unwrap()
    }

    fn quota_spec(handler: &str, q: [u32; 4]) -> FlashSpec {
        let mut s = FlashSpec::new();
        s.lane_quota.insert(handler.into(), q);
        s
    }

    #[test]
    fn within_quota_is_clean() {
        let r = check_with(
            quota_spec("NILocalGet", [1, 1, 1, 1]),
            "void NILocalGet(void) { NI_SEND(MSG_REQ, F_NODATA, k, w, d, n); PI_SEND(F_DATA, k, s, w, d, n); }",
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn exceeding_quota_is_flagged_with_trace() {
        let r = check_with(
            quota_spec("NILocalGet", [1, 1, 1, 1]),
            r#"void NILocalGet(void) {
                NI_SEND(MSG_REQ, F_NODATA, k, w, d, n);
                NI_SEND(MSG_REQ, F_NODATA, k, w, d, n);
            }"#,
        );
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("lane 2"));
        assert!(!r[0].steps.is_empty());
    }

    #[test]
    fn branches_do_not_add() {
        // Sends on exclusive branches: max, not sum.
        let r = check_with(
            quota_spec("NILocalGet", [0, 0, 1, 1]),
            r#"void NILocalGet(void) {
                if (x) { NI_SEND(MSG_REQ, F_NODATA, k, w, d, n); }
                else { NI_SEND(MSG_REQ, F_NODATA, k, w, d, n); }
            }"#,
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn helper_sends_count_against_caller() {
        // The first real lane bug: a workaround inserted into a helper by a
        // non-author pushed a handler over quota.
        let r = check_with(
            quota_spec("NIRemoteGet", [1, 1, 1, 1]),
            r#"void workaround_helper(void) { NI_SEND(MSG_REQ, F_NODATA, k, w, d, n); }
               void NIRemoteGet(void) {
                   NI_SEND(MSG_REQ, F_NODATA, k, w, d, n);
                   workaround_helper();
               }"#,
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].function, "NIRemoteGet");
        assert!(r[0]
            .steps
            .iter()
            .any(|t| t.note.contains("workaround_helper")));
    }

    #[test]
    fn reply_lane_distinct_from_request_lane() {
        let r = check_with(
            quota_spec("NILocalGet", [1, 1, 1, 1]),
            r#"void NILocalGet(void) {
                NI_SEND(MSG_REQ, F_NODATA, k, w, d, n);
                NI_SEND(MSG_REPLY, F_DATA, k, w, d, n);
            }"#,
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn sendless_loops_do_not_warn() {
        let r = check_with(
            quota_spec("NILocalGet", [1, 1, 1, 1]),
            r#"void NILocalGet(void) {
                while (busy) { spin(); }
                NI_SEND(MSG_REQ, F_NODATA, k, w, d, n);
            }"#,
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn loop_with_sends_warns() {
        let r = check_with(
            quota_spec("NILocalGet", [4, 4, 4, 4]),
            r#"void NILocalGet(void) {
                while (more) { NI_SEND(MSG_REQ, F_NODATA, k, w, d, n); }
            }"#,
        );
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("cycle"));
    }

    #[test]
    fn helper_cycle_warns_at_the_handler() {
        // The cycle lives in a helper, but the report belongs to the
        // handler whose allowance the helper runs under.
        let r = check_with(
            quota_spec("NILocalGet", [4, 4, 4, 4]),
            r#"void pump(void) { while (more) { NI_SEND(MSG_REQ, F_NODATA, k, w, d, n); } }
               void NILocalGet(void) { pump(); }"#,
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].function, "NILocalGet");
        assert!(r[0].message.contains("pump"));
    }

    #[test]
    fn procedures_not_checked_directly() {
        let r = check_with(
            FlashSpec::new(),
            "void helper(void) { NI_SEND(MSG_REQ, a, b, c, d, e); NI_SEND(MSG_REQ, a, b, c, d, e); }",
        );
        assert!(r.is_empty());
    }
}
