//! §7 — Deadlock restrictions on message sends.
//!
//! FLASH avoids network deadlock by running a handler only when its
//! pre-declared output-queue allowance (per virtual "lane") is available.
//! A handler that can send more than its allowance on some path can wedge
//! the whole machine. The check is inherently inter-procedural: sends
//! happen inside helpers, so it uses the [`mc_driver::global`] emit/link
//! framework — the local pass annotates each send with its lane, the
//! global pass links the call graph and computes the maximum sends per
//! lane over every inter-procedural path, with the fixed-point rule for
//! cycles (send-free cycles are ignored; cycles containing sends are
//! flagged).

use crate::flash::{self, FlashSpec, RoutineKind, NUM_LANES};
use mc_ast::ExprKind;
use mc_cfg::Cfg;
use mc_driver::global::{EmittedGraph, GlobalGraph, GraphEvent};
use mc_driver::{CheckSink, Checker, Fact, FunctionContext, ProgramContext, Report};

/// The lane-quota checker.
#[derive(Debug)]
pub struct Lanes {
    spec: FlashSpec,
    /// When `false`, cycles are not given fixed-point treatment and every
    /// cycle is flagged (the ablation arm showing why the paper added the
    /// fixed point: recursion-based false positives).
    pub fixed_point_cycles: bool,
}

impl Lanes {
    /// Creates the checker with the given protocol spec.
    pub fn new(spec: FlashSpec) -> Lanes {
        Lanes {
            spec,
            fixed_point_cycles: true,
        }
    }

    /// The key used for lane `i` in emitted graphs.
    fn key(i: usize) -> String {
        format!("lane{i}")
    }
}

impl Checker for Lanes {
    fn name(&self) -> &str {
        "lanes"
    }

    /// Inter-procedural: the program pass links the component's call graph,
    /// so it must re-run whenever any unit in the component changes.
    fn has_program_pass(&self) -> bool {
        true
    }

    /// Local pass: emit this function's flow graph with each send
    /// annotated by the lane it uses. Runs concurrently per function; the
    /// graph travels to the program pass as a [`Fact`].
    fn check_function(&self, ctx: &FunctionContext<'_>, sink: &mut CheckSink) {
        sink.emit(emit_lane_graph(ctx.file, ctx.cfg));
    }

    /// Global pass: link all graphs, traverse from every handler, and flag
    /// any lane whose maximum send count exceeds the handler's allowance.
    fn check_program(&self, ctx: &ProgramContext<'_>, facts: Vec<Fact>, sink: &mut Vec<Report>) {
        let graphs: Vec<EmittedGraph> = facts
            .into_iter()
            .filter_map(|f| f.downcast::<EmittedGraph>().ok().map(|g| *g))
            .collect();
        let global = GlobalGraph::link(graphs);
        for (file, func) in ctx.functions() {
            let kind = self.spec.classify(&func.name);
            if kind == RoutineKind::Procedure {
                continue;
            }
            let mut cycle_warnings = Vec::new();
            let summary = global.summarize(&func.name, &mut cycle_warnings);
            let quota = self.spec.quota(&func.name);
            for (lane, &allowance) in quota.iter().enumerate().take(NUM_LANES) {
                let max = summary.max.get(&Lanes::key(lane)).copied().unwrap_or(0);
                if max > allowance as i64 {
                    let mut report = Report::error(
                        "lanes",
                        file,
                        &func.name,
                        func.span,
                        format!(
                            "handler can send {max} messages on lane {lane} but its \
                             allowance is {allowance}"
                        ),
                    );
                    if let Some(trace) = summary.trace.get(&Lanes::key(lane)) {
                        report.trace = trace.clone();
                    }
                    sink.push(report);
                }
            }
            for w in cycle_warnings {
                if self.fixed_point_cycles && w.keys.iter().all(|k| k == "<recursion>") {
                    // Send-free recursion is already filtered by the
                    // framework; a <recursion> marker here means sends
                    // exist somewhere in the function, which the per-lane
                    // counting above covers. Skip the duplicate.
                    continue;
                }
                sink.push(Report::warning(
                    "lanes",
                    file,
                    &func.name,
                    func.span,
                    w.description,
                ));
            }
        }
    }
}

/// Builds the lane-annotated flow graph of one function (the local pass).
pub fn emit_lane_graph(file: &str, cfg: &Cfg) -> EmittedGraph {
    EmittedGraph::from_cfg(file, cfg, |e| {
        let (name, args) = e.as_call()?;
        let first_const = args.first().and_then(|a| match &a.kind {
            ExprKind::Ident(n) => Some(n.as_str()),
            _ => None,
        });
        let lane = flash::lane_of_send(name, first_const)?;
        Some(GraphEvent::Count {
            key: Lanes::key(lane),
            amount: 1,
            line: e.span.line,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    use mc_driver::Driver;

    fn check_with(spec: FlashSpec, src: &str) -> Vec<Report> {
        let mut d = Driver::new();
        d.add_checker(Box::new(Lanes::new(spec)));
        d.check_source(src, "p.c").unwrap()
    }

    fn quota_spec(handler: &str, q: [u32; 4]) -> FlashSpec {
        let mut s = FlashSpec::new();
        s.lane_quota.insert(handler.into(), q);
        s
    }

    #[test]
    fn within_quota_is_clean() {
        let r = check_with(
            quota_spec("NILocalGet", [1, 1, 1, 1]),
            "void NILocalGet(void) { NI_SEND(MSG_REQ, F_NODATA, k, w, d, n); PI_SEND(F_DATA, k, s, w, d, n); }",
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn exceeding_quota_is_flagged_with_trace() {
        let r = check_with(
            quota_spec("NILocalGet", [1, 1, 1, 1]),
            r#"void NILocalGet(void) {
                NI_SEND(MSG_REQ, F_NODATA, k, w, d, n);
                NI_SEND(MSG_REQ, F_NODATA, k, w, d, n);
            }"#,
        );
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("lane 2"));
        assert!(!r[0].trace.is_empty());
    }

    #[test]
    fn branches_do_not_add() {
        // Sends on exclusive branches: max, not sum.
        let r = check_with(
            quota_spec("NILocalGet", [0, 0, 1, 1]),
            r#"void NILocalGet(void) {
                if (x) { NI_SEND(MSG_REQ, F_NODATA, k, w, d, n); }
                else { NI_SEND(MSG_REQ, F_NODATA, k, w, d, n); }
            }"#,
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn helper_sends_count_against_caller() {
        // The first real lane bug: a workaround inserted into a helper by a
        // non-author pushed a handler over quota.
        let r = check_with(
            quota_spec("NIRemoteGet", [1, 1, 1, 1]),
            r#"void workaround_helper(void) { NI_SEND(MSG_REQ, F_NODATA, k, w, d, n); }
               void NIRemoteGet(void) {
                   NI_SEND(MSG_REQ, F_NODATA, k, w, d, n);
                   workaround_helper();
               }"#,
        );
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].function, "NIRemoteGet");
        assert!(r[0].trace.iter().any(|t| t.contains("workaround_helper")));
    }

    #[test]
    fn reply_lane_distinct_from_request_lane() {
        let r = check_with(
            quota_spec("NILocalGet", [1, 1, 1, 1]),
            r#"void NILocalGet(void) {
                NI_SEND(MSG_REQ, F_NODATA, k, w, d, n);
                NI_SEND(MSG_REPLY, F_DATA, k, w, d, n);
            }"#,
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn sendless_loops_do_not_warn() {
        let r = check_with(
            quota_spec("NILocalGet", [1, 1, 1, 1]),
            r#"void NILocalGet(void) {
                while (busy) { spin(); }
                NI_SEND(MSG_REQ, F_NODATA, k, w, d, n);
            }"#,
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn loop_with_sends_warns() {
        let r = check_with(
            quota_spec("NILocalGet", [4, 4, 4, 4]),
            r#"void NILocalGet(void) {
                while (more) { NI_SEND(MSG_REQ, F_NODATA, k, w, d, n); }
            }"#,
        );
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("cycle"));
    }

    #[test]
    fn procedures_not_checked_directly() {
        let r = check_with(
            FlashSpec::new(),
            "void helper(void) { NI_SEND(MSG_REQ, a, b, c, d, e); NI_SEND(MSG_REQ, a, b, c, d, e); }",
        );
        assert!(r.is_empty());
    }
}
