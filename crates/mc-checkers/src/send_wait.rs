//! §9 — Send-wait pairing (Table 6).
//!
//! A handler can send a message with the "wait" bit set, promising to wait
//! for the interface's reply. Breaking the promise — never waiting, waiting
//! on the wrong interface, or issuing another send first — deadlocks the
//! machine. The checker tracks the pending interface along each path.
//!
//! Code that waits by spinning on raw status registers instead of the
//! interface wait macros "breaks an abstraction barrier": the checker
//! cannot see the wait and reports — these are the paper's eight send-wait
//! false positives (real problems for simulation, since hooks cannot be
//! inserted).

use crate::flash;
use crate::{dedup_found, stamp_witness};
use mc_ast::{Expr, ExprKind, Span, StmtKind};
use mc_cfg::{run_traversal, PathEvent, PathMachine, PathStep, Witness};
use mc_driver::{CheckSink, Checker, FunctionContext, Report};

/// The send-wait checker.
#[derive(Debug, Clone, Default)]
pub struct SendWait;

impl SendWait {
    /// Creates the checker.
    pub fn new() -> SendWait {
        SendWait
    }
}

impl Checker for SendWait {
    fn name(&self) -> &str {
        "send_wait"
    }

    /// Purely local: no program pass, so the incremental engine never
    /// re-runs this checker for call-graph neighbours of an edited unit.
    fn has_program_pass(&self) -> bool {
        false
    }

    fn check_function(&self, ctx: &FunctionContext<'_>, sink: &mut CheckSink) {
        if flash::is_unimplemented(ctx.function) {
            return;
        }
        let mut machine = WaitMachine { found: Vec::new() };
        run_traversal(ctx.cfg, &mut machine, WaitState::Idle, ctx.traversal);
        dedup_found(&mut machine.found);
        for (span, msg, steps) in machine.found {
            let mut report = Report::error("send_wait", ctx.file, &ctx.function.name, span, msg);
            report.steps = steps;
            sink.push(report);
        }
    }
}

/// Which interface reply, if any, the handler owes a wait for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum WaitState {
    /// No outstanding waited send.
    Idle,
    /// Waiting for the named interface's reply macro.
    Pending(&'static str),
}

struct WaitMachine {
    /// Violations: location, message, and the witness path that produced
    /// them (stamped by the [`PathMachine::step`] wrapper).
    found: Vec<(Span, String, Vec<PathStep>)>,
}

impl WaitMachine {
    fn process(&mut self, e: &Expr, mut st: WaitState) -> WaitState {
        // Children first (evaluation order).
        match &e.kind {
            ExprKind::Call { args, .. } => {
                for a in args {
                    st = self.process(a, st);
                }
            }
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                st = self.process(rhs, st);
                st = self.process(lhs, st);
            }
            ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => {
                st = self.process(operand, st);
            }
            ExprKind::Ternary { cond, then, els } => {
                st = self.process(cond, st);
                st = self.process(then, st);
                st = self.process(els, st);
            }
            ExprKind::Index { base, index } => {
                st = self.process(base, st);
                st = self.process(index, st);
            }
            ExprKind::Member { base, .. } => st = self.process(base, st),
            ExprKind::Cast { expr, .. } => st = self.process(expr, st),
            ExprKind::Comma(a, b) => {
                st = self.process(a, st);
                st = self.process(b, st);
            }
            _ => {}
        }
        let Some((name, args)) = e.as_call() else {
            return st;
        };
        if flash::is_send(name) {
            if let WaitState::Pending(iface) = st {
                self.found.push((
                    e.span,
                    format!("send issued before waiting for pending {iface}()"),
                    Vec::new(),
                ));
            }
            // `wait` parameter: arg 3 for PI/IO/NI alike.
            let wants_wait = args
                .get(3)
                .and_then(|a| a.as_ident())
                .map(|n| n == flash::W_WAIT)
                .unwrap_or(false);
            if wants_wait {
                if let Some(w) = flash::wait_for_send(name) {
                    st = WaitState::Pending(w);
                }
            }
            return st;
        }
        if flash::is_wait(name) {
            match st {
                WaitState::Pending(expected) if expected == name => {
                    st = WaitState::Idle;
                }
                WaitState::Pending(expected) => {
                    self.found.push((
                        e.span,
                        format!("wait on wrong interface: expected {expected}(), found {name}()"),
                        Vec::new(),
                    ));
                    st = WaitState::Idle;
                }
                WaitState::Idle => {
                    // A wait with nothing outstanding is harmless.
                }
            }
        }
        st
    }
}

impl WaitMachine {
    /// The transition function proper; the [`PathMachine::step`] wrapper
    /// stamps witness paths onto any violation this pushes.
    fn step_inner(&mut self, state: &WaitState, event: &PathEvent<'_>) -> Vec<WaitState> {
        match event {
            PathEvent::Stmt(s) => {
                let next = match &s.kind {
                    StmtKind::Expr(e) => self.process(e, *state),
                    StmtKind::Decl(d) => {
                        if let Some(mc_ast::Initializer::Expr(e)) = &d.init {
                            self.process(e, *state)
                        } else {
                            *state
                        }
                    }
                    _ => *state,
                };
                vec![next]
            }
            PathEvent::Branch { cond, .. } => vec![self.process(cond, *state)],
            PathEvent::Case { .. } => vec![*state],
            PathEvent::Return { span, .. } => {
                if let WaitState::Pending(iface) = state {
                    self.found.push((
                        *span,
                        format!("send with wait bit never followed by {iface}()"),
                        Vec::new(),
                    ));
                }
                vec![]
            }
            // `Pending` carries a `&'static str` interface name that cannot
            // round-trip through a summary's string encoding, so this
            // checker stays intraprocedural (the paper's wait obligations
            // are local to one handler anyway).
            PathEvent::Call { .. } => vec![*state],
        }
    }
}

impl PathMachine for WaitMachine {
    type State = WaitState;

    fn step(
        &mut self,
        state: &WaitState,
        event: &PathEvent<'_>,
        witness: &Witness<'_>,
    ) -> Vec<WaitState> {
        let before = self.found.len();
        let out = self.step_inner(state, event);
        stamp_witness(&mut self.found[before..], witness);
        out
    }
}

/// Counts sends with the wait bit plus wait-macro calls — the "Applied"
/// column of Table 6's send-wait check.
pub fn count_send_waits(func: &mc_ast::Function) -> usize {
    struct V(usize);
    impl mc_ast::Visitor for V {
        fn visit_expr(&mut self, e: &Expr) {
            if let Some((name, args)) = e.as_call() {
                let waited_send = flash::is_send(name)
                    && args.get(3).and_then(|a| a.as_ident()) == Some(flash::W_WAIT);
                if flash::is_wait(name) || waited_send {
                    self.0 += 1;
                }
            }
        }
    }
    let mut v = V(0);
    mc_ast::walk_function(&mut v, func);
    v.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_cfg::Cfg;

    fn check(src: &str) -> Vec<Report> {
        let tu = mc_ast::parse_translation_unit(src, "t.c").unwrap();
        let checker = SendWait::new();
        let mut sink = CheckSink::new();
        for f in tu.functions() {
            let cfg = Cfg::build(f);
            let ctx = FunctionContext {
                file: "t.c",
                unit: &tu,
                function: f,
                cfg: &cfg,
                traversal: mc_cfg::Traversal::default(),
                summaries: None,
            };
            checker.check_function(&ctx, &mut sink);
        }
        sink.into_reports()
    }

    #[test]
    fn paired_send_wait_clean() {
        let r = check(
            r#"void PIIntervention(void) {
                PI_SEND(F_NODATA, k, s, W_WAIT, d, n);
                PI_WAIT();
                NI_SEND(MSG_REPLY, F_DATA, k, W_NOWAIT, d, n);
            }"#,
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn missing_wait_detected() {
        let r = check(
            r#"void PIIntervention(void) {
                PI_SEND(F_NODATA, k, s, W_WAIT, d, n);
            }"#,
        );
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("never followed by PI_WAIT"));
    }

    #[test]
    fn wrong_interface_detected() {
        let r = check(
            r#"void IOIntervention(void) {
                IO_SEND(F_NODATA, k, s, W_WAIT, d, n);
                NI_WAIT();
            }"#,
        );
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("wrong interface"));
    }

    #[test]
    fn second_send_before_wait_detected() {
        let r = check(
            r#"void PIIntervention(void) {
                PI_SEND(F_NODATA, k, s, W_WAIT, d, n);
                NI_SEND(MSG_REPLY, F_DATA, k, W_NOWAIT, d, n);
                PI_WAIT();
            }"#,
        );
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("before waiting"));
    }

    #[test]
    fn nowait_sends_do_not_create_obligation() {
        let r = check(
            r#"void h(void) {
                PI_SEND(F_NODATA, k, s, W_NOWAIT, d, n);
                NI_SEND(MSG_REPLY, F_DATA, k, W_NOWAIT, d, n);
            }"#,
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn wait_only_on_one_path_flags_other() {
        let r = check(
            r#"void h(void) {
                PI_SEND(F_NODATA, k, s, W_WAIT, d, n);
                if (fast) {
                    PI_WAIT();
                }
            }"#,
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn abstraction_barrier_spin_is_false_positive() {
        // Raw status-register spinning is invisible; the checker reports.
        let r = check(
            r#"void h(void) {
                PI_SEND(F_NODATA, k, s, W_WAIT, d, n);
                while (!MAGIC_PI_STATUS()) {
                    spin();
                }
            }"#,
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn counting() {
        let tu = mc_ast::parse_translation_unit(
            "void h(void) { PI_SEND(F_NODATA, k, s, W_WAIT, d, n); PI_WAIT(); }",
            "t.c",
        )
        .unwrap();
        assert_eq!(count_send_waits(tu.functions().next().unwrap()), 2);
    }
}
