//! §5 — Consistency of decoupled message-length state (Figure 3, Table 3).
//!
//! Each send carries a has-data parameter (`F_DATA`/`F_NODATA`) while the
//! amount of data actually transmitted comes from the separately-assigned
//! header length field. The checker (the metal program in
//! [`crate::MSGLEN_METAL`]) tracks the last length assignment along each
//! path and flags sends whose has-data parameter disagrees. This was the
//! paper's most profitable checker: 18 bugs.

use crate::flash;
use mc_ast::{walk_function, Expr, Function, Visitor};
use mc_cfg::{run_machine, Cfg, Mode};
use mc_metal::{MetalMachine, MetalProgram, MetalReport};

/// Runs the Figure 3 checker over one function.
///
/// # Panics
///
/// Panics if the embedded metal source is invalid (checked by tests).
pub fn check_function(func: &Function) -> Vec<MetalReport> {
    let prog = MetalProgram::parse(crate::MSGLEN_METAL).expect("Figure 3 parses");
    let cfg = Cfg::build(func);
    let mut machine = MetalMachine::new(&prog);
    let init = machine.start_state();
    run_machine(&cfg, &mut machine, init, Mode::StateSet);
    machine.reports
}

/// Counts the sends in a function — the "Applied" column of Table 3 (each
/// send reached by the checker is one application of the consistency
/// check).
pub fn count_sends(func: &Function) -> usize {
    struct V(usize);
    impl Visitor for V {
        fn visit_expr(&mut self, e: &Expr) {
            if let Some((name, _)) = e.as_call() {
                if flash::is_send(name) {
                    self.0 += 1;
                }
            }
        }
    }
    let mut v = V(0);
    walk_function(&mut v, func);
    v.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::parse_translation_unit;

    fn func(src: &str) -> mc_ast::Function {
        let tu = parse_translation_unit(src, "t.c").unwrap();
        let f = tu.functions().next().unwrap().clone();
        f
    }

    #[test]
    fn stale_len_from_earlier_branch() {
        // The classic shape: length assigned hundreds of lines before the
        // send that uses it, through intervening control flow.
        let f = func(
            r#"void NIUncachedRead(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                if (dirty_remote) {
                    if (queue_full) {
                        NI_SEND(t, F_DATA, k, w, d, n);
                    }
                }
            }"#,
        );
        let r = check_function(&f);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].message, "data send, zero len");
    }

    #[test]
    fn incoming_len_reuse_assumption() {
        // Programmers assume the incoming message's length can be reused;
        // with no assignment at all the checker stays in `all` and keeps
        // quiet (it does not do the global analysis for initial values).
        let f = func("void h(void) { NI_SEND(t, F_DATA, k, w, d, n); }");
        assert!(check_function(&f).is_empty());
    }

    #[test]
    fn nodata_send_with_cacheline_len() {
        let f = func(
            r#"void h(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
                PI_SEND(F_NODATA, k, s, w, d, n);
            }"#,
        );
        let r = check_function(&f);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].message, "nodata send, nonzero len");
    }

    #[test]
    fn consistent_pairs_are_clean() {
        let f = func(
            r#"void h(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
                IO_SEND(F_DATA, k, s, w, d, n);
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                IO_SEND(F_NODATA, k, s, w, d, n);
            }"#,
        );
        assert!(check_function(&f).is_empty());
    }

    #[test]
    fn runtime_selected_parameter_is_a_false_positive() {
        // The coma false-positive shape: a variable selects the send
        // parameter at run time; the checker cannot prune the impossible
        // combination. It (correctly, per the paper) still reports.
        let f = func(
            r#"void h(void) {
                if (has) {
                    HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
                } else {
                    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                }
                if (has) {
                    PI_SEND(F_DATA, k, s, w, d, n);
                } else {
                    PI_SEND(F_NODATA, k, s, w, d, n);
                }
            }"#,
        );
        // Four static paths, two impossible ones both flagged.
        assert_eq!(check_function(&f).len(), 2);
    }

    #[test]
    fn send_counting() {
        let f = func(
            "void h(void) { PI_SEND(F_DATA, k, s, w, d, n); NI_SEND(t, F_NODATA, k, w, d, n); }",
        );
        assert_eq!(count_sends(&f), 2);
    }
}
