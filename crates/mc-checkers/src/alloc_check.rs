//! §9 — Data-buffer allocation failure checking (Table 6).
//!
//! `DB_ALLOC()` can fail when no buffers are available, returning
//! `DB_FAIL`. Every allocation must therefore be checked before the buffer
//! is used. The checker tracks variables assigned from `DB_ALLOC()` and
//! flags any use before a comparison against `DB_FAIL`.
//!
//! Debug code that merely *prints* the raw handle before checking it still
//! counts as a use — that is precisely the source of the two dyn_ptr false
//! positives in the paper.

use crate::flash;
use crate::{dedup_found, stamp_witness};
use mc_ast::{Expr, ExprKind, Span, StmtKind};
use mc_cfg::{run_traversal, PathEvent, PathMachine, PathStep, Witness};
use mc_driver::{CheckSink, Checker, FunctionContext, Report};
use std::collections::BTreeSet;

/// The allocation-failure checker.
#[derive(Debug, Clone, Default)]
pub struct AllocCheck;

impl AllocCheck {
    /// Creates the checker.
    pub fn new() -> AllocCheck {
        AllocCheck
    }
}

impl Checker for AllocCheck {
    fn name(&self) -> &str {
        "alloc_check"
    }

    /// Purely local: no program pass, so the incremental engine never
    /// re-runs this checker for call-graph neighbours of an edited unit.
    fn has_program_pass(&self) -> bool {
        false
    }

    fn check_function(&self, ctx: &FunctionContext<'_>, sink: &mut CheckSink) {
        if flash::is_unimplemented(ctx.function) {
            return;
        }
        let mut machine = AllocMachine { found: Vec::new() };
        run_traversal(ctx.cfg, &mut machine, BTreeSet::new(), ctx.traversal);
        dedup_found(&mut machine.found);
        for (span, var, steps) in machine.found {
            let mut report = Report::error(
                "alloc_check",
                ctx.file,
                &ctx.function.name,
                span,
                format!("buffer `{var}` used before checking DB_ALLOC for failure"),
            );
            report.steps = steps;
            sink.push(report);
        }
    }
}

/// State: the set of variables holding unchecked allocations.
struct AllocMachine {
    /// Violations: location, variable name, and the witness path that
    /// produced them (stamped by the [`PathMachine::step`] wrapper).
    found: Vec<(Span, String, Vec<PathStep>)>,
}

impl AllocMachine {
    /// If `e` is `v = DB_ALLOC()`, returns `v`.
    fn alloc_target(e: &Expr) -> Option<&str> {
        if let ExprKind::Assign { op: None, lhs, rhs } = &e.kind {
            if let Some((flash::DB_ALLOC, _)) = rhs.as_call() {
                return lhs.as_ident();
            }
        }
        None
    }

    /// If `e` is a failure check `v == DB_FAIL` / `v != DB_FAIL` (either
    /// side), returns `v`.
    fn checked_var(e: &Expr) -> Option<&str> {
        if let ExprKind::Binary { op, lhs, rhs } = &e.kind {
            use mc_ast::BinaryOp::{Eq, Ne};
            if matches!(op, Eq | Ne) {
                match (lhs.as_ident(), rhs.as_ident()) {
                    (Some(flash::DB_FAIL), Some(v)) | (Some(v), Some(flash::DB_FAIL)) => {
                        return Some(v)
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// Records any unchecked-variable uses inside `e`, skipping the
    /// contexts that are not uses (the alloc assignment itself and failure
    /// checks).
    fn find_uses(&mut self, e: &Expr, state: &BTreeSet<String>, out: &mut Vec<(Span, String)>) {
        if Self::checked_var(e).is_some() {
            return;
        }
        match &e.kind {
            ExprKind::Ident(name) if state.contains(name) => {
                out.push((e.span, name.clone()));
            }
            ExprKind::Assign { lhs, rhs, .. } => {
                if Self::alloc_target(e).is_some() {
                    return; // the defining assignment is not a use
                }
                self.find_uses(rhs, state, out);
                self.find_uses(lhs, state, out);
            }
            ExprKind::Call { args, .. } => {
                for a in args {
                    self.find_uses(a, state, out);
                }
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                self.find_uses(lhs, state, out);
                self.find_uses(rhs, state, out);
            }
            ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => {
                self.find_uses(operand, state, out)
            }
            ExprKind::Ternary { cond, then, els } => {
                self.find_uses(cond, state, out);
                self.find_uses(then, state, out);
                self.find_uses(els, state, out);
            }
            ExprKind::Index { base, index } => {
                self.find_uses(base, state, out);
                self.find_uses(index, state, out);
            }
            ExprKind::Member { base, .. } => self.find_uses(base, state, out),
            ExprKind::Cast { expr, .. } => self.find_uses(expr, state, out),
            ExprKind::Comma(a, b) => {
                self.find_uses(a, state, out);
                self.find_uses(b, state, out);
            }
            _ => {}
        }
    }

    fn process_expr(&mut self, e: &Expr, state: &BTreeSet<String>) -> BTreeSet<String> {
        let mut next = state.clone();
        let mut uses = Vec::new();
        self.find_uses(e, state, &mut uses);
        self.found
            .extend(uses.into_iter().map(|(span, var)| (span, var, Vec::new())));
        // Remove checked variables anywhere inside the expression.
        remove_checked(e, &mut next);
        if let Some(v) = Self::alloc_target(e) {
            next.insert(v.to_string());
        }
        next
    }
}

fn remove_checked(e: &Expr, state: &mut BTreeSet<String>) {
    if let Some(v) = AllocMachine::checked_var(e) {
        state.remove(v);
        return;
    }
    match &e.kind {
        ExprKind::Call { args, .. } => {
            for a in args {
                remove_checked(a, state);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            remove_checked(lhs, state);
            remove_checked(rhs, state);
        }
        ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => {
            remove_checked(operand, state)
        }
        ExprKind::Ternary { cond, then, els } => {
            remove_checked(cond, state);
            remove_checked(then, state);
            remove_checked(els, state);
        }
        ExprKind::Comma(a, b) => {
            remove_checked(a, state);
            remove_checked(b, state);
        }
        _ => {}
    }
}

impl AllocMachine {
    /// The transition function proper; the [`PathMachine::step`] wrapper
    /// stamps witness paths onto any violation this pushes.
    fn step_inner(
        &mut self,
        state: &BTreeSet<String>,
        event: &PathEvent<'_>,
    ) -> Vec<BTreeSet<String>> {
        match event {
            PathEvent::Stmt(s) => {
                let next = match &s.kind {
                    StmtKind::Expr(e) => self.process_expr(e, state),
                    StmtKind::Decl(d) => {
                        if let Some(mc_ast::Initializer::Expr(e)) = &d.init {
                            let mut next = self.process_expr(e, state);
                            if let Some((flash::DB_ALLOC, _)) = e.as_call() {
                                next.insert(d.name.clone());
                            }
                            next
                        } else {
                            state.clone()
                        }
                    }
                    _ => state.clone(),
                };
                vec![next]
            }
            PathEvent::Branch { cond, .. } => vec![self.process_expr(cond, state)],
            PathEvent::Case { .. } => vec![state.clone()],
            PathEvent::Return { .. } => vec![],
            // Unchecked-handle uses are syntactic (the handle variable is
            // local), so callee summaries carry nothing for this checker.
            PathEvent::Call { .. } => vec![state.clone()],
        }
    }
}

impl PathMachine for AllocMachine {
    type State = BTreeSet<String>;

    fn step(
        &mut self,
        state: &Self::State,
        event: &PathEvent<'_>,
        witness: &Witness<'_>,
    ) -> Vec<Self::State> {
        let before = self.found.len();
        let out = self.step_inner(state, event);
        stamp_witness(&mut self.found[before..], witness);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_cfg::Cfg;

    fn check(src: &str) -> Vec<Report> {
        let tu = mc_ast::parse_translation_unit(src, "t.c").unwrap();
        let checker = AllocCheck::new();
        let mut sink = CheckSink::new();
        for f in tu.functions() {
            let cfg = Cfg::build(f);
            let ctx = FunctionContext {
                file: "t.c",
                unit: &tu,
                function: f,
                cfg: &cfg,
                traversal: mc_cfg::Traversal::default(),
                summaries: None,
            };
            checker.check_function(&ctx, &mut sink);
        }
        sink.into_reports()
    }

    #[test]
    fn checked_alloc_is_clean() {
        let r = check(
            r#"void h(void) {
                nb = DB_ALLOC();
                if (nb == DB_FAIL) { return; }
                DB_WRITE(nb, 0, x);
            }"#,
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn use_before_check_flagged() {
        let r = check(
            r#"void h(void) {
                nb = DB_ALLOC();
                DB_WRITE(nb, 0, x);
            }"#,
        );
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("`nb`"));
    }

    #[test]
    fn debug_print_counts_as_use() {
        // The paper's two false positives: debug code printed the handle
        // before checking it.
        let r = check(
            r#"void h(void) {
                nb = DB_ALLOC();
                debug_print("alloc got", nb);
                if (nb == DB_FAIL) { return; }
                DB_WRITE(nb, 0, x);
            }"#,
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn reversed_comparison_accepted() {
        let r = check(
            r#"void h(void) {
                nb = DB_ALLOC();
                if (DB_FAIL != nb) { DB_WRITE(nb, 0, x); }
            }"#,
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn decl_initializer_alloc_tracked() {
        let r = check(
            r#"void h(void) {
                int nb = DB_ALLOC();
                DB_WRITE(nb, 0, x);
            }"#,
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn two_allocs_tracked_independently() {
        let r = check(
            r#"void h(void) {
                a = DB_ALLOC();
                if (a == DB_FAIL) { return; }
                b = DB_ALLOC();
                DB_WRITE(b, 0, x);
            }"#,
        );
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("`b`"));
    }

    #[test]
    fn unchecked_on_one_path_only() {
        let r = check(
            r#"void h(void) {
                nb = DB_ALLOC();
                if (fast_path) {
                    DB_WRITE(nb, 0, x);
                } else {
                    if (nb == DB_FAIL) { return; }
                    DB_WRITE(nb, 0, x);
                }
            }"#,
        );
        assert_eq!(r.len(), 1);
    }
}
