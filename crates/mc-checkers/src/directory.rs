//! §9 — Manual directory-entry updates (Table 6).
//!
//! Directory entries are not normal variables: handlers explicitly load
//! them (`DIR_LOAD`), modify the in-memory copy (`DIR_SET_*`), and must
//! explicitly write the copy back (`DIR_WRITEBACK`). The checker verifies
//! that (1) an entry is loaded before it is read or modified and (2) a
//! modified entry is written back before the handler exits.
//!
//! Speculative handlers intentionally drop modifications when they bail
//! out with a negative acknowledgement; the checker suppresses the
//! write-back obligation when it sees a NAK reply
//! (`NI_SEND(MSG_NAK, ...)`), which eliminates most of that false-positive
//! class. Subroutines that write the entry back on the caller's behalf
//! must be listed in [`FlashSpec::writeback_routines`]; un-annotated ones
//! are the paper's main source of directory false positives. Computing the
//! entry address by hand instead of with `DIR_ADDR()` is reported as an
//! abstraction violation.

use crate::flash::{self, FlashSpec, RoutineKind};
use crate::{dedup_found, stamp_witness};
use mc_ast::{Expr, ExprKind, Span, StmtKind};
use mc_cfg::{FnSummary, PathEvent, PathMachine, PathStep, Witness};
use mc_driver::{CheckSink, Checker, FunctionContext, Report};
use std::collections::{BTreeMap, HashSet};

/// The directory-update checker.
#[derive(Debug, Clone)]
pub struct Directory {
    spec: FlashSpec,
}

impl Directory {
    /// Creates the checker with the given protocol tables.
    pub fn new(spec: FlashSpec) -> Directory {
        Directory { spec }
    }
}

impl Checker for Directory {
    fn name(&self) -> &str {
        "directory"
    }

    /// Purely local: no program pass, so the incremental engine never
    /// re-runs this checker for call-graph neighbours of an edited unit.
    fn has_program_pass(&self) -> bool {
        false
    }

    fn check_function(&self, ctx: &FunctionContext<'_>, sink: &mut CheckSink) {
        if flash::is_unimplemented(ctx.function) {
            return;
        }
        // Handlers are checked; listed write-back subroutines are checked
        // with the entry considered already loaded (they operate on the
        // caller's entry).
        let is_wb_routine = self.spec.writeback_routines.contains(&ctx.function.name);
        let kind = self.spec.classify(&ctx.function.name);
        if kind == RoutineKind::Procedure && !is_wb_routine {
            return;
        }
        let init = DirState {
            loaded: is_wb_routine,
            modified: false,
            naked: false,
        };
        let mut machine = DirMachine {
            spec: &self.spec,
            found: Vec::new(),
            ends: None,
        };
        let oracle = ctx.summaries.map(|s| s as &dyn mc_cfg::SummaryLookup);
        mc_cfg::run_traversal_with(ctx.cfg, &mut machine, init, ctx.traversal, oracle);
        dedup_found(&mut machine.found);
        for (span, msg, steps) in machine.found {
            let mut report = Report::error("directory", ctx.file, &ctx.function.name, span, msg);
            report.steps = steps;
            sink.push(report);
        }
    }

    /// Publishes a directory-state transfer table for plain procedures, so
    /// `--interproc` call sites see through un-annotated helpers that write
    /// the entry back on the caller's behalf (the paper's main §9
    /// false-positive class).
    fn summarize_function(
        &self,
        ctx: &FunctionContext<'_>,
        summary: &mut FnSummary,
        transfers: bool,
    ) {
        if !transfers || flash::is_unimplemented(ctx.function) {
            return;
        }
        // Handlers are roots, and annotated write-back routines are already
        // modeled at the call site; only plain procedures need transfers.
        let name = &ctx.function.name;
        if self.spec.classify(name) != RoutineKind::Procedure
            || self.spec.writeback_routines.contains(name)
        {
            return;
        }
        let mut table = BTreeMap::new();
        for bits in 0..8u8 {
            let start = DirState {
                loaded: bits & 1 != 0,
                modified: bits & 2 != 0,
                naked: bits & 4 != 0,
            };
            let mut machine = DirMachine {
                spec: &self.spec,
                found: Vec::new(),
                ends: Some(HashSet::new()),
            };
            let oracle = ctx.summaries.map(|s| s as &dyn mc_cfg::SummaryLookup);
            mc_cfg::run_traversal_with(ctx.cfg, &mut machine, start, ctx.traversal, oracle);
            let mut ends: Vec<String> = machine
                .ends
                .unwrap()
                .into_iter()
                .map(|s| s.summary_name())
                .collect();
            ends.sort();
            if ends.len() == 1 && ends[0] == start.summary_name() {
                continue; // identity transfers are left implicit
            }
            table.insert(start.summary_name(), ends);
        }
        if !table.is_empty() {
            summary.transfers.insert(MACHINE.to_string(), table);
        }
    }
}

/// Path state for the directory discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct DirState {
    /// `DIR_LOAD` has happened.
    loaded: bool,
    /// The in-memory copy differs from memory.
    modified: bool,
    /// A NAK reply was sent (speculative bail-out: write-back waived).
    naked: bool,
}

/// The name of the summary machine this checker publishes transfers under.
const MACHINE: &str = "directory";

impl DirState {
    /// Stable encoding used in summary transfer tables: `l{0|1}m{0|1}n{0|1}`.
    fn summary_name(self) -> String {
        format!(
            "l{}m{}n{}",
            self.loaded as u8, self.modified as u8, self.naked as u8
        )
    }

    fn from_summary_name(name: &str) -> Option<DirState> {
        let b = name.as_bytes();
        let bit = |i: usize| match b.get(i) {
            Some(b'0') => Some(false),
            Some(b'1') => Some(true),
            _ => None,
        };
        if b.len() != 6 || b[0] != b'l' || b[2] != b'm' || b[4] != b'n' {
            return None;
        }
        Some(DirState {
            loaded: bit(1)?,
            modified: bit(3)?,
            naked: bit(5)?,
        })
    }
}

/// Is `name` one of the directory macros (or NAK-carrying send) the machine
/// models directly? Summaries for these must never be applied on top.
fn is_modeled_call(name: &str) -> bool {
    matches!(
        name,
        flash::DIR_LOAD
            | flash::DIR_STATE
            | flash::DIR_PTR
            | flash::DIR_SET_STATE
            | flash::DIR_SET_PTR
            | flash::DIR_WRITEBACK
            | flash::NI_SEND
    )
}

struct DirMachine<'s> {
    spec: &'s FlashSpec,
    /// Violations: location, message, and the witness path that produced
    /// them (stamped by the [`PathMachine::step`] wrapper).
    found: Vec<(Span, String, Vec<PathStep>)>,
    /// When `Some`, summarization mode: returns record the pre-return state
    /// instead of checking the write-back obligation.
    ends: Option<std::collections::HashSet<DirState>>,
}

impl DirMachine<'_> {
    fn process(&mut self, e: &Expr, mut st: DirState) -> DirState {
        // Recurse first (arguments evaluate before the call acts).
        match &e.kind {
            ExprKind::Call { args, .. } => {
                for a in args {
                    st = self.process(a, st);
                }
            }
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                st = self.process(rhs, st);
                st = self.process(lhs, st);
            }
            ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => {
                st = self.process(operand, st);
            }
            ExprKind::Ternary { cond, then, els } => {
                st = self.process(cond, st);
                st = self.process(then, st);
                st = self.process(els, st);
            }
            ExprKind::Index { base, index } => {
                st = self.process(base, st);
                st = self.process(index, st);
            }
            ExprKind::Member { base, .. } => st = self.process(base, st),
            ExprKind::Cast { expr, .. } => st = self.process(expr, st),
            ExprKind::Comma(a, b) => {
                st = self.process(a, st);
                st = self.process(b, st);
            }
            ExprKind::Ident(name) if name == "DIR_ADDR_BASE" => {
                // Explicit address arithmetic instead of DIR_ADDR(): the
                // §9.1 "abstraction error" class.
                self.found.push((
                    e.span,
                    "directory address computed explicitly; use DIR_ADDR()".to_string(),
                    Vec::new(),
                ));
            }
            _ => {}
        }
        let Some((name, args)) = e.as_call() else {
            return st;
        };
        match name {
            flash::DIR_LOAD => {
                st.loaded = true;
                st.modified = false;
            }
            flash::DIR_STATE | flash::DIR_PTR => {
                if !st.loaded {
                    self.found.push((
                        e.span,
                        "directory entry read before DIR_LOAD".to_string(),
                        Vec::new(),
                    ));
                }
            }
            flash::DIR_SET_STATE | flash::DIR_SET_PTR => {
                if !st.loaded {
                    self.found.push((
                        e.span,
                        "directory entry modified before DIR_LOAD".to_string(),
                        Vec::new(),
                    ));
                } else {
                    st.modified = true;
                }
            }
            flash::DIR_WRITEBACK => {
                st.modified = false;
            }
            flash::NI_SEND => {
                if let Some(first) = args.first() {
                    if first.as_ident() == Some(flash::MSG_NAK) {
                        st.naked = true;
                    }
                }
            }
            _ => {
                if self.spec.writeback_routines.contains(name) {
                    st.modified = false;
                }
            }
        }
        st
    }
}

impl DirMachine<'_> {
    /// The transition function proper; the [`PathMachine::step`] wrapper
    /// stamps witness paths onto any violation this pushes.
    fn step_inner(&mut self, state: &DirState, event: &PathEvent<'_>) -> Vec<DirState> {
        match event {
            PathEvent::Stmt(s) => {
                let next = match &s.kind {
                    StmtKind::Expr(e) => self.process(e, *state),
                    StmtKind::Decl(d) => {
                        if let Some(mc_ast::Initializer::Expr(e)) = &d.init {
                            self.process(e, *state)
                        } else {
                            *state
                        }
                    }
                    _ => *state,
                };
                vec![next]
            }
            PathEvent::Branch { cond, .. } => vec![self.process(cond, *state)],
            PathEvent::Case { .. } => vec![*state],
            PathEvent::Return { span, .. } => {
                if let Some(ends) = &mut self.ends {
                    ends.insert(*state);
                    return vec![];
                }
                if state.modified && !state.naked {
                    self.found.push((
                        *span,
                        "modified directory entry not written back on exit path".to_string(),
                        Vec::new(),
                    ));
                }
                vec![]
            }
            PathEvent::Call { name, summary, .. } => {
                // Directory macros and annotated write-back routines were
                // already modeled by `process` on the enclosing statement.
                if is_modeled_call(name) || self.spec.writeback_routines.contains(*name) {
                    return vec![*state];
                }
                if let Some(per_state) = summary.transfers.get(MACHINE) {
                    if let Some(ends) = per_state.get(&state.summary_name()) {
                        return ends
                            .iter()
                            .filter_map(|n| DirState::from_summary_name(n))
                            .collect();
                    }
                }
                vec![*state]
            }
        }
    }
}

impl PathMachine for DirMachine<'_> {
    type State = DirState;

    fn step(
        &mut self,
        state: &DirState,
        event: &PathEvent<'_>,
        witness: &Witness<'_>,
    ) -> Vec<DirState> {
        let before = self.found.len();
        let out = self.step_inner(state, event);
        stamp_witness(&mut self.found[before..], witness);
        out
    }
}

/// Counts directory operations — the "Applied" column of Table 6.
pub fn count_dir_ops(func: &mc_ast::Function) -> usize {
    struct V(usize);
    impl mc_ast::Visitor for V {
        fn visit_expr(&mut self, e: &Expr) {
            if let Some((name, _)) = e.as_call() {
                if matches!(
                    name,
                    flash::DIR_LOAD
                        | flash::DIR_STATE
                        | flash::DIR_PTR
                        | flash::DIR_SET_STATE
                        | flash::DIR_SET_PTR
                        | flash::DIR_WRITEBACK
                ) {
                    self.0 += 1;
                }
            }
        }
    }
    let mut v = V(0);
    mc_ast::walk_function(&mut v, func);
    v.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_cfg::Cfg;

    fn check_spec(spec: FlashSpec, src: &str) -> Vec<Report> {
        let tu = mc_ast::parse_translation_unit(src, "t.c").unwrap();
        let checker = Directory::new(spec);
        let mut sink = CheckSink::new();
        for f in tu.functions() {
            let cfg = Cfg::build(f);
            let ctx = FunctionContext {
                file: "t.c",
                unit: &tu,
                function: f,
                cfg: &cfg,
                traversal: mc_cfg::Traversal::default(),
                summaries: None,
            };
            checker.check_function(&ctx, &mut sink);
        }
        sink.into_reports()
    }

    fn check(src: &str) -> Vec<Report> {
        check_spec(FlashSpec::new(), src)
    }

    #[test]
    fn load_modify_writeback_clean() {
        let r = check(
            r#"void PILocalGet(void) {
                DIR_LOAD();
                if (DIR_STATE() == DIRTY) {
                    DIR_SET_STATE(SHARED);
                }
                DIR_WRITEBACK();
            }"#,
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn modify_without_writeback() {
        // The one real bug found in bitvector.
        let r = check(
            r#"void PILocalGet(void) {
                DIR_LOAD();
                DIR_SET_STATE(SHARED);
            }"#,
        );
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("not written back"));
    }

    #[test]
    fn use_before_load() {
        let r = check("void PILocalGet(void) { x = DIR_STATE(); }");
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("before DIR_LOAD"));
    }

    #[test]
    fn modify_before_load() {
        let r = check("void PILocalGet(void) { DIR_SET_STATE(SHARED); }");
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("modified before"));
    }

    #[test]
    fn nak_waives_writeback() {
        // Speculative handler: modifies in anticipation, NAKs instead.
        let r = check(
            r#"void NISpecGet(void) {
                DIR_LOAD();
                DIR_SET_STATE(PENDING);
                if (queue_full) {
                    NI_SEND(MSG_NAK, F_NODATA, k, w, d, n);
                    return;
                }
                DIR_WRITEBACK();
            }"#,
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn speculative_backout_without_nak_is_reported() {
        // The 3 false positives: back out without a NAK pattern.
        let r = check(
            r#"void NISpecGet(void) {
                DIR_LOAD();
                DIR_SET_STATE(PENDING);
                if (special_case) {
                    return;
                }
                DIR_WRITEBACK();
            }"#,
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn annotated_writeback_routine_trusted() {
        let mut spec = FlashSpec::new();
        spec.writeback_routines
            .insert("update_and_writeback".into());
        let r = check_spec(
            spec,
            r#"void PILocalGet(void) {
                DIR_LOAD();
                DIR_SET_STATE(SHARED);
                update_and_writeback();
            }"#,
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn unannotated_writeback_routine_is_false_positive() {
        // Same code, no table entry: the paper's 14 subroutine FPs.
        let r = check(
            r#"void PILocalGet(void) {
                DIR_LOAD();
                DIR_SET_STATE(SHARED);
                update_and_writeback();
            }"#,
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn writeback_routine_itself_checked() {
        let mut spec = FlashSpec::new();
        spec.writeback_routines
            .insert("update_and_writeback".into());
        // It starts "loaded" and must write back what it modifies.
        let r = check_spec(
            spec.clone(),
            "void update_and_writeback(void) { DIR_SET_STATE(SHARED); DIR_WRITEBACK(); }",
        );
        assert!(r.is_empty(), "{r:?}");
        let r = check_spec(
            spec,
            "void update_and_writeback(void) { DIR_SET_STATE(SHARED); }",
        );
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn explicit_address_computation_flagged() {
        let r = check(
            r#"void PILocalGet(void) {
                DIR_LOAD();
                entry = DIR_ADDR_BASE + line * 8;
                DIR_WRITEBACK();
            }"#,
        );
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("DIR_ADDR"));
    }

    #[test]
    fn reload_clears_modified() {
        let r = check(
            r#"void PILocalGet(void) {
                DIR_LOAD();
                DIR_SET_STATE(PENDING);
                DIR_LOAD();
            }"#,
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn op_counting() {
        let tu = mc_ast::parse_translation_unit(
            "void h(void) { DIR_LOAD(); x = DIR_STATE(); DIR_SET_STATE(y); DIR_WRITEBACK(); }",
            "t.c",
        )
        .unwrap();
        assert_eq!(count_dir_ops(tu.functions().next().unwrap()), 4);
    }
}
