//! Shared plumbing for the native state machines' violation lists.
//!
//! Each native machine accumulates `(span, message, steps)` triples while
//! its [`mc_cfg::PathMachine`] runs. The trait `step` wrapper stamps the
//! current witness onto whatever the inner transition function pushed, and
//! the checker dedups by `(span, message)` afterwards — keeping the first
//! witness, which under StateSet traversal is the first path that reached
//! the deduplicated state.

use mc_ast::Span;
use mc_cfg::{PathStep, Witness};

/// Stamps `witness` onto the violations pushed during one `step` call.
///
/// Materializes the witness chain once per firing step — the common
/// no-violation step costs nothing.
pub(crate) fn stamp_witness(fresh: &mut [(Span, String, Vec<PathStep>)], witness: &Witness<'_>) {
    if fresh.is_empty() {
        return;
    }
    let steps = witness.steps();
    for f in fresh {
        f.2 = steps.clone();
    }
}

/// Sorts by `(span, message)` and drops duplicate violations, keeping the
/// first-recorded witness for each. The sort is stable and the key excludes
/// the steps, so two paths reaching the same violation collapse to one
/// report whose path is the deterministic first arrival.
pub(crate) fn dedup_found(found: &mut Vec<(Span, String, Vec<PathStep>)>) {
    found.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
    found.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_first_witness_per_key() {
        let step = |n: &str| PathStep::new(Span::new(1, 1), n);
        let mut found = vec![
            (Span::new(5, 1), "b".to_string(), vec![step("late")]),
            (Span::new(3, 1), "a".to_string(), vec![step("first")]),
            (Span::new(3, 1), "a".to_string(), vec![step("second")]),
        ];
        dedup_found(&mut found);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].1, "a");
        assert_eq!(found[0].2[0].note, "first");
        assert_eq!(found[1].1, "b");
    }
}
