//! §6 — Buffer management (Table 4).
//!
//! Every FLASH node manages its data buffers with manual reference
//! counting; leaks deadlock the machine days later, double frees corrupt
//! other handlers' messages. The checker enforces the paper's four rules:
//!
//! 1. hardware handlers begin with a buffer they must free;
//! 2. software handlers begin without one and must allocate before
//!    sending;
//! 3. after a free, no send until another allocation;
//! 4. once allocated, a buffer must be freed before allocating again.
//!
//! The checker consults [`FlashSpec`] tables of routines that free or use
//! buffers on the caller's behalf, honours the `has_buffer()` /
//! `no_free_needed()` suppression annotations, and (optionally) is
//! value-sensitive to conditional-free routines — the 12-line addition
//! that removed over twenty useless annotations in the paper.

use crate::flash::{self, FlashSpec, RoutineKind};
use crate::{dedup_found, stamp_witness};
use mc_ast::{Expr, ExprKind, Span, Stmt, StmtKind};
use mc_cfg::{FnSummary, PathEvent, PathMachine, PathStep, Witness};
use mc_driver::{CheckSink, Checker, FunctionContext, Report};
use std::collections::{BTreeMap, HashSet};

/// Buffer-possession state along a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum BufState {
    /// A live buffer is held.
    Has,
    /// No live buffer.
    None,
    /// `no_free_needed()` was asserted: end-of-path checks are waived.
    Exempt,
}

/// The name of the summary machine this checker publishes transfers under.
const MACHINE: &str = "buffer_mgmt";

impl BufState {
    /// Stable name used in summary transfer tables.
    fn summary_name(self) -> &'static str {
        match self {
            BufState::Has => "Has",
            BufState::None => "None",
            BufState::Exempt => "Exempt",
        }
    }

    fn from_summary_name(name: &str) -> Option<BufState> {
        match name {
            "Has" => Some(BufState::Has),
            "None" => Some(BufState::None),
            "Exempt" => Some(BufState::Exempt),
            _ => None,
        }
    }
}

/// What a function must look like when it returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EndRule {
    /// Must have freed the buffer (handlers, free-routines).
    MustBeFree,
    /// Must still hold the buffer (use-routines).
    MustHold,
}

/// The buffer-management checker.
#[derive(Debug, Clone)]
pub struct BufferMgmt {
    spec: FlashSpec,
    /// When `true` (default), a conditional-free routine used as a branch
    /// condition frees on the true edge only. When `false`, it is treated
    /// as freeing on both edges — the paper's naive behavior that caused
    /// "a small cascade of errors".
    pub value_sensitive: bool,
}

impl BufferMgmt {
    /// Creates the checker with the given protocol tables.
    pub fn new(spec: FlashSpec) -> BufferMgmt {
        BufferMgmt {
            spec,
            value_sensitive: true,
        }
    }

    /// Should this function be checked, and from which initial state?
    fn plan(&self, name: &str) -> Option<(BufState, EndRule)> {
        if self.spec.free_routines.contains(name) {
            return Some((BufState::Has, EndRule::MustBeFree));
        }
        if self.spec.use_routines.contains(name) {
            return Some((BufState::Has, EndRule::MustHold));
        }
        if self.spec.cond_free_routines.contains(name) {
            // Value-dependent; cannot be checked with a single end rule.
            return None;
        }
        match self.spec.classify(name) {
            RoutineKind::HardwareHandler => Some((BufState::Has, EndRule::MustBeFree)),
            RoutineKind::SoftwareHandler => Some((BufState::None, EndRule::MustBeFree)),
            RoutineKind::Procedure => None,
        }
    }
}

impl Checker for BufferMgmt {
    fn name(&self) -> &str {
        "buffer_mgmt"
    }

    /// Purely local: no program pass, so the incremental engine never
    /// re-runs this checker for call-graph neighbours of an edited unit.
    fn has_program_pass(&self) -> bool {
        false
    }

    fn check_function(&self, ctx: &FunctionContext<'_>, sink: &mut CheckSink) {
        if flash::is_unimplemented(ctx.function) {
            return;
        }
        let Some((init, end_rule)) = self.plan(&ctx.function.name) else {
            return;
        };
        let mut machine = BufMachine {
            checker: self,
            end_rule,
            found: Vec::new(),
            ends: None,
        };
        let oracle = ctx.summaries.map(|s| s as &dyn mc_cfg::SummaryLookup);
        mc_cfg::run_traversal_with(ctx.cfg, &mut machine, init, ctx.traversal, oracle);
        dedup_found(&mut machine.found);
        for (span, message, steps) in machine.found {
            let mut report =
                Report::error("buffer_mgmt", ctx.file, &ctx.function.name, span, message);
            report.steps = steps;
            sink.push(report);
        }
    }

    /// Publishes a buffer-state transfer table for helpers the spec does
    /// not already model, so `--interproc` call sites can see through
    /// wrappers (a helper that frees on the caller's behalf maps
    /// `Has -> None` instead of being opaque).
    fn summarize_function(
        &self,
        ctx: &FunctionContext<'_>,
        summary: &mut FnSummary,
        transfers: bool,
    ) {
        if !transfers || flash::is_unimplemented(ctx.function) {
            return;
        }
        // Functions the spec tables model are applied as ops at the call
        // site; publishing a transfer too would make them act twice.
        let name = &ctx.function.name;
        if self.plan(name).is_some() || self.spec.cond_free_routines.contains(name) {
            return;
        }
        let mut table = BTreeMap::new();
        for start in [BufState::Has, BufState::None, BufState::Exempt] {
            let mut machine = BufMachine {
                checker: self,
                // Unused: `ends` mode records pre-return states instead of
                // applying the end rule.
                end_rule: EndRule::MustBeFree,
                found: Vec::new(),
                ends: Some(HashSet::new()),
            };
            let oracle = ctx.summaries.map(|s| s as &dyn mc_cfg::SummaryLookup);
            mc_cfg::run_traversal_with(ctx.cfg, &mut machine, start, ctx.traversal, oracle);
            let mut ends: Vec<String> = machine
                .ends
                .unwrap()
                .into_iter()
                .map(|s| s.summary_name().to_string())
                .collect();
            ends.sort();
            if ends.len() == 1 && ends[0] == start.summary_name() {
                continue; // identity transfers are left implicit
            }
            table.insert(start.summary_name().to_string(), ends);
        }
        if !table.is_empty() {
            summary.transfers.insert(MACHINE.to_string(), table);
        }
    }
}

/// An operation relevant to buffer state, extracted from an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Free,
    Alloc,
    Use,
    CondFree,
    AnnotHasBuffer,
    AnnotNoFreeNeeded,
}

struct BufMachine<'c> {
    checker: &'c BufferMgmt,
    end_rule: EndRule,
    /// Violations: location, message, and the witness path that produced
    /// them (stamped by the [`PathMachine::step`] wrapper).
    found: Vec<(Span, String, Vec<PathStep>)>,
    /// When `Some`, the machine runs in summarization mode: return events
    /// record the pre-return state here instead of checking the end rule,
    /// and diagnostics accumulated in `found` are discarded by the caller.
    ends: Option<std::collections::HashSet<BufState>>,
}

impl BufMachine<'_> {
    fn classify_call(&self, name: &str) -> Option<Op> {
        if name == flash::DB_FREE || self.checker.spec.free_routines.contains(name) {
            return Some(Op::Free);
        }
        if name == flash::DB_ALLOC {
            return Some(Op::Alloc);
        }
        if name == flash::MISCBUS_READ_DB
            || name == flash::DB_WRITE
            || flash::is_send(name)
            || self.checker.spec.use_routines.contains(name)
        {
            return Some(Op::Use);
        }
        if self.checker.spec.cond_free_routines.contains(name) {
            return Some(Op::CondFree);
        }
        if name == flash::HAS_BUFFER {
            return Some(Op::AnnotHasBuffer);
        }
        if name == flash::NO_FREE_NEEDED {
            return Some(Op::AnnotNoFreeNeeded);
        }
        None
    }

    /// Collects buffer operations from an expression tree in evaluation
    /// order.
    fn collect_ops(&self, e: &Expr, out: &mut Vec<(Op, Span)>) {
        match &e.kind {
            ExprKind::Call { callee, args } => {
                for a in args {
                    self.collect_ops(a, out);
                }
                if let ExprKind::Ident(name) = &callee.kind {
                    if let Some(op) = self.classify_call(name) {
                        out.push((op, e.span));
                    }
                }
            }
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                self.collect_ops(rhs, out);
                self.collect_ops(lhs, out);
            }
            ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => {
                self.collect_ops(operand, out)
            }
            ExprKind::Ternary { cond, then, els } => {
                self.collect_ops(cond, out);
                self.collect_ops(then, out);
                self.collect_ops(els, out);
            }
            ExprKind::Index { base, index } => {
                self.collect_ops(base, out);
                self.collect_ops(index, out);
            }
            ExprKind::Member { base, .. } => self.collect_ops(base, out),
            ExprKind::Cast { expr, .. } => self.collect_ops(expr, out),
            ExprKind::Comma(a, b) => {
                self.collect_ops(a, out);
                self.collect_ops(b, out);
            }
            _ => {}
        }
    }

    fn apply(&mut self, state: BufState, op: Op, span: Span) -> BufState {
        match (op, state) {
            (Op::Free, BufState::Has) => BufState::None,
            (Op::Free, BufState::Exempt) => BufState::None,
            (Op::Free, BufState::None) => {
                self.found.push((
                    span,
                    "buffer freed twice (or freed while none is held)".to_string(),
                    Vec::new(),
                ));
                BufState::None
            }
            (Op::Alloc, BufState::None) => BufState::Has,
            (Op::Alloc, BufState::Exempt) => BufState::Has,
            (Op::Alloc, BufState::Has) => {
                self.found.push((
                    span,
                    "allocation overwrites a live buffer (buffer leak)".to_string(),
                    Vec::new(),
                ));
                BufState::Has
            }
            (Op::Use, BufState::None) => {
                self.found.push((
                    span,
                    "buffer used or message sent with no live buffer".to_string(),
                    Vec::new(),
                ));
                BufState::None
            }
            (Op::Use, s) => s,
            // A conditional-free seen outside a branch condition (or with
            // value sensitivity off): conservatively treat as freeing.
            (Op::CondFree, s) => self.apply(s, Op::Free, span),
            (Op::AnnotHasBuffer, _) => BufState::Has,
            (Op::AnnotNoFreeNeeded, _) => BufState::Exempt,
        }
    }

    /// Extracts a conditional-free routine called at the top level of a
    /// branch condition (possibly negated), returning (name, negated).
    fn cond_free_in_branch<'a>(&self, cond: &'a Expr) -> Option<(&'a str, bool)> {
        match &cond.kind {
            ExprKind::Call { .. } => {
                let (name, _) = cond.as_call()?;
                self.checker
                    .spec
                    .cond_free_routines
                    .contains(name)
                    .then_some((name, false))
            }
            ExprKind::Unary {
                op: mc_ast::UnaryOp::Not,
                operand,
            } => self.cond_free_in_branch(operand).map(|(n, neg)| (n, !neg)),
            _ => None,
        }
    }
}

impl BufMachine<'_> {
    /// The transition function proper; the [`PathMachine::step`] wrapper
    /// stamps witness paths onto any violation this pushes.
    fn step_inner(&mut self, state: &BufState, event: &PathEvent<'_>) -> Vec<BufState> {
        let mut ops = Vec::new();
        match event {
            PathEvent::Stmt(s) => collect_stmt_ops(self, s, &mut ops),
            PathEvent::Branch { cond, taken } => {
                if self.checker.value_sensitive {
                    if let Some((_, negated)) = self.cond_free_in_branch(cond) {
                        // `if (cf())`: freed on the true edge (or the false
                        // edge when negated).
                        let freed = *taken != negated;
                        let next = if freed {
                            self.apply(*state, Op::Free, cond.span)
                        } else {
                            *state
                        };
                        return vec![next];
                    }
                }
                self.collect_ops(cond, &mut ops);
            }
            PathEvent::Case { .. } => {}
            PathEvent::Return { span, .. } => {
                if let Some(ends) = &mut self.ends {
                    ends.insert(*state);
                    return vec![];
                }
                match (self.end_rule, *state) {
                    (_, BufState::Exempt) => {}
                    (EndRule::MustBeFree, BufState::Has) => {
                        self.found.push((
                            *span,
                            "exit path still holds a data buffer (buffer leak)".to_string(),
                            Vec::new(),
                        ));
                    }
                    (EndRule::MustHold, BufState::None) => {
                        self.found.push((
                            *span,
                            "buffer-keeping routine freed its buffer".to_string(),
                            Vec::new(),
                        ));
                    }
                    _ => {}
                }
                return vec![];
            }
            PathEvent::Call { name, summary, .. } => {
                // A callee the spec tables already model was handled as an
                // `Op` when the enclosing statement was stepped; applying
                // its summary too would act twice.
                if self.classify_call(name).is_some() {
                    return vec![*state];
                }
                if let Some(per_state) = summary.transfers.get(MACHINE) {
                    if let Some(ends) = per_state.get(state.summary_name()) {
                        return ends
                            .iter()
                            .filter_map(|n| BufState::from_summary_name(n))
                            .collect();
                    }
                }
                return vec![*state];
            }
        }
        let mut cur = *state;
        for (op, span) in ops {
            cur = self.apply(cur, op, span);
        }
        vec![cur]
    }
}

impl PathMachine for BufMachine<'_> {
    type State = BufState;

    fn step(
        &mut self,
        state: &BufState,
        event: &PathEvent<'_>,
        witness: &Witness<'_>,
    ) -> Vec<BufState> {
        let before = self.found.len();
        let out = self.step_inner(state, event);
        stamp_witness(&mut self.found[before..], witness);
        out
    }
}

fn collect_stmt_ops(m: &BufMachine<'_>, s: &Stmt, out: &mut Vec<(Op, Span)>) {
    match &s.kind {
        StmtKind::Expr(e) => m.collect_ops(e, out),
        StmtKind::Decl(d) => {
            if let Some(mc_ast::Initializer::Expr(e)) = &d.init {
                m.collect_ops(e, out);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_cfg::Cfg;

    fn spec() -> FlashSpec {
        let mut s = FlashSpec::new();
        s.free_routines.insert("send_reply_and_free".into());
        s.use_routines.insert("peek_message".into());
        s.cond_free_routines.insert("cf_maybe_release".into());
        s
    }

    fn check(src: &str) -> Vec<Report> {
        let tu = mc_ast::parse_translation_unit(src, "t.c").unwrap();
        let checker = BufferMgmt::new(spec());
        let mut sink = CheckSink::new();
        for f in tu.functions() {
            let cfg = Cfg::build(f);
            let ctx = FunctionContext {
                file: "t.c",
                unit: &tu,
                function: f,
                cfg: &cfg,
                traversal: mc_cfg::Traversal::default(),
                summaries: None,
            };
            checker.check_function(&ctx, &mut sink);
        }
        sink.into_reports()
    }

    #[test]
    fn clean_hardware_handler() {
        let r = check("void PILocalGet(void) { NI_SEND(t, F_DATA, k, w, d, n); DB_FREE(); }");
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn missing_free_is_leak() {
        let r = check("void PILocalGet(void) { NI_SEND(t, F_DATA, k, w, d, n); }");
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("leak"));
    }

    #[test]
    fn double_free_detected() {
        let r = check("void PILocalGet(void) { DB_FREE(); DB_FREE(); }");
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("freed twice"));
    }

    #[test]
    fn double_free_via_table_routine() {
        // The shared-legacy bug: an explicit free followed by a call to a
        // routine that also frees.
        let r = check("void PILocalGet(void) { DB_FREE(); send_reply_and_free(); }");
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("freed twice"));
    }

    #[test]
    fn send_after_free_detected() {
        let r = check("void PILocalGet(void) { DB_FREE(); NI_SEND(t, F_NODATA, k, w, d, n); }");
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("no live buffer"));
    }

    #[test]
    fn alloc_while_holding_is_leak() {
        let r = check("void PILocalGet(void) { b = DB_ALLOC(); }");
        // Two reports: the overwrite itself, and the still-held buffer at
        // exit.
        assert_eq!(r.len(), 2);
        assert!(r.iter().any(|x| x.message.contains("overwrites")));
    }

    #[test]
    fn software_handler_must_allocate_before_send() {
        let r = check("void SWPageMove(void) { PI_SEND(F_DATA, k, s, w, d, n); }");
        assert_eq!(r.len(), 1);
        let r = check(
            "void SWPageMove(void) { b = DB_ALLOC(); PI_SEND(F_DATA, k, s, w, d, n); DB_FREE(); }",
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn annotations_suppress() {
        let r = check("void PILocalGet(void) { no_free_needed(); }");
        assert!(r.is_empty());
        let r = check(
            "void SWPageMove(void) { has_buffer(); PI_SEND(F_DATA, k, s, w, d, n); DB_FREE(); }",
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn free_routine_checked_for_consistency() {
        // Listed free-routine that forgets to free on one path.
        let r = check("void send_reply_and_free(void) { if (x) { DB_FREE(); } }");
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("leak"));
    }

    #[test]
    fn use_routine_must_not_free() {
        let r = check("void peek_message(void) { DB_FREE(); }");
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("buffer-keeping"));
    }

    #[test]
    fn plain_procedures_are_skipped() {
        let r = check("void compute_owner(void) { DB_FREE(); DB_FREE(); }");
        assert!(r.is_empty());
    }

    #[test]
    fn correlated_branches_false_positive() {
        // The dominant false-positive class: two branches on the same
        // condition. Without feasibility pruning the checker explores the
        // infeasible combination and reports; with pruning (the driver
        // default, via ctx.traversal) the correlated paths are refuted.
        let src = r#"void PILocalGet(void) {
                if (c) { DB_FREE(); }
                count++;
                if (c) { return; }
                NI_SEND(t, F_NODATA, k, w, d, n);
                DB_FREE();
            }"#;
        let run = |prune: bool| {
            let tu = mc_ast::parse_translation_unit(src, "t.c").unwrap();
            let checker = BufferMgmt::new(spec());
            let mut sink = CheckSink::new();
            let f = tu.functions().next().unwrap();
            let cfg = Cfg::build(f);
            let mut traversal = mc_cfg::Traversal::default();
            traversal.prune = prune;
            let ctx = FunctionContext {
                file: "t.c",
                unit: &tu,
                function: f,
                cfg: &cfg,
                traversal,
                summaries: None,
            };
            checker.check_function(&ctx, &mut sink);
            sink.into_reports()
        };
        assert!(
            !run(false).is_empty(),
            "unpruned traversal flags the infeasible path, like xg++"
        );
        assert!(
            run(true).is_empty(),
            "pruning refutes the correlated branches"
        );
    }

    #[test]
    fn value_sensitive_cond_free() {
        let src = r#"void PILocalGet(void) {
            if (cf_maybe_release()) {
                return;
            }
            DB_FREE();
        }"#;
        let r = check(src);
        assert!(
            r.is_empty(),
            "value-sensitive handling should be clean: {r:?}"
        );

        // With sensitivity off, the conservative both-edges-free treatment
        // produces the cascade the paper describes.
        let tu = mc_ast::parse_translation_unit(src, "t.c").unwrap();
        let mut checker = BufferMgmt::new(spec());
        checker.value_sensitive = false;
        let mut sink = CheckSink::new();
        let f = tu.functions().next().unwrap();
        let cfg = Cfg::build(f);
        let ctx = FunctionContext {
            file: "t.c",
            unit: &tu,
            function: f,
            cfg: &cfg,
            traversal: mc_cfg::Traversal::default(),
            summaries: None,
        };
        checker.check_function(&ctx, &mut sink);
        assert!(!sink.is_empty());
    }

    #[test]
    fn negated_cond_free() {
        let r = check(
            r#"void PILocalGet(void) {
                if (!cf_maybe_release()) {
                    DB_FREE();
                }
            }"#,
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn exit_via_multiple_returns() {
        let r = check(
            r#"void PILocalGet(void) {
                if (a) { DB_FREE(); return; }
                if (b) { return; }
                DB_FREE();
            }"#,
        );
        // The `if (b) return;` path leaks.
        assert_eq!(r.len(), 1);
    }
}
