//! §8 — Handler execution restrictions (Table 5).
//!
//! FLASH's execution environment is more restrictive than C. This checker
//! enforces:
//!
//! * handlers take no parameters and return no results;
//! * deprecated macros are not used;
//! * no floating-point operations anywhere in protocol code;
//! * no-stack handlers (`NO_STACK()` assertion) take no local addresses,
//!   declare few and small locals, and bracket every subroutine call with
//!   `SET_STACKPTR()`;
//! * the first two statements of every routine are the simulator hooks
//!   matching its class (`HANDLER_*`, `SWHANDLER_*`, `PROC_*`).
//!
//! Functions whose body begins with `FATAL_ERROR()` are intentionally
//! unimplemented and are skipped (the paper likewise did not count sci's
//! violations in unimplemented routines). `inline` functions are exempt
//! from the hook requirement, matching the paper's counting.

use crate::flash::{self, FlashSpec, RoutineKind};
use mc_ast::{walk_function, Declaration, Expr, ExprKind, Function, Stmt, StmtKind, Type, Visitor};
use mc_driver::{CheckSink, Checker, FunctionContext, Report};

/// Maximum number of locals a no-stack handler may declare (they must all
/// fit in registers).
pub const MAX_NO_STACK_LOCALS: usize = 8;

/// The execution-restriction checker.
#[derive(Debug, Clone)]
pub struct ExecRestrict {
    spec: FlashSpec,
}

impl ExecRestrict {
    /// Creates the checker with the given protocol spec.
    pub fn new(spec: FlashSpec) -> ExecRestrict {
        ExecRestrict { spec }
    }

    fn expected_hooks(&self, kind: RoutineKind) -> (&'static str, &'static str) {
        match kind {
            RoutineKind::HardwareHandler => (flash::HANDLER_DEFS, flash::HANDLER_PROLOGUE),
            RoutineKind::SoftwareHandler => (flash::SWHANDLER_DEFS, flash::SWHANDLER_PROLOGUE),
            RoutineKind::Procedure => (flash::PROC_DEFS, flash::PROC_PROLOGUE),
        }
    }
}

impl Checker for ExecRestrict {
    fn name(&self) -> &str {
        "exec_restrict"
    }

    /// Purely local: no program pass, so the incremental engine never
    /// re-runs this checker for call-graph neighbours of an edited unit.
    fn has_program_pass(&self) -> bool {
        false
    }

    fn check_function(&self, ctx: &FunctionContext<'_>, sink: &mut CheckSink) {
        let f = ctx.function;
        if flash::is_unimplemented(f) {
            return;
        }
        let kind = self.spec.classify(&f.name);
        let err = |span, msg: String| Report::error("exec_restrict", ctx.file, &f.name, span, msg);
        let warn =
            |span, msg: String| Report::warning("exec_restrict", ctx.file, &f.name, span, msg);

        // 1. Handler signature.
        if kind != RoutineKind::Procedure && !f.is_handler_shaped() {
            sink.push(err(
                f.span,
                "handlers must take no parameters and return void".to_string(),
            ));
        }

        // 2. Simulator hooks: first and second statements.
        if !f.storage.is_inline {
            let (defs, prologue) = self.expected_hooks(kind);
            if !stmt_is_call(f.body.first(), defs) || !stmt_is_call(f.body.get(1), prologue) {
                sink.push(err(
                    f.span,
                    format!(
                        "missing simulator hooks: first two statements must be \
                         {defs}(); {prologue}();"
                    ),
                ));
            }
        }

        // 3. Floating point and deprecated macros, via one walk.
        let mut walk = RestrictionWalk {
            sink,
            file: ctx.file,
            func: &f.name,
            locals: Vec::new(),
            float_spans: Vec::new(),
            deprecated: Vec::new(),
            addr_of_locals: Vec::new(),
            big_locals: Vec::new(),
        };
        for p in &f.params {
            if p.ty.contains_float() {
                walk.float_spans.push(f.span);
            }
        }
        if f.return_type.contains_float() {
            walk.float_spans.push(f.span);
        }
        walk_function(&mut walk, f);
        let RestrictionWalk {
            locals,
            float_spans,
            deprecated,
            addr_of_locals,
            big_locals,
            ..
        } = walk;
        for span in float_spans {
            sink.push(err(
                span,
                "floating point is forbidden in protocol code".into(),
            ));
        }
        for (name, span) in deprecated {
            sink.push(warn(span, format!("use of deprecated macro `{name}`")));
        }

        // 4. No-stack handlers.
        let no_stack_positions: Vec<usize> = f
            .body
            .iter()
            .enumerate()
            .filter(|(_, s)| stmt_is_call(Some(s), flash::NO_STACK))
            .map(|(i, _)| i)
            .collect();
        if no_stack_positions.len() > 1 {
            sink.push(err(
                f.span,
                "more than one NO_STACK() annotation".to_string(),
            ));
        }
        let is_no_stack = !no_stack_positions.is_empty();
        if is_no_stack && no_stack_positions[0] != 2 {
            sink.push(err(
                f.span,
                "NO_STACK() must directly follow the prologue hooks".to_string(),
            ));
        }
        if is_no_stack {
            for (name, span) in addr_of_locals {
                sink.push(err(
                    span,
                    format!("no-stack handler takes the address of local `{name}`"),
                ));
            }
            for (name, span) in big_locals {
                sink.push(err(
                    span,
                    format!(
                        "no-stack handler declares `{name}`, larger than 64 bits \
                         (cannot live in registers)"
                    ),
                ));
            }
            if locals.len() > MAX_NO_STACK_LOCALS {
                sink.push(err(
                    f.span,
                    format!(
                        "no-stack handler declares {} locals (max {MAX_NO_STACK_LOCALS})",
                        locals.len()
                    ),
                ));
            }
            check_set_stackptr(f, ctx.file, sink);
        }
    }
}

fn stmt_is_call(s: Option<&Stmt>, name: &str) -> bool {
    let Some(s) = s else { return false };
    let StmtKind::Expr(e) = &s.kind else {
        return false;
    };
    matches!(e.as_call(), Some((n, _)) if n == name)
}

struct RestrictionWalk<'a> {
    #[allow(dead_code)]
    sink: &'a mut CheckSink,
    #[allow(dead_code)]
    file: &'a str,
    #[allow(dead_code)]
    func: &'a str,
    locals: Vec<String>,
    float_spans: Vec<mc_ast::Span>,
    deprecated: Vec<(String, mc_ast::Span)>,
    addr_of_locals: Vec<(String, mc_ast::Span)>,
    big_locals: Vec<(String, mc_ast::Span)>,
}

impl Visitor for RestrictionWalk<'_> {
    fn visit_decl(&mut self, d: &Declaration) {
        self.locals.push(d.name.clone());
        if d.ty.contains_float() {
            self.float_spans.push(d.span);
        }
        if matches!(d.ty, Type::Array(..) | Type::Struct { .. }) && d.ty.size_bits() > 64 {
            self.big_locals.push((d.name.clone(), d.span));
        }
    }

    fn visit_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::FloatLit(..) => self.float_spans.push(e.span),
            ExprKind::Cast { ty, .. } | ExprKind::SizeofType(ty) if ty.contains_float() => {
                self.float_spans.push(e.span);
            }
            ExprKind::Call { callee, .. } => {
                if let ExprKind::Ident(name) = &callee.kind {
                    if flash::DEPRECATED_MACROS.contains(&name.as_str()) {
                        self.deprecated.push((name.clone(), e.span));
                    }
                }
            }
            ExprKind::Unary {
                op: mc_ast::UnaryOp::AddrOf,
                operand,
            } => {
                if let ExprKind::Ident(name) = &operand.kind {
                    if self.locals.contains(name) {
                        self.addr_of_locals.push((name.clone(), e.span));
                    }
                }
            }
            _ => {}
        }
    }
}

/// Verifies the `SET_STACKPTR` discipline in a no-stack handler: every
/// subroutine call is immediately preceded by `SET_STACKPTR()`, and every
/// `SET_STACKPTR()` is immediately followed by a call. Checked per
/// statement sequence (block), which matches how handlers are written.
fn check_set_stackptr(f: &Function, file: &str, sink: &mut CheckSink) {
    fn scan(stmts: &[Stmt], file: &str, func: &str, sink: &mut CheckSink) {
        let mut prev_was_set = false;
        for s in stmts {
            let is_set = stmt_is_call(Some(s), flash::SET_STACKPTR);
            let call_name = subroutine_call_name(s);
            if let Some(name) = &call_name {
                if !prev_was_set {
                    sink.push(Report::error(
                        "exec_restrict",
                        file,
                        func,
                        s.span,
                        format!("call to `{name}` without preceding SET_STACKPTR()"),
                    ));
                }
            } else if prev_was_set {
                sink.push(Report::error(
                    "exec_restrict",
                    file,
                    func,
                    s.span,
                    "spurious SET_STACKPTR(): not followed by a call".to_string(),
                ));
            }
            prev_was_set = is_set;
            // Recurse into nested bodies.
            match &s.kind {
                StmtKind::Block(b) => scan(b, file, func, sink),
                StmtKind::If { then, els, .. } => {
                    scan(std::slice::from_ref(then), file, func, sink);
                    if let Some(e) = els {
                        scan(std::slice::from_ref(e), file, func, sink);
                    }
                }
                StmtKind::While { body, .. }
                | StmtKind::DoWhile { body, .. }
                | StmtKind::For { body, .. } => scan(std::slice::from_ref(body), file, func, sink),
                StmtKind::Switch { cases, .. } => {
                    for c in cases {
                        scan(&c.body, file, func, sink);
                    }
                }
                _ => {}
            }
        }
        if prev_was_set {
            sink.push(Report::error(
                "exec_restrict",
                file,
                func,
                stmts.last().map(|s| s.span).unwrap_or_default(),
                "spurious SET_STACKPTR(): not followed by a call".to_string(),
            ));
        }
    }
    scan(&f.body, file, &f.name, sink);
}

/// If the statement is a call to a non-macro (i.e. a real subroutine),
/// returns the callee name.
fn subroutine_call_name(s: &Stmt) -> Option<String> {
    let StmtKind::Expr(e) = &s.kind else {
        return None;
    };
    let (name, _) = e.as_call()?;
    (!flash::is_flash_macro(name)).then(|| name.to_string())
}

/// Counts routines and declared variables — the "Handlers" and "Vars"
/// columns of Table 5.
pub fn count_routines_and_vars(funcs: &[&Function]) -> (usize, usize) {
    struct V(usize);
    impl Visitor for V {
        fn visit_decl(&mut self, _: &Declaration) {
            self.0 += 1;
        }
    }
    let mut vars = 0;
    for f in funcs {
        let mut v = V(0);
        walk_function(&mut v, f);
        vars += v.0 + f.params.len();
    }
    (funcs.len(), vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_cfg::Cfg;

    fn check(src: &str) -> Vec<Report> {
        let tu = mc_ast::parse_translation_unit(src, "t.c").unwrap();
        let checker = ExecRestrict::new(FlashSpec::new());
        let mut sink = CheckSink::new();
        for f in tu.functions() {
            let cfg = Cfg::build(f);
            let ctx = FunctionContext {
                file: "t.c",
                unit: &tu,
                function: f,
                cfg: &cfg,
                traversal: mc_cfg::Traversal::default(),
                summaries: None,
            };
            checker.check_function(&ctx, &mut sink);
        }
        sink.into_reports()
    }

    const CLEAN: &str = r#"
        void PILocalGet(void) {
            HANDLER_DEFS();
            HANDLER_PROLOGUE();
            int x;
            x = 1;
        }
    "#;

    #[test]
    fn clean_handler_passes() {
        assert!(check(CLEAN).is_empty());
    }

    #[test]
    fn missing_hooks_detected() {
        let r = check("void PILocalGet(void) { int x; x = 1; }");
        assert_eq!(r.len(), 1);
        assert!(r[0].message.contains("simulator hooks"));
    }

    #[test]
    fn wrong_hook_class_detected() {
        // Software handler using hardware hooks.
        let r = check("void SWMigrate(void) { HANDLER_DEFS(); HANDLER_PROLOGUE(); }");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn procedures_need_proc_hooks() {
        let r = check("void compute_owner(void) { PROC_DEFS(); PROC_PROLOGUE(); }");
        assert!(r.is_empty());
        let r = check("void compute_owner(void) { do_it(); }");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn inline_functions_exempt_from_hooks() {
        let r = check("inline void helper_inline(void) { f(); }");
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn unimplemented_routines_skipped() {
        let r = check("void NIFutureOp(void) { FATAL_ERROR(); }");
        assert!(r.is_empty());
    }

    #[test]
    fn handler_signature_enforced() {
        let r = check("int PILocalGet(void) { HANDLER_DEFS(); HANDLER_PROLOGUE(); return 0; }");
        assert!(r.iter().any(|x| x.message.contains("no parameters")));
        let r = check("void NIPut(int x) { HANDLER_DEFS(); HANDLER_PROLOGUE(); }");
        assert!(r.iter().any(|x| x.message.contains("no parameters")));
    }

    #[test]
    fn float_rejected_everywhere() {
        for body in [
            "float r;",
            "x = 2.5;",
            "y = (double) x;",
            "z = sizeof(float);",
        ] {
            let src =
                format!("void PILocalGet(void) {{ HANDLER_DEFS(); HANDLER_PROLOGUE(); {body} }}");
            let r = check(&src);
            assert!(
                r.iter().any(|x| x.message.contains("floating point")),
                "no float report for `{body}`: {r:?}"
            );
        }
    }

    #[test]
    fn deprecated_macros_warned() {
        let r =
            check("void PILocalGet(void) { HANDLER_DEFS(); HANDLER_PROLOGUE(); OLD_WAIT_DB(a); }");
        assert!(r.iter().any(|x| x.message.contains("deprecated")));
    }

    const NO_STACK_OK: &str = r#"
        void PIFast(void) {
            HANDLER_DEFS();
            HANDLER_PROLOGUE();
            NO_STACK();
            int a;
            a = 1;
            SET_STACKPTR();
            other_handler();
        }
    "#;

    #[test]
    fn no_stack_clean() {
        assert!(check(NO_STACK_OK).is_empty());
    }

    #[test]
    fn no_stack_addr_of_local() {
        let r = check(
            r#"void PIFast(void) {
                HANDLER_DEFS(); HANDLER_PROLOGUE(); NO_STACK();
                int a;
                use_ptr(&a);
            }"#,
        );
        assert!(
            r.iter().any(|x| x.message.contains("address of local")),
            "{r:?}"
        );
    }

    #[test]
    fn no_stack_big_aggregate() {
        let r = check(
            r#"void PIFast(void) {
                HANDLER_DEFS(); HANDLER_PROLOGUE(); NO_STACK();
                int big[4];
            }"#,
        );
        assert!(r.iter().any(|x| x.message.contains("64 bits")), "{r:?}");
    }

    #[test]
    fn no_stack_too_many_locals() {
        let decls: String = (0..10).map(|i| format!("int v{i};")).collect();
        let src = format!(
            "void PIFast(void) {{ HANDLER_DEFS(); HANDLER_PROLOGUE(); NO_STACK(); {decls} }}"
        );
        let r = check(&src);
        assert!(r.iter().any(|x| x.message.contains("locals")), "{r:?}");
    }

    #[test]
    fn call_without_set_stackptr() {
        let r = check(
            r#"void PIFast(void) {
                HANDLER_DEFS(); HANDLER_PROLOGUE(); NO_STACK();
                other_handler();
            }"#,
        );
        assert!(
            r.iter()
                .any(|x| x.message.contains("without preceding SET_STACKPTR")),
            "{r:?}"
        );
    }

    #[test]
    fn spurious_set_stackptr() {
        let r = check(
            r#"void PIFast(void) {
                HANDLER_DEFS(); HANDLER_PROLOGUE(); NO_STACK();
                SET_STACKPTR();
                x = 1;
            }"#,
        );
        assert!(r.iter().any(|x| x.message.contains("spurious")), "{r:?}");
    }

    #[test]
    fn duplicate_no_stack() {
        let r = check(
            r#"void PIFast(void) {
                HANDLER_DEFS(); HANDLER_PROLOGUE(); NO_STACK();
                NO_STACK();
            }"#,
        );
        assert!(
            r.iter().any(|x| x.message.contains("more than one")),
            "{r:?}"
        );
    }

    #[test]
    fn misplaced_no_stack() {
        let r = check(
            r#"void PIFast(void) {
                HANDLER_DEFS(); HANDLER_PROLOGUE();
                x = 1;
                NO_STACK();
            }"#,
        );
        assert!(
            r.iter().any(|x| x.message.contains("directly follow")),
            "{r:?}"
        );
    }

    #[test]
    fn stackful_handlers_may_call_freely() {
        let r = check(
            r#"void PISlow(void) {
                HANDLER_DEFS(); HANDLER_PROLOGUE();
                other_handler();
            }"#,
        );
        assert!(r.is_empty(), "{r:?}");
    }

    #[test]
    fn routine_and_var_counting() {
        let tu = mc_ast::parse_translation_unit(
            "void a(int p) { int x; int y; }\nvoid b(void) { int z; }",
            "t.c",
        )
        .unwrap();
        let funcs: Vec<&Function> = tu.functions().collect();
        let (routines, vars) = count_routines_and_vars(&funcs);
        assert_eq!(routines, 2);
        assert_eq!(vars, 4); // p, x, y, z
    }
}
