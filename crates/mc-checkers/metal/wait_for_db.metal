{ #include "flash-includes.h" }

sm wait_for_db {
    /* Declare two variables 'addr' and 'buf' that can
     * match any integer expression. */
    decl { scalar } addr, buf;

    /* Checker begins in the first state (here 'start'). */
    start:
        /* The handler is allowed to read the data buffer
         * after calling 'WAIT_FOR_DB_FULL' --- once the
         * pattern below matches, we transition to the
         * 'stop' state, which stops checking on this
         * path. */
        { WAIT_FOR_DB_FULL(addr); } ==> stop

        /* If we hit a read of the data buffer in this
         * state, the handler did not do a WAIT_FOR_DB_FULL
         * first so emit an error and continue checking. */
      | { MISCBUS_READ_DB(addr, buf); } ==>
            { err("Buffer not synchronized"); }
    ;
}
