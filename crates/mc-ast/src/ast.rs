//! Abstract syntax tree for the C subset.
//!
//! The tree is deliberately plain: passive data with public fields, `Box`ed
//! children, and a [`Span`] on every node. Checkers and the metal pattern
//! matcher consume it read-only; the corpus generator builds it and prints
//! it back to text with [`crate::printer`].

use crate::token::Span;
use std::fmt;

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&`
    BitAnd,
    /// `^`
    BitXor,
    /// `|`
    BitOr,
    /// `&&`
    LogAnd,
    /// `||`
    LogOr,
}

impl BinaryOp {
    /// The C token for this operator.
    pub fn symbol(self) -> &'static str {
        use BinaryOp::*;
        match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            Shl => "<<",
            Shr => ">>",
            Lt => "<",
            Gt => ">",
            Le => "<=",
            Ge => ">=",
            Eq => "==",
            Ne => "!=",
            BitAnd => "&",
            BitXor => "^",
            BitOr => "|",
            LogAnd => "&&",
            LogOr => "||",
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A prefix unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `~`
    BitNot,
    /// `*`
    Deref,
    /// `&`
    AddrOf,
    /// `++` (prefix)
    PreInc,
    /// `--` (prefix)
    PreDec,
}

impl UnaryOp {
    /// The C token for this operator.
    pub fn symbol(self) -> &'static str {
        use UnaryOp::*;
        match self {
            Neg => "-",
            Not => "!",
            BitNot => "~",
            Deref => "*",
            AddrOf => "&",
            PreInc => "++",
            PreDec => "--",
        }
    }
}

/// A C type in the subset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void`
    Void,
    /// `char` / `short` / `int` / `long` with optional `unsigned`.
    Int {
        /// `true` for `unsigned` variants.
        unsigned: bool,
        /// Width keyword as written: "char", "short", "int", "long".
        width: &'static str,
    },
    /// `float`
    Float,
    /// `double`
    Double,
    /// `struct Name` (or `union Name`; the distinction does not matter to
    /// any checker, so unions are folded in with `is_union` set).
    Struct {
        /// Tag name.
        name: String,
        /// `true` when declared with `union`.
        is_union: bool,
    },
    /// `enum Name`
    Enum(String),
    /// A typedef name registered in the parser, e.g. `DirEntry`.
    Named(String),
    /// Pointer to another type.
    Ptr(Box<Type>),
    /// Fixed-size array. `None` for unsized `[]`.
    Array(Box<Type>, Option<i64>),
}

impl Type {
    /// Convenience constructor for plain `int`.
    pub fn int() -> Type {
        Type::Int {
            unsigned: false,
            width: "int",
        }
    }

    /// Convenience constructor for `unsigned`/`unsigned int`.
    pub fn unsigned() -> Type {
        Type::Int {
            unsigned: true,
            width: "int",
        }
    }

    /// Returns `true` if this type is, or contains, a floating-point type —
    /// the property the execution-restriction checker forbids in handlers.
    pub fn contains_float(&self) -> bool {
        match self {
            Type::Float | Type::Double => true,
            Type::Ptr(inner) | Type::Array(inner, _) => inner.contains_float(),
            _ => false,
        }
    }

    /// A conservative size in bits, used by the no-stack checker's
    /// "aggregates larger than 64 bits must not be declared" rule.
    /// Named/struct types are treated as large (128) since their layout is
    /// unknown without a full type environment.
    pub fn size_bits(&self) -> u64 {
        match self {
            Type::Void => 0,
            Type::Int { width, .. } => match *width {
                "char" => 8,
                "short" => 16,
                "long" => 64,
                _ => 32,
            },
            Type::Float => 32,
            Type::Double => 64,
            Type::Struct { .. } | Type::Named(_) => 128,
            Type::Enum(_) => 32,
            Type::Ptr(_) => 64,
            Type::Array(inner, len) => inner.size_bits() * len.unwrap_or(2).max(0) as u64,
        }
    }

    /// Returns `true` for scalar (integer/enum/pointer) types — the class
    /// matched by a metal `decl { scalar }` wildcard.
    pub fn is_scalar(&self) -> bool {
        matches!(
            self,
            Type::Int { .. } | Type::Enum(_) | Type::Ptr(_) | Type::Named(_)
        )
    }
}

/// Storage-class / qualifier flags on a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct StorageClass {
    /// `static`
    pub is_static: bool,
    /// `extern`
    pub is_extern: bool,
    /// `const`
    pub is_const: bool,
    /// `volatile`
    pub is_volatile: bool,
    /// `inline`
    pub is_inline: bool,
    /// `register`
    pub is_register: bool,
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// What kind of expression.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Creates an expression with a span.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }

    /// Creates an expression with a default (zero) span — handy in tests and
    /// in the corpus generator, where positions are assigned by printing and
    /// re-parsing.
    pub fn synth(kind: ExprKind) -> Self {
        Expr {
            kind,
            span: Span::default(),
        }
    }

    /// If this expression is a call to a named function/macro, returns the
    /// callee name and arguments. Checkers use this constantly: FLASH
    /// operations (`PI_SEND`, `WAIT_FOR_DB_FULL`, …) are all call forms.
    pub fn as_call(&self) -> Option<(&str, &[Expr])> {
        if let ExprKind::Call { callee, args } = &self.kind {
            if let ExprKind::Ident(name) = &callee.kind {
                return Some((name.as_str(), args.as_slice()));
            }
        }
        None
    }

    /// Returns the identifier name if this is a plain identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Ident(name) => Some(name),
            _ => None,
        }
    }
}

/// The different expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal (value, original text).
    IntLit(i64, String),
    /// Floating literal (value, original text).
    FloatLit(f64, String),
    /// Character literal.
    CharLit(char),
    /// String literal.
    StrLit(String),
    /// Identifier reference.
    Ident(String),
    /// Function or macro call: `callee(args...)`.
    Call {
        /// The called expression (almost always an identifier).
        callee: Box<Expr>,
        /// Arguments, in order.
        args: Vec<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Prefix unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Postfix `++` / `--`. `inc` is `true` for `++`.
    Postfix {
        /// Operand.
        operand: Box<Expr>,
        /// `true` for `++`, `false` for `--`.
        inc: bool,
    },
    /// Assignment. `op` is `None` for plain `=`, or the compound operator
    /// for `+=` etc.
    Assign {
        /// Compound operator, if any.
        op: Option<BinaryOp>,
        /// Assignment target.
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
    },
    /// Ternary conditional `cond ? then : els`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        els: Box<Expr>,
    },
    /// Array index `base[index]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Member access `base.field` (`arrow` false) or `base->field` (true).
    Member {
        /// Accessed expression.
        base: Box<Expr>,
        /// Field name.
        field: String,
        /// `true` for `->`.
        arrow: bool,
    },
    /// Cast `(type) expr`.
    Cast {
        /// Target type.
        ty: Type,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `sizeof(type)` or `sizeof expr` (only the type form is supported).
    SizeofType(Type),
    /// Comma expression `a, b`.
    Comma(Box<Expr>, Box<Expr>),
    /// A metal wildcard variable occurrence. Never produced when parsing
    /// plain C; only when parsing metal patterns, where `decl`-declared
    /// names become wildcards.
    Wildcard(String),
}

/// A local or global variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Declaration {
    /// Qualifiers.
    pub storage: StorageClass,
    /// Declared type (after applying pointer/array derivations).
    pub ty: Type,
    /// Variable name.
    pub name: String,
    /// Optional initializer.
    pub init: Option<Initializer>,
    /// Source location.
    pub span: Span,
}

/// An initializer: a single expression or a brace list.
#[derive(Debug, Clone, PartialEq)]
pub enum Initializer {
    /// `= expr`
    Expr(Expr),
    /// `= { a, b, ... }`
    List(Vec<Initializer>),
}

/// One `case`/`default` arm of a `switch`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchCase {
    /// `Some(expr)` for `case expr:`, `None` for `default:`.
    pub value: Option<Expr>,
    /// Statements in the arm (up to the next label), in order.
    pub body: Vec<Stmt>,
    /// Whether the arm ends without `break`/`return`/`continue`
    /// (falls through to the next arm).
    pub span: Span,
}

/// A statement node.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    /// What kind of statement.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

impl Stmt {
    /// Creates a statement with a span.
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }

    /// Creates a statement with a default span (tests / synthesis).
    pub fn synth(kind: StmtKind) -> Self {
        Stmt {
            kind,
            span: Span::default(),
        }
    }
}

/// The different statement forms.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// Expression statement `expr;`.
    Expr(Expr),
    /// Local declaration(s). One `Stmt` per declarator — the parser splits
    /// `int a, b;` into two nodes for simpler downstream handling.
    Decl(Declaration),
    /// Empty statement `;`.
    Empty,
    /// Block `{ ... }`.
    Block(Vec<Stmt>),
    /// `if (cond) then [else els]`.
    If {
        /// Condition.
        cond: Expr,
        /// True branch.
        then: Box<Stmt>,
        /// Optional false branch.
        els: Option<Box<Stmt>>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `do body while (cond);`.
    DoWhile {
        /// Loop body.
        body: Box<Stmt>,
        /// Loop condition.
        cond: Expr,
    },
    /// `for (init; cond; step) body`. All three headers optional; `init`
    /// may be a declaration or expression statement.
    For {
        /// Initializer.
        init: Option<Box<Stmt>>,
        /// Condition.
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `switch (scrutinee) { cases }`.
    Switch {
        /// Switched expression.
        scrutinee: Expr,
        /// The arms in order.
        cases: Vec<SwitchCase>,
    },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return;` or `return expr;`
    Return(Option<Expr>),
    /// `label:` (attached to the following statement).
    Label(String, Box<Stmt>),
    /// `goto label;`
    Goto(String),
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter type.
    pub ty: Type,
    /// Parameter name (empty for unnamed prototype parameters).
    pub name: String,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Qualifiers (`static`, `inline`, …).
    pub storage: StorageClass,
    /// Return type.
    pub return_type: Type,
    /// Function name.
    pub name: String,
    /// Parameters. An explicit `(void)` list parses as empty.
    pub params: Vec<Param>,
    /// The body block statements.
    pub body: Vec<Stmt>,
    /// Source location of the definition.
    pub span: Span,
}

impl Function {
    /// Returns `true` if this function takes no parameters and returns
    /// `void` — the required shape for FLASH handlers.
    pub fn is_handler_shaped(&self) -> bool {
        self.params.is_empty() && self.return_type == Type::Void
    }
}

/// A struct/union definition at file scope.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Tag name.
    pub name: String,
    /// `true` when declared with `union`.
    pub is_union: bool,
    /// Fields as (type, name).
    pub fields: Vec<(Type, String)>,
    /// Source location.
    pub span: Span,
}

/// A file-scope item other than a function definition.
#[derive(Debug, Clone, PartialEq)]
pub enum ExternalDecl {
    /// Global variable declaration.
    Var(Declaration),
    /// Function prototype (no body).
    Proto(Function),
    /// Struct/union definition.
    Struct(StructDef),
    /// `typedef existing NewName;`
    Typedef {
        /// The aliased type.
        ty: Type,
        /// The new name.
        name: String,
        /// Source location.
        span: Span,
    },
    /// `enum Name { A, B = 3, ... };` — constants recorded as names with
    /// optional explicit values.
    EnumDef {
        /// Tag name (may be empty for anonymous enums).
        name: String,
        /// Enumerators.
        variants: Vec<(String, Option<i64>)>,
        /// Source location.
        span: Span,
    },
}

/// A top-level item in a translation unit.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A function with a body.
    Function(Function),
    /// Everything else at file scope.
    Decl(ExternalDecl),
}

/// A parsed source file.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TranslationUnit {
    /// The file name used in diagnostics.
    pub file: String,
    /// Preprocessor lines, in order of appearance.
    pub preprocessor_lines: Vec<String>,
    /// All top-level items, in order.
    pub items: Vec<Item>,
}

impl TranslationUnit {
    /// Iterates over the function definitions in this unit.
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|item| match item {
            Item::Function(f) => Some(f),
            Item::Decl(_) => None,
        })
    }

    /// Finds a function definition by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_float_detection() {
        assert!(Type::Float.contains_float());
        assert!(Type::Ptr(Box::new(Type::Double)).contains_float());
        assert!(Type::Array(Box::new(Type::Float), Some(4)).contains_float());
        assert!(!Type::int().contains_float());
        assert!(!Type::Ptr(Box::new(Type::Void)).contains_float());
    }

    #[test]
    fn type_sizes() {
        assert_eq!(Type::int().size_bits(), 32);
        assert_eq!(Type::Array(Box::new(Type::int()), Some(4)).size_bits(), 128);
        assert_eq!(Type::Ptr(Box::new(Type::Void)).size_bits(), 64);
    }

    #[test]
    fn scalar_classification() {
        assert!(Type::unsigned().is_scalar());
        assert!(Type::Ptr(Box::new(Type::int())).is_scalar());
        assert!(!Type::Void.is_scalar());
        assert!(!Type::Struct {
            name: "S".into(),
            is_union: false
        }
        .is_scalar());
    }

    #[test]
    fn expr_as_call() {
        let call = Expr::synth(ExprKind::Call {
            callee: Box::new(Expr::synth(ExprKind::Ident("PI_SEND".into()))),
            args: vec![Expr::synth(ExprKind::Ident("F_DATA".into()))],
        });
        let (name, args) = call.as_call().unwrap();
        assert_eq!(name, "PI_SEND");
        assert_eq!(args.len(), 1);
        assert!(Expr::synth(ExprKind::IntLit(1, "1".into()))
            .as_call()
            .is_none());
    }

    #[test]
    fn handler_shape() {
        let f = Function {
            storage: StorageClass::default(),
            return_type: Type::Void,
            name: "H".into(),
            params: vec![],
            body: vec![],
            span: Span::default(),
        };
        assert!(f.is_handler_shaped());
        let g = Function {
            return_type: Type::int(),
            ..f.clone()
        };
        assert!(!g.is_handler_shaped());
    }

    #[test]
    fn translation_unit_lookup() {
        let mut tu = TranslationUnit::default();
        tu.items.push(Item::Function(Function {
            storage: StorageClass::default(),
            return_type: Type::Void,
            name: "PILocalGet".into(),
            params: vec![],
            body: vec![],
            span: Span::default(),
        }));
        assert!(tu.function("PILocalGet").is_some());
        assert!(tu.function("missing").is_none());
        assert_eq!(tu.functions().count(), 1);
    }
}
