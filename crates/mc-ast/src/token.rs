//! Tokens and source spans.

use mc_json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// A location range in a source file.
///
/// Spans are attached to every AST node so that checker reports can point at
/// the exact line of protocol code that violates a rule — the paper stresses
/// that MC checkers "exactly locate errors" that would otherwise take days of
/// debugging to find.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Span {
    /// 1-based line of the first token.
    pub line: u32,
    /// 1-based column of the first token.
    pub col: u32,
}

impl ToJson for Span {
    fn to_json(&self) -> Json {
        mc_json::object(vec![
            ("line", self.line.to_json()),
            ("col", self.col.to_json()),
        ])
    }
}

impl FromJson for Span {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Span {
            line: mc_json::field(v, "line")?,
            col: mc_json::field(v, "col")?,
        })
    }
}

impl Span {
    /// Creates a span at the given line and column (both 1-based).
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword-candidate (keywords are distinguished by the
    /// parser via `is_keyword` helpers).
    Ident(String),
    /// Integer literal. The original text is kept for exact re-printing of
    /// hex constants such as `0x8000`.
    Int(i64, String),
    /// Floating-point literal (disallowed by FLASH rules, but the lexer must
    /// accept it so the execution-restriction checker can flag it).
    Float(f64, String),
    /// Character literal, e.g. `'a'`.
    Char(char),
    /// String literal (unescaped contents).
    Str(String),
    /// Punctuation or operator, e.g. `"=="`, `"{"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the identifier text if this token is an identifier.
    pub fn as_ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Returns `true` if this token is the given punctuation string.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, TokenKind::Punct(q) if *q == p)
    }

    /// Returns `true` if this token is the given keyword/identifier.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s == kw)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(_, text) => write!(f, "{text}"),
            TokenKind::Float(_, text) => write!(f, "{text}"),
            TokenKind::Char(c) => write!(f, "'{c}'"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::Punct(p) => write!(f, "{p}"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Where the token starts.
    pub span: Span,
}

impl Token {
    /// Creates a token.
    pub fn new(kind: TokenKind, span: Span) -> Self {
        Token { kind, span }
    }
}

/// The C keywords recognized by the parser.
///
/// `metal` wildcard declarations extend this set on the pattern-parsing side
/// only; the core language set is fixed.
pub const KEYWORDS: &[&str] = &[
    "void", "int", "char", "long", "short", "unsigned", "signed", "float", "double", "struct",
    "union", "enum", "typedef", "static", "extern", "const", "volatile", "inline", "register",
    "if", "else", "while", "do", "for", "switch", "case", "default", "break", "continue", "return",
    "goto", "sizeof",
];

/// Returns `true` if `s` is a reserved C keyword in this subset.
pub fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Returns `true` if `s` starts a type in this subset (type-specifier
/// keywords; typedef names are tracked separately by the parser).
pub fn is_type_keyword(s: &str) -> bool {
    matches!(
        s,
        "void"
            | "int"
            | "char"
            | "long"
            | "short"
            | "unsigned"
            | "signed"
            | "float"
            | "double"
            | "struct"
            | "union"
            | "enum"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_display() {
        assert_eq!(Span::new(3, 7).to_string(), "3:7");
    }

    #[test]
    fn keyword_classification() {
        assert!(is_keyword("while"));
        assert!(!is_keyword("WAIT_FOR_DB_FULL"));
        assert!(is_type_keyword("unsigned"));
        assert!(!is_type_keyword("return"));
    }

    #[test]
    fn token_kind_helpers() {
        let t = TokenKind::Punct("==");
        assert!(t.is_punct("=="));
        assert!(!t.is_punct("="));
        let id = TokenKind::Ident("foo".into());
        assert_eq!(id.as_ident(), Some("foo"));
        assert!(id.is_kw("foo"));
    }

    #[test]
    fn token_display_roundtrip() {
        assert_eq!(TokenKind::Int(255, "0xff".into()).to_string(), "0xff");
        assert_eq!(TokenKind::Str("hi".into()).to_string(), "\"hi\"");
    }
}
