//! Recursive-descent parser for the C subset.
//!
//! The grammar is classic C89 minus the features FLASH protocol code never
//! uses (K&R declarations, bitfields, function pointers in full generality).
//! Two extensions matter to the rest of the workspace:
//!
//! * **Typedef tracking** — `typedef` items register names so later
//!   declarations can use them; callers may also pre-register names with
//!   [`Parser::add_typedef`] (the driver does this with the FLASH header
//!   types, mirroring how xg++ saw the real headers).
//! * **Wildcards** — when constructed with [`Parser::with_wildcards`],
//!   identifiers in the given set parse as [`ExprKind::Wildcard`]. The metal
//!   pattern compiler uses this so patterns are "written in the base
//!   language", exactly as the paper describes.

use crate::ast::*;
use crate::lexer::Lexer;
use crate::token::{is_type_keyword, Span, Token, TokenKind};
use std::collections::HashSet;
use std::fmt;

/// An error produced while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Location of the offending token.
    pub span: Span,
    /// File the error occurred in (empty when parsing fragments).
    pub file: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.file.is_empty() {
            write!(f, "parse error at {}: {}", self.span, self.message)
        } else {
            write!(
                f,
                "{}:{}: parse error: {}",
                self.file, self.span, self.message
            )
        }
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lexer::LexError> for ParseError {
    fn from(e: crate::lexer::LexError) -> Self {
        ParseError {
            message: e.message,
            span: e.span,
            file: String::new(),
        }
    }
}

/// Parses a complete source file.
///
/// # Errors
///
/// Returns [`ParseError`] on the first syntax error.
pub fn parse_translation_unit(src: &str, file: &str) -> Result<TranslationUnit, ParseError> {
    let (tokens, pp) = Lexer::new(src).tokenize().map_err(|e| ParseError {
        file: file.to_string(),
        ..ParseError::from(e)
    })?;
    let mut parser = Parser::new(tokens, file);
    parser.preprocessor_lines = pp;
    parser.translation_unit()
}

/// Parses a single expression (used for metal patterns and tests).
///
/// # Errors
///
/// Returns [`ParseError`] if `src` is not exactly one expression.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let (tokens, _) = Lexer::new(src).tokenize()?;
    let mut parser = Parser::new(tokens, "");
    let e = parser.expr()?;
    parser.expect_eof()?;
    Ok(e)
}

/// Parses a single statement (used for metal patterns and tests).
///
/// # Errors
///
/// Returns [`ParseError`] if `src` is not exactly one statement.
pub fn parse_stmt(src: &str) -> Result<Stmt, ParseError> {
    let (tokens, _) = Lexer::new(src).tokenize()?;
    let mut parser = Parser::new(tokens, "");
    let s = parser.stmt()?;
    parser.expect_eof()?;
    Ok(s)
}

/// The parser state.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    file: String,
    typedefs: HashSet<String>,
    wildcards: HashSet<String>,
    /// Preprocessor lines captured by the lexer, stored into the resulting
    /// [`TranslationUnit`].
    pub preprocessor_lines: Vec<String>,
}

impl Parser {
    /// Creates a parser over a token stream.
    pub fn new(tokens: Vec<Token>, file: &str) -> Self {
        Parser {
            tokens,
            pos: 0,
            file: file.to_string(),
            typedefs: HashSet::new(),
            wildcards: HashSet::new(),
            preprocessor_lines: Vec::new(),
        }
    }

    /// Creates a parser whose identifiers in `wildcards` parse as
    /// [`ExprKind::Wildcard`] — the mechanism behind metal `decl` variables.
    pub fn with_wildcards(tokens: Vec<Token>, wildcards: HashSet<String>) -> Self {
        Parser {
            wildcards,
            ..Parser::new(tokens, "")
        }
    }

    /// Registers a typedef name so subsequent declarations can use it.
    pub fn add_typedef(&mut self, name: &str) {
        self.typedefs.insert(name.to_string());
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            span: self.peek_span(),
            file: self.file.clone(),
        })
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek().is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found `{}`", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            TokenKind::Ident(s) if !crate::token::is_keyword(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        // Allow one trailing semicolon in fragments.
        self.eat_punct(";");
        if *self.peek() == TokenKind::Eof {
            Ok(())
        } else {
            self.err(format!("expected end of input, found `{}`", self.peek()))
        }
    }

    // ----- types and declarations -------------------------------------

    fn at_type(&self) -> bool {
        match self.peek() {
            TokenKind::Ident(s) => {
                is_type_keyword(s)
                    || self.typedefs.contains(s)
                    || matches!(
                        s.as_str(),
                        "static" | "extern" | "const" | "volatile" | "inline" | "register"
                    )
            }
            _ => false,
        }
    }

    fn storage_class(&mut self) -> StorageClass {
        let mut sc = StorageClass::default();
        while let TokenKind::Ident(word) = self.peek() {
            match word.as_str() {
                "static" => sc.is_static = true,
                "extern" => sc.is_extern = true,
                "const" => sc.is_const = true,
                "volatile" => sc.is_volatile = true,
                "inline" => sc.is_inline = true,
                "register" => sc.is_register = true,
                _ => break,
            }
            self.bump();
        }
        sc
    }

    /// Parses a type specifier (no declarator): `unsigned long`,
    /// `struct Foo`, a typedef name, etc.
    fn type_specifier(&mut self) -> Result<Type, ParseError> {
        if self.eat_kw("void") {
            return Ok(self.pointered(Type::Void));
        }
        if self.eat_kw("float") {
            return Ok(self.pointered(Type::Float));
        }
        if self.eat_kw("double") {
            return Ok(self.pointered(Type::Double));
        }
        if self.eat_kw("struct") || {
            if self.peek().is_kw("union") {
                self.bump();
                let name = self.expect_ident()?;
                return Ok(self.pointered(Type::Struct {
                    name,
                    is_union: true,
                }));
            }
            false
        } {
            let name = self.expect_ident()?;
            return Ok(self.pointered(Type::Struct {
                name,
                is_union: false,
            }));
        }
        if self.eat_kw("enum") {
            let name = self.expect_ident()?;
            return Ok(self.pointered(Type::Enum(name)));
        }
        // Integer family: any sequence of signed/unsigned/char/short/int/long.
        let mut unsigned = false;
        let mut width: Option<&'static str> = None;
        let mut saw_int_kw = false;
        while let TokenKind::Ident(word) = self.peek() {
            match word.as_str() {
                "unsigned" => {
                    unsigned = true;
                    saw_int_kw = true;
                }
                "signed" => {
                    saw_int_kw = true;
                }
                "char" => {
                    width = Some("char");
                    saw_int_kw = true;
                }
                "short" => {
                    width = Some("short");
                    saw_int_kw = true;
                }
                "long" => {
                    width = Some("long");
                    saw_int_kw = true;
                }
                "int" => {
                    width = width.or(Some("int"));
                    saw_int_kw = true;
                }
                _ => break,
            }
            self.bump();
        }
        if saw_int_kw {
            return Ok(self.pointered(Type::Int {
                unsigned,
                width: width.unwrap_or("int"),
            }));
        }
        // Typedef name.
        if let TokenKind::Ident(s) = self.peek() {
            if self.typedefs.contains(s) {
                let name = s.clone();
                self.bump();
                return Ok(self.pointered(Type::Named(name)));
            }
        }
        self.err(format!("expected type, found `{}`", self.peek()))
    }

    fn pointered(&mut self, mut ty: Type) -> Type {
        while self.peek().is_punct("*") {
            self.bump();
            // `const` after `*` is allowed and ignored.
            while self.eat_kw("const") || self.eat_kw("volatile") {}
            ty = Type::Ptr(Box::new(ty));
        }
        ty
    }

    /// Parses array suffixes on a declarator: `x[10][2]`.
    fn array_suffixes(&mut self, mut ty: Type) -> Result<Type, ParseError> {
        let mut dims = Vec::new();
        while self.eat_punct("[") {
            if self.eat_punct("]") {
                dims.push(None);
            } else {
                let e = self.expr()?;
                let n = const_eval(&e);
                self.expect_punct("]")?;
                dims.push(n);
            }
        }
        for d in dims.into_iter().rev() {
            ty = Type::Array(Box::new(ty), d);
        }
        Ok(ty)
    }

    // ----- top level ----------------------------------------------------

    /// Parses the whole token stream as a translation unit.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on the first syntax error.
    pub fn translation_unit(&mut self) -> Result<TranslationUnit, ParseError> {
        let mut items = Vec::new();
        while *self.peek() != TokenKind::Eof {
            items.push(self.external_item()?);
        }
        Ok(TranslationUnit {
            file: self.file.clone(),
            preprocessor_lines: std::mem::take(&mut self.preprocessor_lines),
            items,
        })
    }

    fn external_item(&mut self) -> Result<Item, ParseError> {
        let span = self.peek_span();
        // typedef
        if self.peek().is_kw("typedef") {
            self.bump();
            let ty = self.type_specifier()?;
            let name = self.expect_ident()?;
            let ty = self.array_suffixes(ty)?;
            self.expect_punct(";")?;
            self.typedefs.insert(name.clone());
            return Ok(Item::Decl(ExternalDecl::Typedef { ty, name, span }));
        }
        // struct/union definition `struct S { ... };`
        if (self.peek().is_kw("struct") || self.peek().is_kw("union"))
            && self.peek_at(2).is_punct("{")
        {
            let is_union = self.peek().is_kw("union");
            self.bump();
            let name = self.expect_ident()?;
            self.expect_punct("{")?;
            let mut fields = Vec::new();
            while !self.eat_punct("}") {
                let _sc = self.storage_class();
                let base = self.type_specifier()?;
                loop {
                    let fname = self.expect_ident()?;
                    let fty = self.array_suffixes(base.clone())?;
                    fields.push((fty, fname));
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(";")?;
            }
            self.expect_punct(";")?;
            return Ok(Item::Decl(ExternalDecl::Struct(StructDef {
                name,
                is_union,
                fields,
                span,
            })));
        }
        // enum definition `enum E { ... };`
        if self.peek().is_kw("enum") && self.peek_at(2).is_punct("{") {
            self.bump();
            let name = self.expect_ident()?;
            self.expect_punct("{")?;
            let mut variants = Vec::new();
            while !self.eat_punct("}") {
                let vname = self.expect_ident()?;
                let value = if self.eat_punct("=") {
                    // Not `expr()`: a comma here separates enumerators.
                    let e = self.assignment_expr()?;
                    const_eval(&e)
                } else {
                    None
                };
                variants.push((vname, value));
                if !self.eat_punct(",") {
                    // allow trailing `}` after last variant
                    self.expect_punct("}")?;
                    break;
                }
            }
            self.expect_punct(";")?;
            return Ok(Item::Decl(ExternalDecl::EnumDef {
                name,
                variants,
                span,
            }));
        }

        let storage = self.storage_class();
        let base = self.type_specifier()?;
        let name = self.expect_ident()?;

        if self.peek().is_punct("(") {
            // Function definition or prototype.
            self.bump();
            let params = self.param_list()?;
            self.expect_punct(")")?;
            let func = Function {
                storage,
                return_type: base,
                name,
                params,
                body: Vec::new(),
                span,
            };
            if self.eat_punct(";") {
                return Ok(Item::Decl(ExternalDecl::Proto(func)));
            }
            self.expect_punct("{")?;
            let body = self.block_body()?;
            return Ok(Item::Function(Function { body, ..func }));
        }

        // Global variable (only the first declarator may be followed by
        // others, which we split into separate items is unnecessary at file
        // scope — FLASH globals are one per line; keep the first and require
        // `;` or `= init ;`).
        let ty = self.array_suffixes(base)?;
        let init = if self.eat_punct("=") {
            Some(self.initializer()?)
        } else {
            None
        };
        self.expect_punct(";")?;
        Ok(Item::Decl(ExternalDecl::Var(Declaration {
            storage,
            ty,
            name,
            init,
            span,
        })))
    }

    fn param_list(&mut self) -> Result<Vec<Param>, ParseError> {
        let mut params = Vec::new();
        if self.peek().is_punct(")") {
            return Ok(params);
        }
        if self.peek().is_kw("void") && self.peek_at(1).is_punct(")") {
            self.bump();
            return Ok(params);
        }
        loop {
            let _sc = self.storage_class();
            let base = self.type_specifier()?;
            let name = match self.peek() {
                TokenKind::Ident(s) if !crate::token::is_keyword(s) => {
                    let n = s.clone();
                    self.bump();
                    n
                }
                _ => String::new(),
            };
            let ty = self.array_suffixes(base)?;
            params.push(Param { ty, name });
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(params)
    }

    fn initializer(&mut self) -> Result<Initializer, ParseError> {
        if self.eat_punct("{") {
            let mut list = Vec::new();
            while !self.eat_punct("}") {
                list.push(self.initializer()?);
                if !self.eat_punct(",") {
                    self.expect_punct("}")?;
                    break;
                }
            }
            Ok(Initializer::List(list))
        } else {
            Ok(Initializer::Expr(self.assignment_expr()?))
        }
    }

    // ----- statements ---------------------------------------------------

    fn block_body(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if *self.peek() == TokenKind::Eof {
                return self.err("unexpected end of file inside block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    /// Parses one statement.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed input.
    pub fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.peek_span();
        // Label: `ident :` not followed by another colon-ish construct.
        if let TokenKind::Ident(s) = self.peek() {
            if !crate::token::is_keyword(s) && self.peek_at(1).is_punct(":") {
                let label = s.clone();
                self.bump();
                self.bump();
                let inner = self.stmt()?;
                return Ok(Stmt::new(StmtKind::Label(label, Box::new(inner)), span));
            }
        }
        if self.eat_punct(";") {
            return Ok(Stmt::new(StmtKind::Empty, span));
        }
        if self.eat_punct("{") {
            let body = self.block_body()?;
            return Ok(Stmt::new(StmtKind::Block(body), span));
        }
        if self.eat_kw("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = Box::new(self.stmt()?);
            let els = if self.eat_kw("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::new(StmtKind::If { cond, then, els }, span));
        }
        if self.eat_kw("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt::new(StmtKind::While { cond, body }, span));
        }
        if self.eat_kw("do") {
            let body = Box::new(self.stmt()?);
            if !self.eat_kw("while") {
                return self.err("expected `while` after `do` body");
            }
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::new(StmtKind::DoWhile { body, cond }, span));
        }
        if self.eat_kw("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else if self.at_type() {
                Some(Box::new(self.decl_stmt()?))
            } else {
                let e = self.expr()?;
                self.expect_punct(";")?;
                Some(Box::new(Stmt::new(StmtKind::Expr(e), span)))
            };
            let cond = if self.peek().is_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let step = if self.peek().is_punct(")") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(")")?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt::new(
                StmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                },
                span,
            ));
        }
        if self.eat_kw("switch") {
            self.expect_punct("(")?;
            let scrutinee = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct("{")?;
            let mut cases = Vec::new();
            while !self.eat_punct("}") {
                let case_span = self.peek_span();
                let value = if self.eat_kw("case") {
                    let e = self.expr()?;
                    self.expect_punct(":")?;
                    Some(e)
                } else if self.eat_kw("default") {
                    self.expect_punct(":")?;
                    None
                } else {
                    return self.err("expected `case` or `default` in switch body");
                };
                let mut body = Vec::new();
                while !self.peek().is_kw("case")
                    && !self.peek().is_kw("default")
                    && !self.peek().is_punct("}")
                {
                    if *self.peek() == TokenKind::Eof {
                        return self.err("unexpected end of file inside switch");
                    }
                    body.push(self.stmt()?);
                }
                cases.push(SwitchCase {
                    value,
                    body,
                    span: case_span,
                });
            }
            return Ok(Stmt::new(StmtKind::Switch { scrutinee, cases }, span));
        }
        if self.eat_kw("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::new(StmtKind::Break, span));
        }
        if self.eat_kw("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::new(StmtKind::Continue, span));
        }
        if self.eat_kw("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::new(StmtKind::Return(None), span));
            }
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::new(StmtKind::Return(Some(e)), span));
        }
        if self.eat_kw("goto") {
            let label = self.expect_ident()?;
            self.expect_punct(";")?;
            return Ok(Stmt::new(StmtKind::Goto(label), span));
        }
        if self.at_type() {
            return self.decl_stmt();
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::new(StmtKind::Expr(e), span))
    }

    /// Parses a local declaration statement. Multiple declarators become a
    /// block of single-declaration statements.
    fn decl_stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.peek_span();
        let storage = self.storage_class();
        let base = self.type_specifier()?;
        let mut decls = Vec::new();
        loop {
            // Each declarator may add its own pointer stars.
            let mut ty = base.clone();
            while self.eat_punct("*") {
                ty = Type::Ptr(Box::new(ty));
            }
            let name = self.expect_ident()?;
            let ty = self.array_suffixes(ty)?;
            let init = if self.eat_punct("=") {
                Some(self.initializer()?)
            } else {
                None
            };
            decls.push(Stmt::new(
                StmtKind::Decl(Declaration {
                    storage,
                    ty,
                    name,
                    init,
                    span,
                }),
                span,
            ));
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(";")?;
        if decls.len() == 1 {
            Ok(decls.pop().expect("one declaration"))
        } else {
            Ok(Stmt::new(StmtKind::Block(decls), span))
        }
    }

    // ----- expressions ----------------------------------------------------

    /// Parses a full (comma-level) expression.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed input.
    pub fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.assignment_expr()?;
        while self.peek().is_punct(",") {
            // Comma only binds inside parens/statements; call-argument
            // parsing never enters here.
            let span = self.peek_span();
            self.bump();
            let rhs = self.assignment_expr()?;
            e = Expr::new(ExprKind::Comma(Box::new(e), Box::new(rhs)), span);
        }
        Ok(e)
    }

    fn assignment_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.ternary_expr()?;
        let op = match self.peek() {
            TokenKind::Punct("=") => None,
            TokenKind::Punct("+=") => Some(BinaryOp::Add),
            TokenKind::Punct("-=") => Some(BinaryOp::Sub),
            TokenKind::Punct("*=") => Some(BinaryOp::Mul),
            TokenKind::Punct("/=") => Some(BinaryOp::Div),
            TokenKind::Punct("%=") => Some(BinaryOp::Rem),
            TokenKind::Punct("&=") => Some(BinaryOp::BitAnd),
            TokenKind::Punct("|=") => Some(BinaryOp::BitOr),
            TokenKind::Punct("^=") => Some(BinaryOp::BitXor),
            TokenKind::Punct("<<=") => Some(BinaryOp::Shl),
            TokenKind::Punct(">>=") => Some(BinaryOp::Shr),
            _ => return Ok(lhs),
        };
        let span = self.peek_span();
        self.bump();
        let rhs = self.assignment_expr()?;
        Ok(Expr::new(
            ExprKind::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        ))
    }

    fn ternary_expr(&mut self) -> Result<Expr, ParseError> {
        let cond = self.binary_expr(0)?;
        if self.eat_punct("?") {
            let span = cond.span;
            let then = self.expr()?;
            self.expect_punct(":")?;
            let els = self.assignment_expr()?;
            return Ok(Expr::new(
                ExprKind::Ternary {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                },
                span,
            ));
        }
        Ok(cond)
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                TokenKind::Punct("||") => (BinaryOp::LogOr, 1),
                TokenKind::Punct("&&") => (BinaryOp::LogAnd, 2),
                TokenKind::Punct("|") => (BinaryOp::BitOr, 3),
                TokenKind::Punct("^") => (BinaryOp::BitXor, 4),
                TokenKind::Punct("&") => (BinaryOp::BitAnd, 5),
                TokenKind::Punct("==") => (BinaryOp::Eq, 6),
                TokenKind::Punct("!=") => (BinaryOp::Ne, 6),
                TokenKind::Punct("<") => (BinaryOp::Lt, 7),
                TokenKind::Punct(">") => (BinaryOp::Gt, 7),
                TokenKind::Punct("<=") => (BinaryOp::Le, 7),
                TokenKind::Punct(">=") => (BinaryOp::Ge, 7),
                TokenKind::Punct("<<") => (BinaryOp::Shl, 8),
                TokenKind::Punct(">>") => (BinaryOp::Shr, 8),
                TokenKind::Punct("+") => (BinaryOp::Add, 9),
                TokenKind::Punct("-") => (BinaryOp::Sub, 9),
                TokenKind::Punct("*") => (BinaryOp::Mul, 10),
                TokenKind::Punct("/") => (BinaryOp::Div, 10),
                TokenKind::Punct("%") => (BinaryOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let span = self.peek_span();
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek_span();
        let op = match self.peek() {
            TokenKind::Punct("-") => Some(UnaryOp::Neg),
            TokenKind::Punct("!") => Some(UnaryOp::Not),
            TokenKind::Punct("~") => Some(UnaryOp::BitNot),
            TokenKind::Punct("*") => Some(UnaryOp::Deref),
            TokenKind::Punct("&") => Some(UnaryOp::AddrOf),
            TokenKind::Punct("++") => Some(UnaryOp::PreInc),
            TokenKind::Punct("--") => Some(UnaryOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let operand = self.unary_expr()?;
            return Ok(Expr::new(
                ExprKind::Unary {
                    op,
                    operand: Box::new(operand),
                },
                span,
            ));
        }
        if self.peek().is_kw("sizeof") {
            self.bump();
            self.expect_punct("(")?;
            let ty = self.type_specifier()?;
            self.expect_punct(")")?;
            return Ok(Expr::new(ExprKind::SizeofType(ty), span));
        }
        // Cast: `(` type `)` unary — only when what follows `(` is a type.
        if self.peek().is_punct("(") && self.lookahead_is_type() {
            self.bump();
            let ty = self.type_specifier()?;
            self.expect_punct(")")?;
            let inner = self.unary_expr()?;
            return Ok(Expr::new(
                ExprKind::Cast {
                    ty,
                    expr: Box::new(inner),
                },
                span,
            ));
        }
        self.postfix_expr()
    }

    fn lookahead_is_type(&self) -> bool {
        match self.peek_at(1) {
            TokenKind::Ident(s) => is_type_keyword(s) || self.typedefs.contains(s),
            _ => false,
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        loop {
            let span = self.peek_span();
            if self.eat_punct("(") {
                let mut args = Vec::new();
                if !self.peek().is_punct(")") {
                    loop {
                        args.push(self.assignment_expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                }
                self.expect_punct(")")?;
                e = Expr::new(
                    ExprKind::Call {
                        callee: Box::new(e),
                        args,
                    },
                    span,
                );
            } else if self.eat_punct("[") {
                let index = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::new(
                    ExprKind::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                    },
                    span,
                );
            } else if self.eat_punct(".") {
                let field = self.expect_ident()?;
                e = Expr::new(
                    ExprKind::Member {
                        base: Box::new(e),
                        field,
                        arrow: false,
                    },
                    span,
                );
            } else if self.eat_punct("->") {
                let field = self.expect_ident()?;
                e = Expr::new(
                    ExprKind::Member {
                        base: Box::new(e),
                        field,
                        arrow: true,
                    },
                    span,
                );
            } else if self.eat_punct("++") {
                e = Expr::new(
                    ExprKind::Postfix {
                        operand: Box::new(e),
                        inc: true,
                    },
                    span,
                );
            } else if self.eat_punct("--") {
                e = Expr::new(
                    ExprKind::Postfix {
                        operand: Box::new(e),
                        inc: false,
                    },
                    span,
                );
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        let span = self.peek_span();
        match self.bump() {
            TokenKind::Int(v, text) => Ok(Expr::new(ExprKind::IntLit(v, text), span)),
            TokenKind::Float(v, text) => Ok(Expr::new(ExprKind::FloatLit(v, text), span)),
            TokenKind::Char(c) => Ok(Expr::new(ExprKind::CharLit(c), span)),
            TokenKind::Str(s) => Ok(Expr::new(ExprKind::StrLit(s), span)),
            TokenKind::Ident(name) => {
                if crate::token::is_keyword(&name) {
                    return self.err(format!("unexpected keyword `{name}` in expression"));
                }
                if self.wildcards.contains(&name) {
                    Ok(Expr::new(ExprKind::Wildcard(name), span))
                } else {
                    Ok(Expr::new(ExprKind::Ident(name), span))
                }
            }
            TokenKind::Punct("(") => {
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found `{other}`")),
        }
    }
}

/// Best-effort constant evaluation for array dimensions and enum values.
fn const_eval(e: &Expr) -> Option<i64> {
    match &e.kind {
        ExprKind::IntLit(v, _) => Some(*v),
        ExprKind::Unary {
            op: UnaryOp::Neg,
            operand,
        } => const_eval(operand).map(|v| -v),
        ExprKind::Binary { op, lhs, rhs } => {
            let l = const_eval(lhs)?;
            let r = const_eval(rhs)?;
            match op {
                BinaryOp::Add => Some(l + r),
                BinaryOp::Sub => Some(l - r),
                BinaryOp::Mul => Some(l * r),
                BinaryOp::Div => (r != 0).then(|| l / r),
                BinaryOp::Shl => Some(l << (r & 63)),
                BinaryOp::Shr => Some(l >> (r & 63)),
                BinaryOp::BitOr => Some(l | r),
                BinaryOp::BitAnd => Some(l & r),
                BinaryOp::BitXor => Some(l ^ r),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_function() {
        let tu = parse_translation_unit("void PILocalGet(void) { int x; x = 1 + 2 * 3; }", "t.c")
            .unwrap();
        let f = tu.function("PILocalGet").unwrap();
        assert!(f.is_handler_shaped());
        assert_eq!(f.body.len(), 2);
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::Binary {
                op: BinaryOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(
                    rhs.kind,
                    ExprKind::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn assignment_right_associative() {
        let e = parse_expr("a = b = 1").unwrap();
        match e.kind {
            ExprKind::Assign { rhs, .. } => {
                assert!(matches!(rhs.kind, ExprKind::Assign { .. }));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn flash_macro_call_forms() {
        let e = parse_expr("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA").unwrap();
        match e.kind {
            ExprKind::Assign { lhs, rhs, .. } => {
                let (callee, args) = lhs.as_call().unwrap();
                assert_eq!(callee, "HANDLER_GLOBALS");
                assert!(matches!(&args[0].kind, ExprKind::Member { .. }));
                assert_eq!(rhs.as_ident(), Some("LEN_NODATA"));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn if_else_chain() {
        let s = parse_stmt("if (a) { f(); } else if (b) g(); else h();").unwrap();
        match s.kind {
            StmtKind::If { els, .. } => {
                assert!(matches!(els.unwrap().kind, StmtKind::If { .. }));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn switch_statement() {
        let s =
            parse_stmt("switch (op) { case 1: f(); break; case 2: default: g(); break; }").unwrap();
        match s.kind {
            StmtKind::Switch { cases, .. } => {
                assert_eq!(cases.len(), 3);
                assert!(cases[0].value.is_some());
                assert!(cases[1].body.is_empty()); // fallthrough case
                assert!(cases[2].value.is_none());
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn loops() {
        assert!(matches!(
            parse_stmt("while (x) x--;").unwrap().kind,
            StmtKind::While { .. }
        ));
        assert!(matches!(
            parse_stmt("do { x--; } while (x);").unwrap().kind,
            StmtKind::DoWhile { .. }
        ));
        assert!(matches!(
            parse_stmt("for (i = 0; i < 10; i++) f(i);").unwrap().kind,
            StmtKind::For { .. }
        ));
        assert!(matches!(
            parse_stmt("for (int i = 0; i < 10; i++) f(i);")
                .unwrap()
                .kind,
            StmtKind::For { .. }
        ));
    }

    #[test]
    fn multi_declarator_splits() {
        let s = parse_stmt("int a, b = 2;").unwrap();
        match s.kind {
            StmtKind::Block(decls) => {
                assert_eq!(decls.len(), 2);
                assert!(matches!(&decls[1].kind, StmtKind::Decl(d) if d.init.is_some()));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn struct_definition_and_use() {
        let tu = parse_translation_unit(
            "struct Dir { unsigned state; unsigned vector[4]; };\n\
             struct Dir gDir;\n\
             void h(void) { struct Dir* d; d = &gDir; d->state = 1; }",
            "t.c",
        )
        .unwrap();
        assert_eq!(tu.items.len(), 3);
    }

    #[test]
    fn typedefs_enable_named_types() {
        let tu = parse_translation_unit(
            "typedef unsigned long DirEntry;\nvoid h(void) { DirEntry e; e = 0; }",
            "t.c",
        )
        .unwrap();
        let f = tu.function("h").unwrap();
        assert!(matches!(
            &f.body[0].kind,
            StmtKind::Decl(d) if d.ty == Type::Named("DirEntry".into())
        ));
    }

    #[test]
    fn enum_definition() {
        let tu = parse_translation_unit("enum State { IDLE, BUSY = 5, DONE };", "t.c").unwrap();
        match &tu.items[0] {
            Item::Decl(ExternalDecl::EnumDef { variants, .. }) => {
                assert_eq!(variants.len(), 3);
                assert_eq!(variants[1], ("BUSY".into(), Some(5)));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn casts_and_sizeof() {
        let e = parse_expr("(unsigned) sizeof(struct Dir)").unwrap();
        assert!(matches!(e.kind, ExprKind::Cast { .. }));
    }

    #[test]
    fn cast_vs_paren_disambiguation() {
        // `(a) + b` is addition, not a cast.
        let e = parse_expr("(a) + b").unwrap();
        assert!(matches!(
            e.kind,
            ExprKind::Binary {
                op: BinaryOp::Add,
                ..
            }
        ));
    }

    #[test]
    fn ternary_and_comma() {
        let e = parse_expr("a ? b : c").unwrap();
        assert!(matches!(e.kind, ExprKind::Ternary { .. }));
        let e = parse_expr("(a = 1, b = 2)").unwrap();
        assert!(matches!(e.kind, ExprKind::Comma(..)));
    }

    #[test]
    fn address_of_and_deref() {
        let e = parse_expr("*p = &x").unwrap();
        match e.kind {
            ExprKind::Assign { lhs, rhs, .. } => {
                assert!(matches!(
                    lhs.kind,
                    ExprKind::Unary {
                        op: UnaryOp::Deref,
                        ..
                    }
                ));
                assert!(matches!(
                    rhs.kind,
                    ExprKind::Unary {
                        op: UnaryOp::AddrOf,
                        ..
                    }
                ));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn goto_and_labels() {
        let tu = parse_translation_unit(
            "void f(void) { int x; retry: x = g(); if (!x) goto retry; }",
            "t.c",
        )
        .unwrap();
        let f = tu.function("f").unwrap();
        assert!(matches!(&f.body[1].kind, StmtKind::Label(l, _) if l == "retry"));
    }

    #[test]
    fn wildcard_parsing() {
        let (tokens, _) = Lexer::new("WAIT_FOR_DB_FULL(addr)").tokenize().unwrap();
        let mut wc = HashSet::new();
        wc.insert("addr".to_string());
        let mut p = Parser::with_wildcards(tokens, wc);
        let e = p.expr().unwrap();
        let (_, args) = e.as_call().unwrap();
        assert!(matches!(&args[0].kind, ExprKind::Wildcard(w) if w == "addr"));
    }

    #[test]
    fn error_reports_position() {
        let err = parse_translation_unit("void f(void) { int ; }", "bad.c").unwrap_err();
        assert_eq!(err.file, "bad.c");
        assert!(err.span.line >= 1);
    }

    #[test]
    fn prototypes_vs_definitions() {
        let tu = parse_translation_unit("void f(void);\nvoid f(void) { }", "t.c").unwrap();
        assert!(matches!(&tu.items[0], Item::Decl(ExternalDecl::Proto(_))));
        assert!(matches!(&tu.items[1], Item::Function(_)));
    }

    #[test]
    fn float_literals_parse() {
        // The no-float checker must be able to see these, so they must parse.
        let tu = parse_translation_unit("void f(void) { float r; r = 0.5; r = r * 2.0; }", "t.c")
            .unwrap();
        assert_eq!(tu.functions().count(), 1);
    }

    #[test]
    fn compound_assignment_ops() {
        for op in ["+=", "-=", "|=", "&=", "^=", "<<=", ">>="] {
            let e = parse_expr(&format!("a {op} 1")).unwrap();
            assert!(
                matches!(e.kind, ExprKind::Assign { op: Some(_), .. }),
                "{op}"
            );
        }
    }

    #[test]
    fn const_eval_dimensions() {
        let tu =
            parse_translation_unit("void f(void) { int buf[4 * 2]; buf[0] = 0; }", "t.c").unwrap();
        let f = tu.function("f").unwrap();
        match &f.body[0].kind {
            StmtKind::Decl(d) => {
                assert_eq!(d.ty, Type::Array(Box::new(Type::int()), Some(8)));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }
}
