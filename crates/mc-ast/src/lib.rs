//! # mc-ast
//!
//! Lexer, parser, AST, and pretty-printer for the C subset that FLASH
//! protocol code is written in.
//!
//! This crate is the front end of the `flash-mc` workspace: everything the
//! meta-level-compilation framework does — pattern matching, control-flow
//! graph construction, checking — happens over the [`ast`] defined here.
//! The subset covers the constructs that appear in FLASH cache-coherence
//! protocol handlers (and that the paper's checkers inspect): function
//! definitions, the full C statement set, expression forms including
//! function-like macro invocations such as `WAIT_FOR_DB_FULL(addr)`,
//! struct/array/pointer types, and floating-point types (so the
//! execution-restriction checker can reject them).
//!
//! # Example
//!
//! ```
//! use mc_ast::parse_translation_unit;
//!
//! let src = r#"
//!     void NILocalGet(void) {
//!         HANDLER_DEFS();
//!         HANDLER_PROLOGUE();
//!         if (len > 0) {
//!             WAIT_FOR_DB_FULL(addr);
//!         }
//!     }
//! "#;
//! let tu = parse_translation_unit(src, "nilocalget.c")?;
//! assert_eq!(tu.functions().count(), 1);
//! # Ok::<(), mc_ast::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod fingerprint;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod token;
pub mod visit;

pub use ast::{
    BinaryOp, Declaration, Expr, ExprKind, ExternalDecl, Function, Initializer, Item, Param, Stmt,
    StmtKind, StorageClass, StructDef, SwitchCase, TranslationUnit, Type, UnaryOp,
};
pub use fingerprint::{fnv1a, Fingerprint, FnFingerprint, Fnv1a};
pub use lexer::{LexError, Lexer};
pub use parser::{parse_expr, parse_stmt, parse_translation_unit, ParseError, Parser};
pub use printer::{print_expr, print_stmt, print_translation_unit};
pub use token::{Span, Token, TokenKind};
pub use visit::{walk_expr, walk_function, walk_stmt, Visitor};
