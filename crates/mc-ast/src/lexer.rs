//! Hand-written lexer for the C subset.
//!
//! Preprocessor directives are not expanded: `#include` and friends are
//! skipped (recorded as raw lines by the parser when needed), and FLASH
//! macros such as `WAIT_FOR_DB_FULL(...)` are lexed as ordinary identifiers
//! so that they reach the AST as call expressions — exactly the view the
//! paper's checkers pattern-match against.

use crate::token::{Span, Token, TokenKind};
use std::fmt;

/// An error produced while lexing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Where the offending character is.
    pub span: Span,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

/// Streaming lexer over source text.
#[derive(Debug)]
pub struct Lexer<'src> {
    src: &'src [u8],
    pos: usize,
    line: u32,
    col: u32,
    /// Preprocessor lines encountered (e.g. `#include "flash.h"`), in order.
    pub preprocessor_lines: Vec<String>,
}

impl<'src> Lexer<'src> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'src str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            preprocessor_lines: Vec::new(),
        }
    }

    /// Lexes the entire input into a token vector terminated by
    /// [`TokenKind::Eof`].
    ///
    /// # Errors
    ///
    /// Returns a [`LexError`] on malformed literals or unknown characters.
    pub fn tokenize(mut self) -> Result<(Vec<Token>, Vec<String>), LexError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                break;
            }
        }
        Ok((out, self.preprocessor_lines))
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn peek3(&self) -> u8 {
        *self.src.get(self.pos + 2).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        c
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        if self.peek() == 0 {
                            return Err(LexError {
                                message: "unterminated block comment".into(),
                                span: start,
                            });
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                b'#' if self.col == 1 || self.at_line_start() => {
                    // Preprocessor directive: record the raw line and skip it
                    // (including backslash continuations).
                    let mut text = String::new();
                    loop {
                        let c = self.peek();
                        if c == 0 {
                            break;
                        }
                        if c == b'\\' && self.peek2() == b'\n' {
                            self.bump();
                            self.bump();
                            continue;
                        }
                        if c == b'\n' {
                            self.bump();
                            break;
                        }
                        text.push(self.bump() as char);
                    }
                    self.preprocessor_lines.push(text);
                }
                _ => return Ok(()),
            }
        }
    }

    fn at_line_start(&self) -> bool {
        let mut i = self.pos;
        while i > 0 {
            match self.src[i - 1] {
                b' ' | b'\t' => i -= 1,
                b'\n' => return true,
                _ => return false,
            }
        }
        true
    }

    fn next_token(&mut self) -> Result<Token, LexError> {
        self.skip_trivia()?;
        let span = self.span();
        let c = self.peek();
        if c == 0 {
            return Ok(Token::new(TokenKind::Eof, span));
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let mut s = String::new();
            while self.peek().is_ascii_alphanumeric() || self.peek() == b'_' {
                s.push(self.bump() as char);
            }
            return Ok(Token::new(TokenKind::Ident(s), span));
        }
        if c.is_ascii_digit() {
            return self.lex_number(span);
        }
        match c {
            b'"' => self.lex_string(span),
            b'\'' => self.lex_char(span),
            _ => self.lex_punct(span),
        }
    }

    fn lex_number(&mut self, span: Span) -> Result<Token, LexError> {
        let mut text = String::new();
        if self.peek() == b'0' && (self.peek2() == b'x' || self.peek2() == b'X') {
            text.push(self.bump() as char);
            text.push(self.bump() as char);
            while self.peek().is_ascii_hexdigit() {
                text.push(self.bump() as char);
            }
            let value = i64::from_str_radix(&text[2..], 16).map_err(|_| LexError {
                message: format!("invalid hex literal `{text}`"),
                span,
            })?;
            self.skip_int_suffix(&mut text);
            return Ok(Token::new(TokenKind::Int(value, text), span));
        }
        while self.peek().is_ascii_digit() {
            text.push(self.bump() as char);
        }
        let is_float = self.peek() == b'.' && self.peek2().is_ascii_digit()
            || self.peek() == b'e'
            || self.peek() == b'E'
            || (self.peek() == b'.'
                && !self.peek2().is_ascii_alphanumeric()
                && self.peek2() != b'.');
        if is_float || self.peek() == b'f' || self.peek() == b'F' {
            if self.peek() == b'.' {
                text.push(self.bump() as char);
                while self.peek().is_ascii_digit() {
                    text.push(self.bump() as char);
                }
            }
            if self.peek() == b'e' || self.peek() == b'E' {
                text.push(self.bump() as char);
                if self.peek() == b'+' || self.peek() == b'-' {
                    text.push(self.bump() as char);
                }
                while self.peek().is_ascii_digit() {
                    text.push(self.bump() as char);
                }
            }
            let mut display = text.clone();
            if self.peek() == b'f' || self.peek() == b'F' {
                display.push(self.bump() as char);
            }
            let value: f64 = text.parse().map_err(|_| LexError {
                message: format!("invalid float literal `{text}`"),
                span,
            })?;
            return Ok(Token::new(TokenKind::Float(value, display), span));
        }
        let value: i64 = text.parse().map_err(|_| LexError {
            message: format!("invalid integer literal `{text}`"),
            span,
        })?;
        self.skip_int_suffix(&mut text);
        Ok(Token::new(TokenKind::Int(value, text), span))
    }

    fn skip_int_suffix(&mut self, text: &mut String) {
        while matches!(self.peek(), b'u' | b'U' | b'l' | b'L') {
            text.push(self.bump() as char);
        }
    }

    fn lex_string(&mut self, span: Span) -> Result<Token, LexError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.peek() {
                0 | b'\n' => {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        span,
                    })
                }
                b'"' => {
                    self.bump();
                    break;
                }
                b'\\' => {
                    self.bump();
                    s.push(unescape(self.bump()));
                }
                _ => s.push(self.bump() as char),
            }
        }
        Ok(Token::new(TokenKind::Str(s), span))
    }

    fn lex_char(&mut self, span: Span) -> Result<Token, LexError> {
        self.bump(); // opening quote
        let c = match self.peek() {
            b'\\' => {
                self.bump();
                unescape(self.bump())
            }
            0 => {
                return Err(LexError {
                    message: "unterminated char literal".into(),
                    span,
                })
            }
            _ => self.bump() as char,
        };
        if self.peek() != b'\'' {
            return Err(LexError {
                message: "unterminated char literal".into(),
                span,
            });
        }
        self.bump();
        Ok(Token::new(TokenKind::Char(c), span))
    }

    fn lex_punct(&mut self, span: Span) -> Result<Token, LexError> {
        // Longest-match punctuation table.
        // `==>` is not C: it is the metal transition arrow. The metal DSL
        // parser reuses this lexer, so it is lexed here as one token.
        const THREE: &[&str] = &["<<=", ">>=", "...", "==>"];
        const TWO: &[&str] = &[
            "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=", "&=",
            "|=", "^=", "->", "++", "--",
        ];
        const ONE: &[&str] = &[
            "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^", "?", ":", ";", ",",
            ".", "(", ")", "[", "]", "{", "}",
        ];
        let c1 = self.peek() as char;
        let c2 = self.peek2() as char;
        let c3 = self.peek3() as char;
        let three: String = [c1, c2, c3].iter().collect();
        if let Some(p) = THREE.iter().find(|p| ***p == three) {
            self.bump();
            self.bump();
            self.bump();
            return Ok(Token::new(TokenKind::Punct(p), span));
        }
        let two: String = [c1, c2].iter().collect();
        if let Some(p) = TWO.iter().find(|p| ***p == two && p.len() == 2) {
            self.bump();
            self.bump();
            return Ok(Token::new(TokenKind::Punct(p), span));
        }
        let one: String = c1.to_string();
        if let Some(p) = ONE.iter().find(|p| ***p == one) {
            self.bump();
            return Ok(Token::new(TokenKind::Punct(p), span));
        }
        Err(LexError {
            message: format!("unexpected character `{c1}`"),
            span,
        })
    }
}

fn unescape(c: u8) -> char {
    match c {
        b'n' => '\n',
        b't' => '\t',
        b'r' => '\r',
        b'0' => '\0',
        other => other as char,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let (toks, _) = Lexer::new(src).tokenize().unwrap();
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lex_identifiers_and_ints() {
        let k = kinds("foo bar_1 42 0x2a");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("foo".into()),
                TokenKind::Ident("bar_1".into()),
                TokenKind::Int(42, "42".into()),
                TokenKind::Int(42, "0x2a".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lex_floats() {
        let k = kinds("1.5 2e3 7.0f");
        assert!(matches!(k[0], TokenKind::Float(v, _) if v == 1.5));
        assert!(matches!(k[1], TokenKind::Float(v, _) if v == 2000.0));
        assert!(matches!(k[2], TokenKind::Float(v, _) if v == 7.0));
    }

    #[test]
    fn lex_operators_longest_match() {
        let k = kinds("a <<= b == c << d");
        assert!(k.contains(&TokenKind::Punct("<<=")));
        assert!(k.contains(&TokenKind::Punct("==")));
        assert!(k.contains(&TokenKind::Punct("<<")));
    }

    #[test]
    fn lex_strings_and_chars() {
        let k = kinds(r#""hello\n" 'x' '\t'"#);
        assert_eq!(k[0], TokenKind::Str("hello\n".into()));
        assert_eq!(k[1], TokenKind::Char('x'));
        assert_eq!(k[2], TokenKind::Char('\t'));
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("a // line\n b /* block\n comment */ c");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn preprocessor_lines_recorded() {
        let (toks, pp) = Lexer::new("#include \"flash.h\"\nint x;")
            .tokenize()
            .unwrap();
        assert_eq!(pp, vec!["#include \"flash.h\"".to_string()]);
        assert_eq!(toks[0].kind, TokenKind::Ident("int".into()));
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let (toks, _) = Lexer::new("a\n  b").tokenize().unwrap();
        assert_eq!(toks[0].span, Span::new(1, 1));
        assert_eq!(toks[1].span, Span::new(2, 3));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(Lexer::new("\"oops").tokenize().is_err());
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(Lexer::new("/* never closed").tokenize().is_err());
    }

    #[test]
    fn unknown_character_is_error() {
        assert!(Lexer::new("int x = @;").tokenize().is_err());
    }

    #[test]
    fn int_suffixes_are_consumed() {
        let k = kinds("10UL 0xffU");
        assert!(matches!(&k[0], TokenKind::Int(10, t) if t == "10UL"));
        assert!(matches!(&k[1], TokenKind::Int(255, _)));
    }
}
