//! A read-only visitor over the AST.
//!
//! Several checkers (execution restrictions, no-float) are pure tree walks
//! — the paper notes this is the easiest kind of MC check since "no analysis
//! or transformation is required". This module gives them a standard
//! traversal so each checker only overrides the hooks it cares about.

use crate::ast::*;

/// A visitor with default do-nothing hooks and full traversal.
///
/// Override `visit_*` hooks to observe nodes; call the corresponding
/// `walk_*` free function inside an override if you still want children
/// traversed (the default implementations do this automatically).
pub trait Visitor {
    /// Called for every expression before its children.
    fn visit_expr(&mut self, expr: &Expr) {
        let _ = expr;
    }

    /// Called for every statement before its children.
    fn visit_stmt(&mut self, stmt: &Stmt) {
        let _ = stmt;
    }

    /// Called for every local declaration.
    fn visit_decl(&mut self, decl: &Declaration) {
        let _ = decl;
    }
}

/// Drives traversal of a whole function body, invoking the visitor's hooks
/// on every statement and expression.
pub fn walk_function<V: Visitor>(v: &mut V, func: &Function) {
    for s in &func.body {
        v.visit_stmt(s);
        walk_stmt(v, s);
    }
}

/// Recurses into the children of `stmt`, invoking visitor hooks.
pub fn walk_stmt<V: Visitor>(v: &mut V, stmt: &Stmt) {
    match &stmt.kind {
        StmtKind::Expr(e) => walk_expr_root(v, e),
        StmtKind::Decl(d) => {
            v.visit_decl(d);
            if let Some(init) = &d.init {
                walk_initializer(v, init);
            }
        }
        StmtKind::Empty | StmtKind::Break | StmtKind::Continue | StmtKind::Goto(_) => {}
        StmtKind::Block(body) => {
            for s in body {
                v.visit_stmt(s);
                walk_stmt(v, s);
            }
        }
        StmtKind::If { cond, then, els } => {
            walk_expr_root(v, cond);
            v.visit_stmt(then);
            walk_stmt(v, then);
            if let Some(e) = els {
                v.visit_stmt(e);
                walk_stmt(v, e);
            }
        }
        StmtKind::While { cond, body } => {
            walk_expr_root(v, cond);
            v.visit_stmt(body);
            walk_stmt(v, body);
        }
        StmtKind::DoWhile { body, cond } => {
            v.visit_stmt(body);
            walk_stmt(v, body);
            walk_expr_root(v, cond);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(s) = init {
                v.visit_stmt(s);
                walk_stmt(v, s);
            }
            if let Some(c) = cond {
                walk_expr_root(v, c);
            }
            if let Some(s) = step {
                walk_expr_root(v, s);
            }
            v.visit_stmt(body);
            walk_stmt(v, body);
        }
        StmtKind::Switch { scrutinee, cases } => {
            walk_expr_root(v, scrutinee);
            for case in cases {
                if let Some(value) = &case.value {
                    walk_expr_root(v, value);
                }
                for s in &case.body {
                    v.visit_stmt(s);
                    walk_stmt(v, s);
                }
            }
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                walk_expr_root(v, e);
            }
        }
        StmtKind::Label(_, inner) => {
            v.visit_stmt(inner);
            walk_stmt(v, inner);
        }
    }
}

fn walk_initializer<V: Visitor>(v: &mut V, init: &Initializer) {
    match init {
        Initializer::Expr(e) => walk_expr_root(v, e),
        Initializer::List(list) => {
            for i in list {
                walk_initializer(v, i);
            }
        }
    }
}

fn walk_expr_root<V: Visitor>(v: &mut V, e: &Expr) {
    v.visit_expr(e);
    walk_expr(v, e);
}

/// Recurses into the children of `e`, invoking [`Visitor::visit_expr`] on
/// each (pre-order).
pub fn walk_expr<V: Visitor>(v: &mut V, e: &Expr) {
    let mut go = |child: &Expr| {
        v.visit_expr(child);
        walk_expr(v, child);
    };
    match &e.kind {
        ExprKind::Call { callee, args } => {
            go(callee);
            for a in args {
                go(a);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            go(lhs);
            go(rhs);
        }
        ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => go(operand),
        ExprKind::Ternary { cond, then, els } => {
            go(cond);
            go(then);
            go(els);
        }
        ExprKind::Index { base, index } => {
            go(base);
            go(index);
        }
        ExprKind::Member { base, .. } => go(base),
        ExprKind::Cast { expr, .. } => go(expr),
        ExprKind::Comma(a, b) => {
            go(a);
            go(b);
        }
        ExprKind::IntLit(..)
        | ExprKind::FloatLit(..)
        | ExprKind::CharLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::Ident(_)
        | ExprKind::SizeofType(_)
        | ExprKind::Wildcard(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_translation_unit;

    struct Counter {
        exprs: usize,
        stmts: usize,
        decls: usize,
        float_lits: usize,
    }

    impl Visitor for Counter {
        fn visit_expr(&mut self, e: &Expr) {
            self.exprs += 1;
            if matches!(e.kind, ExprKind::FloatLit(..)) {
                self.float_lits += 1;
            }
        }
        fn visit_stmt(&mut self, _: &Stmt) {
            self.stmts += 1;
        }
        fn visit_decl(&mut self, _: &Declaration) {
            self.decls += 1;
        }
    }

    #[test]
    fn visits_all_nodes() {
        let tu = parse_translation_unit(
            r#"
            void f(void) {
                int x = 3;
                float r;
                if (x > 1) { r = 2.5; }
                while (x) x--;
            }
            "#,
            "t.c",
        )
        .unwrap();
        let mut c = Counter {
            exprs: 0,
            stmts: 0,
            decls: 0,
            float_lits: 0,
        };
        walk_function(&mut c, tu.function("f").unwrap());
        assert_eq!(c.decls, 2);
        assert_eq!(c.float_lits, 1);
        assert!(c.stmts >= 5);
        assert!(c.exprs >= 8);
    }

    #[test]
    fn visits_switch_and_for() {
        let tu = parse_translation_unit(
            "void f(void) { for (i = 0; i < 4; i++) { switch (i) { case 0: g(i); break; } } }",
            "t.c",
        )
        .unwrap();
        let mut c = Counter {
            exprs: 0,
            stmts: 0,
            decls: 0,
            float_lits: 0,
        };
        walk_function(&mut c, tu.function("f").unwrap());
        // i=0, i<4 (and children), i++, switch i, g(i) call + callee + arg...
        assert!(c.exprs >= 10, "exprs = {}", c.exprs);
    }
}
