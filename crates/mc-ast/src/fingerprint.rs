//! Stable structural fingerprints for translation units.
//!
//! The incremental check engine keys cached artifacts by *content*, not by
//! file path or mtime: two sources with the same fingerprint are guaranteed
//! to produce the same parse, the same CFGs, and the same checker reports.
//! Two hashes are computed per unit:
//!
//! * [`Fingerprint::source`] — FNV-1a over the raw source bytes. Cheap
//!   (no parse needed), so a warm run can recognise an unchanged file
//!   without touching the front end at all.
//! * [`Fingerprint::ast`] — FNV-1a over the pretty-printed AST *plus every
//!   node span*. The printer normalises whitespace and the lexer drops
//!   comments, so edits that do not displace any token (trailing spaces,
//!   comment text on an existing line, a comment added after the last item)
//!   hash identically. Edits that *do* shift line or column numbers change
//!   the span fold and therefore the hash — deliberately, because checker
//!   reports embed source positions, and replaying a cached report with a
//!   stale position would be wrong. Cache-safety policy: any doubt is a
//!   miss.
//!
//! The hasher is the vendored dependency-free FNV-1a (the same
//! splitmix/FNV family the corpus RNG uses); it is not cryptographic, which
//! is fine for a cache whose worst collision outcome is a stale report that
//! the determinism tests would catch.

use crate::ast::{
    Declaration, Expr, ExprKind, ExternalDecl, Function, Initializer, Item, Stmt, StmtKind,
    SwitchCase, TranslationUnit,
};
use crate::printer::{
    print_external_decl_text, print_function_signature, print_function_text, print_translation_unit,
};
use crate::token::Span;

/// The FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A running FNV-1a 64-bit hasher.
///
/// Dependency-free and deterministic across platforms and runs (unlike
/// `std::collections::hash_map::DefaultHasher`, which is randomly seeded
/// per process and therefore useless for on-disk cache keys).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Folds raw bytes into the state.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds a string (as UTF-8 bytes, length-prefixed so that adjacent
    /// fields cannot alias each other's boundaries).
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes())
    }

    /// Folds a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// The two content hashes of one translation unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// FNV-1a over the raw source text.
    pub source: u64,
    /// FNV-1a over the printed AST plus every node span.
    pub ast: u64,
}

impl Fingerprint {
    /// Hashes raw source text (no parse required).
    pub fn of_source(src: &str) -> u64 {
        fnv1a(src.as_bytes())
    }

    /// Hashes a parsed unit: printed form (whitespace/comment-normalised)
    /// plus the span of every node (so cached diagnostics never point at
    /// stale positions).
    pub fn of_unit(unit: &TranslationUnit) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str(&print_translation_unit(unit));
        fold_unit_spans(&mut h, unit);
        h.finish()
    }

    /// Both hashes of a parsed unit whose original text is at hand.
    pub fn new(src: &str, unit: &TranslationUnit) -> Fingerprint {
        Fingerprint {
            source: Fingerprint::of_source(src),
            ast: Fingerprint::of_unit(unit),
        }
    }

    /// Both hashes of one function definition (see [`FnFingerprint`]).
    pub fn of_function(f: &Function) -> FnFingerprint {
        let sig = {
            let mut h = Fnv1a::new();
            h.write_str(&print_function_signature(f));
            h.finish()
        };
        let body = {
            let mut h = Fnv1a::new();
            h.write_u64(sig);
            h.write_str(&print_function_text(f));
            fold_function(&mut h, f);
            h.finish()
        };
        FnFingerprint { body, sig }
    }

    /// Hash of a unit's *environment*: everything that can influence a
    /// function's checks other than function bodies themselves —
    /// preprocessor lines and every non-function item (globals with their
    /// initializers, prototypes, struct/enum/typedef definitions), printed
    /// and span-folded. Two units with equal environment hashes present
    /// identical surroundings to any one function body.
    pub fn of_unit_env(unit: &TranslationUnit) -> u64 {
        let mut h = Fnv1a::new();
        for line in &unit.preprocessor_lines {
            h.write_str(line);
        }
        for item in &unit.items {
            match item {
                Item::Function(_) => {}
                Item::Decl(d) => {
                    h.write_str(&print_external_decl_text(d));
                    fold_external(&mut h, d);
                }
            }
        }
        h.finish()
    }
}

/// The two content hashes of one function definition, the unit of
/// red/green invalidation in the incremental engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FnFingerprint {
    /// FNV-1a over the signature hash plus the whole printed definition
    /// plus every node span. Any edit that could change this function's
    /// own reports — including pure position shifts — changes this hash.
    pub body: u64,
    /// FNV-1a over the printed interface only (storage class, return type,
    /// name, parameters). Body-only edits leave it unchanged, which is
    /// what lets dependents stay green across them.
    pub sig: u64,
}

fn fold_span(h: &mut Fnv1a, span: Span) {
    h.write_u64((u64::from(span.line) << 32) | u64::from(span.col));
}

fn fold_unit_spans(h: &mut Fnv1a, unit: &TranslationUnit) {
    for item in &unit.items {
        match item {
            Item::Function(f) => fold_function(h, f),
            Item::Decl(d) => fold_external(h, d),
        }
    }
}

fn fold_function(h: &mut Fnv1a, f: &Function) {
    fold_span(h, f.span);
    for s in &f.body {
        fold_stmt(h, s);
    }
}

fn fold_external(h: &mut Fnv1a, d: &ExternalDecl) {
    match d {
        ExternalDecl::Var(decl) => fold_decl(h, decl),
        ExternalDecl::Proto(f) => fold_function(h, f),
        ExternalDecl::Struct(s) => fold_span(h, s.span),
        ExternalDecl::Typedef { span, .. } => fold_span(h, *span),
        ExternalDecl::EnumDef { span, .. } => fold_span(h, *span),
    }
}

fn fold_decl(h: &mut Fnv1a, d: &Declaration) {
    fold_span(h, d.span);
    if let Some(init) = &d.init {
        fold_initializer(h, init);
    }
}

fn fold_initializer(h: &mut Fnv1a, init: &Initializer) {
    match init {
        Initializer::Expr(e) => fold_expr(h, e),
        Initializer::List(items) => {
            for i in items {
                fold_initializer(h, i);
            }
        }
    }
}

fn fold_case(h: &mut Fnv1a, case: &SwitchCase) {
    fold_span(h, case.span);
    if let Some(v) = &case.value {
        fold_expr(h, v);
    }
    for s in &case.body {
        fold_stmt(h, s);
    }
}

fn fold_stmt(h: &mut Fnv1a, s: &Stmt) {
    fold_span(h, s.span);
    match &s.kind {
        StmtKind::Expr(e) => fold_expr(h, e),
        StmtKind::Decl(d) => fold_decl(h, d),
        StmtKind::Empty | StmtKind::Break | StmtKind::Continue | StmtKind::Goto(_) => {}
        StmtKind::Block(body) => {
            for s in body {
                fold_stmt(h, s);
            }
        }
        StmtKind::If { cond, then, els } => {
            fold_expr(h, cond);
            fold_stmt(h, then);
            if let Some(e) = els {
                fold_stmt(h, e);
            }
        }
        StmtKind::While { cond, body } => {
            fold_expr(h, cond);
            fold_stmt(h, body);
        }
        StmtKind::DoWhile { body, cond } => {
            fold_stmt(h, body);
            fold_expr(h, cond);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                fold_stmt(h, i);
            }
            if let Some(c) = cond {
                fold_expr(h, c);
            }
            if let Some(st) = step {
                fold_expr(h, st);
            }
            fold_stmt(h, body);
        }
        StmtKind::Switch { scrutinee, cases } => {
            fold_expr(h, scrutinee);
            for c in cases {
                fold_case(h, c);
            }
        }
        StmtKind::Return(v) => {
            if let Some(e) = v {
                fold_expr(h, e);
            }
        }
        StmtKind::Label(_, inner) => fold_stmt(h, inner),
    }
}

fn fold_expr(h: &mut Fnv1a, e: &Expr) {
    fold_span(h, e.span);
    match &e.kind {
        ExprKind::IntLit(..)
        | ExprKind::FloatLit(..)
        | ExprKind::CharLit(_)
        | ExprKind::StrLit(_)
        | ExprKind::Ident(_)
        | ExprKind::SizeofType(_)
        | ExprKind::Wildcard(_) => {}
        ExprKind::Call { callee, args } => {
            fold_expr(h, callee);
            for a in args {
                fold_expr(h, a);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            fold_expr(h, lhs);
            fold_expr(h, rhs);
        }
        ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => {
            fold_expr(h, operand)
        }
        ExprKind::Ternary { cond, then, els } => {
            fold_expr(h, cond);
            fold_expr(h, then);
            fold_expr(h, els);
        }
        ExprKind::Index { base, index } => {
            fold_expr(h, base);
            fold_expr(h, index);
        }
        ExprKind::Member { base, .. } => fold_expr(h, base),
        ExprKind::Cast { expr, .. } => fold_expr(h, expr),
        ExprKind::Comma(a, b) => {
            fold_expr(h, a);
            fold_expr(h, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_translation_unit;

    #[test]
    fn fnv1a_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn source_hash_is_deterministic_and_content_addressed() {
        let a = Fingerprint::of_source("void f(void) { g(); }");
        let b = Fingerprint::of_source("void f(void) { g(); }");
        let c = Fingerprint::of_source("void f(void) { h(); }");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    fn ast_fp(src: &str) -> u64 {
        Fingerprint::of_unit(&parse_translation_unit(src, "t.c").unwrap())
    }

    #[test]
    fn layout_neutral_edits_hash_identically() {
        let base = ast_fp("void f(void) { g(); }");
        // Trailing whitespace and a comment after the last token displace
        // no code, so positions — and therefore reports — are unchanged.
        assert_eq!(base, ast_fp("void f(void) { g(); }   "));
        assert_eq!(base, ast_fp("void f(void) { g(); } /* reviewed */"));
        assert_eq!(base, ast_fp("void f(void) { g(); }\n/* trailer */\n"));
    }

    #[test]
    fn edits_that_displace_code_change_the_hash() {
        let base = ast_fp("void f(void) { g(); }");
        // A comment line above the code shifts every line number; cached
        // reports would point at the wrong lines, so this must miss.
        assert_ne!(base, ast_fp("/* new header */\nvoid f(void) { g(); }"));
        // Indentation shifts columns.
        assert_ne!(base, ast_fp("void f(void) {     g(); }"));
        // And, of course, semantic edits miss.
        assert_ne!(base, ast_fp("void f(void) { h(); }"));
    }

    #[test]
    fn ast_hash_covers_nested_constructs() {
        let src = |arm: &str| {
            format!(
                "int g;\nvoid f(int n) {{\n  for (i = 0; i < n; i++) {{\n    switch (n) {{\n      case 1: {arm}; break;\n      default: d();\n    }}\n  }}\n}}\n"
            )
        };
        assert_ne!(ast_fp(&src("a()")), ast_fp(&src("b()")));
    }

    #[test]
    fn fingerprint_new_combines_both() {
        let src = "void f(void) { g(); }";
        let unit = parse_translation_unit(src, "t.c").unwrap();
        let fp = Fingerprint::new(src, &unit);
        assert_eq!(fp.source, Fingerprint::of_source(src));
        assert_eq!(fp.ast, Fingerprint::of_unit(&unit));
    }

    fn fn_fp(src: &str) -> FnFingerprint {
        let unit = parse_translation_unit(src, "t.c").unwrap();
        let f = unit.functions().next().unwrap();
        Fingerprint::of_function(f)
    }

    #[test]
    fn body_only_edits_keep_the_signature_hash() {
        let a = fn_fp("void f(int n) { g(); }");
        let b = fn_fp("void f(int n) { h(); }");
        assert_ne!(a.body, b.body);
        assert_eq!(a.sig, b.sig);
    }

    #[test]
    fn signature_edits_change_both_hashes() {
        let a = fn_fp("void f(int n) { g(); }");
        let b = fn_fp("void f(int m) { g(); }");
        assert_ne!(a.sig, b.sig);
        assert_ne!(a.body, b.body);
        let c = fn_fp("int f(int n) { g(); }");
        assert_ne!(a.sig, c.sig);
    }

    #[test]
    fn function_body_hash_covers_spans() {
        // The same tokens at displaced positions must miss: cached reports
        // carry line/col.
        let a = fn_fp("void f(void) { g(); }");
        let b = fn_fp("\nvoid f(void) { g(); }");
        assert_eq!(a.sig, b.sig);
        assert_ne!(a.body, b.body);
    }

    fn env_fp(src: &str) -> u64 {
        Fingerprint::of_unit_env(&parse_translation_unit(src, "t.c").unwrap())
    }

    #[test]
    fn unit_env_hash_ignores_function_bodies() {
        assert_eq!(
            env_fp("int gLen = 4;\nvoid f(void) { g(); }"),
            env_fp("int gLen = 4;\nvoid f(void) { h(); i(); }")
        );
    }

    #[test]
    fn unit_env_hash_sees_globals_and_preprocessor_lines() {
        let base = env_fp("int gLen = 4;\nvoid f(void) { g(); }");
        assert_ne!(base, env_fp("int gLen = 5;\nvoid f(void) { g(); }"));
        assert_ne!(
            base,
            env_fp("#define LIMIT 8\nint gLen = 4;\nvoid f(void) { g(); }")
        );
    }

    #[test]
    fn hasher_field_framing_prevents_aliasing() {
        // "ab" + "c" must not hash like "a" + "bc" (length prefixes).
        let mut h1 = Fnv1a::new();
        h1.write_str("ab").write_str("c");
        let mut h2 = Fnv1a::new();
        h2.write_str("a").write_str("bc");
        assert_ne!(h1.finish(), h2.finish());
    }
}
