//! Pretty-printer: turns ASTs back into compilable C text.
//!
//! Used by the corpus generator (which builds protocol files as ASTs and
//! prints them), by checker reports (to show the offending expression), and
//! by the round-trip property tests (`parse(print(ast))` is structurally
//! equal to `ast`).

use crate::ast::*;
use std::fmt::Write;

/// Prints a full translation unit as C source.
pub fn print_translation_unit(tu: &TranslationUnit) -> String {
    let mut out = String::new();
    for line in &tu.preprocessor_lines {
        let _ = writeln!(out, "{line}");
    }
    if !tu.preprocessor_lines.is_empty() {
        out.push('\n');
    }
    for item in &tu.items {
        match item {
            Item::Function(f) => print_function(&mut out, f),
            Item::Decl(d) => print_external_decl(&mut out, d),
        }
        out.push('\n');
    }
    out
}

/// Prints one statement with the given indentation level.
pub fn print_stmt(stmt: &Stmt) -> String {
    let mut out = String::new();
    write_stmt(&mut out, stmt, 0);
    out
}

/// Prints one expression.
pub fn print_expr(expr: &Expr) -> String {
    let mut out = String::new();
    write_expr(&mut out, expr);
    out
}

/// Prints one function definition (signature and body) as C source.
pub fn print_function_text(f: &Function) -> String {
    let mut out = String::new();
    print_function(&mut out, f);
    out
}

/// Prints a function's interface only: storage class, return type, name,
/// and parameter list — everything a caller binds to, nothing of the body.
pub fn print_function_signature(f: &Function) -> String {
    let mut out = String::new();
    write_storage(&mut out, &f.storage);
    let _ = write!(out, "{} {}(", type_prefix(&f.return_type), f.name);
    if f.params.is_empty() {
        out.push_str("void");
    } else {
        for (i, p) in f.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_decl_type(&mut out, &p.ty, &p.name);
        }
    }
    out.push(')');
    out
}

/// Prints one non-function external declaration as C source.
pub fn print_external_decl_text(d: &ExternalDecl) -> String {
    let mut out = String::new();
    print_external_decl(&mut out, d);
    out
}

fn print_function(out: &mut String, f: &Function) {
    out.push_str(&print_function_signature(f));
    out.push_str("\n{\n");
    for s in &f.body {
        write_stmt(out, s, 1);
    }
    out.push_str("}\n");
}

fn print_external_decl(out: &mut String, d: &ExternalDecl) {
    match d {
        ExternalDecl::Var(decl) => {
            write_storage(out, &decl.storage);
            write_decl_type(out, &decl.ty, &decl.name);
            if let Some(init) = &decl.init {
                out.push_str(" = ");
                write_initializer(out, init);
            }
            out.push_str(";\n");
        }
        ExternalDecl::Proto(f) => {
            write_storage(out, &f.storage);
            let _ = write!(out, "{} {}(", type_prefix(&f.return_type), f.name);
            if f.params.is_empty() {
                out.push_str("void");
            } else {
                for (i, p) in f.params.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_decl_type(out, &p.ty, &p.name);
                }
            }
            out.push_str(");\n");
        }
        ExternalDecl::Struct(s) => {
            let kw = if s.is_union { "union" } else { "struct" };
            let _ = writeln!(out, "{kw} {} {{", s.name);
            for (ty, name) in &s.fields {
                out.push_str("    ");
                write_decl_type(out, ty, name);
                out.push_str(";\n");
            }
            out.push_str("};\n");
        }
        ExternalDecl::Typedef { ty, name, .. } => {
            out.push_str("typedef ");
            write_decl_type(out, ty, name);
            out.push_str(";\n");
        }
        ExternalDecl::EnumDef { name, variants, .. } => {
            let _ = writeln!(out, "enum {name} {{");
            for (i, (vname, value)) in variants.iter().enumerate() {
                out.push_str("    ");
                out.push_str(vname);
                if let Some(v) = value {
                    let _ = write!(out, " = {v}");
                }
                if i + 1 < variants.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str("};\n");
        }
    }
}

fn write_storage(out: &mut String, sc: &StorageClass) {
    if sc.is_static {
        out.push_str("static ");
    }
    if sc.is_extern {
        out.push_str("extern ");
    }
    if sc.is_inline {
        out.push_str("inline ");
    }
    if sc.is_const {
        out.push_str("const ");
    }
    if sc.is_volatile {
        out.push_str("volatile ");
    }
    if sc.is_register {
        out.push_str("register ");
    }
}

/// The textual prefix of a type (everything before a declarator name).
fn type_prefix(ty: &Type) -> String {
    match ty {
        Type::Void => "void".into(),
        Type::Int { unsigned, width } => {
            let mut s = String::new();
            if *unsigned {
                s.push_str("unsigned ");
            }
            s.push_str(width);
            s
        }
        Type::Float => "float".into(),
        Type::Double => "double".into(),
        Type::Struct { name, is_union } => {
            format!("{} {name}", if *is_union { "union" } else { "struct" })
        }
        Type::Enum(name) => format!("enum {name}"),
        Type::Named(name) => name.clone(),
        Type::Ptr(inner) => format!("{}*", type_prefix(inner)),
        Type::Array(inner, _) => type_prefix(inner),
    }
}

/// Writes `ty name` handling array suffixes (e.g. `int buf[8]`).
fn write_decl_type(out: &mut String, ty: &Type, name: &str) {
    // Collect array dimensions outside-in.
    let mut dims = Vec::new();
    let mut base = ty;
    while let Type::Array(inner, dim) = base {
        dims.push(*dim);
        base = inner;
    }
    let _ = write!(out, "{}", type_prefix(base));
    if !name.is_empty() {
        let _ = write!(out, " {name}");
    }
    for d in dims {
        match d {
            Some(n) => {
                let _ = write!(out, "[{n}]");
            }
            None => out.push_str("[]"),
        }
    }
}

fn write_initializer(out: &mut String, init: &Initializer) {
    match init {
        Initializer::Expr(e) => write_expr(out, e),
        Initializer::List(list) => {
            out.push_str("{ ");
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_initializer(out, item);
            }
            out.push_str(" }");
        }
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    match &stmt.kind {
        StmtKind::Expr(e) => {
            indent(out, level);
            write_expr(out, e);
            out.push_str(";\n");
        }
        StmtKind::Decl(d) => {
            indent(out, level);
            write_storage(out, &d.storage);
            write_decl_type(out, &d.ty, &d.name);
            if let Some(init) = &d.init {
                out.push_str(" = ");
                write_initializer(out, init);
            }
            out.push_str(";\n");
        }
        StmtKind::Empty => {
            indent(out, level);
            out.push_str(";\n");
        }
        StmtKind::Block(body) => {
            indent(out, level);
            out.push_str("{\n");
            for s in body {
                write_stmt(out, s, level + 1);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        StmtKind::If { cond, then, els } => {
            indent(out, level);
            out.push_str("if (");
            write_expr(out, cond);
            out.push_str(")\n");
            write_nested(out, then, level);
            if let Some(e) = els {
                indent(out, level);
                out.push_str("else\n");
                write_nested(out, e, level);
            }
        }
        StmtKind::While { cond, body } => {
            indent(out, level);
            out.push_str("while (");
            write_expr(out, cond);
            out.push_str(")\n");
            write_nested(out, body, level);
        }
        StmtKind::DoWhile { body, cond } => {
            indent(out, level);
            out.push_str("do\n");
            write_nested(out, body, level);
            indent(out, level);
            out.push_str("while (");
            write_expr(out, cond);
            out.push_str(");\n");
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            indent(out, level);
            out.push_str("for (");
            match init {
                Some(s) => match &s.kind {
                    StmtKind::Decl(d) => {
                        write_decl_type(out, &d.ty, &d.name);
                        if let Some(i) = &d.init {
                            out.push_str(" = ");
                            write_initializer(out, i);
                        }
                        out.push_str("; ");
                    }
                    StmtKind::Expr(e) => {
                        write_expr(out, e);
                        out.push_str("; ");
                    }
                    _ => out.push_str("; "),
                },
                None => out.push_str("; "),
            }
            if let Some(c) = cond {
                write_expr(out, c);
            }
            out.push_str("; ");
            if let Some(s) = step {
                write_expr(out, s);
            }
            out.push_str(")\n");
            write_nested(out, body, level);
        }
        StmtKind::Switch { scrutinee, cases } => {
            indent(out, level);
            out.push_str("switch (");
            write_expr(out, scrutinee);
            out.push_str(") {\n");
            for case in cases {
                indent(out, level);
                match &case.value {
                    Some(v) => {
                        out.push_str("case ");
                        write_expr(out, v);
                        out.push_str(":\n");
                    }
                    None => out.push_str("default:\n"),
                }
                for s in &case.body {
                    write_stmt(out, s, level + 1);
                }
            }
            indent(out, level);
            out.push_str("}\n");
        }
        StmtKind::Break => {
            indent(out, level);
            out.push_str("break;\n");
        }
        StmtKind::Continue => {
            indent(out, level);
            out.push_str("continue;\n");
        }
        StmtKind::Return(None) => {
            indent(out, level);
            out.push_str("return;\n");
        }
        StmtKind::Return(Some(e)) => {
            indent(out, level);
            out.push_str("return ");
            write_expr(out, e);
            out.push_str(";\n");
        }
        StmtKind::Label(name, inner) => {
            indent(out, level);
            let _ = writeln!(out, "{name}:");
            write_stmt(out, inner, level);
        }
        StmtKind::Goto(label) => {
            indent(out, level);
            let _ = writeln!(out, "goto {label};");
        }
    }
}

/// Writes the body of a control statement. Non-block statements are wrapped
/// in braces: this resolves the dangling-`else` ambiguity so that printing
/// followed by re-parsing preserves structure (the brace-wrapped form
/// re-parses as a one-statement block, which prints identically).
fn write_nested(out: &mut String, stmt: &Stmt, level: usize) {
    if matches!(stmt.kind, StmtKind::Block(_)) {
        write_stmt(out, stmt, level);
    } else {
        indent(out, level);
        out.push_str("{\n");
        write_stmt(out, stmt, level + 1);
        indent(out, level);
        out.push_str("}\n");
    }
}

fn write_expr(out: &mut String, e: &Expr) {
    match &e.kind {
        ExprKind::IntLit(_, text) => out.push_str(text),
        ExprKind::FloatLit(_, text) => out.push_str(text),
        ExprKind::CharLit(c) => {
            let _ = match c {
                '\n' => write!(out, "'\\n'"),
                '\t' => write!(out, "'\\t'"),
                '\0' => write!(out, "'\\0'"),
                '\'' => write!(out, "'\\''"),
                '\\' => write!(out, "'\\\\'"),
                c => write!(out, "'{c}'"),
            };
        }
        ExprKind::StrLit(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        ExprKind::Ident(name) | ExprKind::Wildcard(name) => out.push_str(name),
        ExprKind::Call { callee, args } => {
            write_expr(out, callee);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a);
            }
            out.push(')');
        }
        ExprKind::Binary { op, lhs, rhs } => {
            write_operand(out, lhs);
            let _ = write!(out, " {op} ");
            write_operand(out, rhs);
        }
        ExprKind::Unary { op, operand } => {
            out.push_str(op.symbol());
            write_operand(out, operand);
        }
        ExprKind::Postfix { operand, inc } => {
            write_operand(out, operand);
            out.push_str(if *inc { "++" } else { "--" });
        }
        ExprKind::Assign { op, lhs, rhs } => {
            write_operand(out, lhs);
            match op {
                Some(op) => {
                    let _ = write!(out, " {}= ", op.symbol());
                }
                None => out.push_str(" = "),
            }
            write_operand(out, rhs);
        }
        ExprKind::Ternary { cond, then, els } => {
            write_operand(out, cond);
            out.push_str(" ? ");
            write_operand(out, then);
            out.push_str(" : ");
            write_operand(out, els);
        }
        ExprKind::Index { base, index } => {
            write_operand(out, base);
            out.push('[');
            write_expr(out, index);
            out.push(']');
        }
        ExprKind::Member { base, field, arrow } => {
            write_operand(out, base);
            out.push_str(if *arrow { "->" } else { "." });
            out.push_str(field);
        }
        ExprKind::Cast { ty, expr } => {
            let _ = write!(out, "({})", type_prefix(ty));
            write_operand(out, expr);
        }
        ExprKind::SizeofType(ty) => {
            let _ = write!(out, "sizeof({})", type_prefix(ty));
        }
        ExprKind::Comma(a, b) => {
            out.push('(');
            write_expr(out, a);
            out.push_str(", ");
            write_expr(out, b);
            out.push(')');
        }
    }
}

/// Writes a sub-expression, parenthesizing compound forms. This is
/// deliberately conservative: extra parentheses keep the printer simple and
/// unambiguous, and the round-trip property test compares modulo this
/// (parse–print–parse is a fixed point).
fn write_operand(out: &mut String, e: &Expr) {
    let needs_parens = matches!(
        e.kind,
        ExprKind::Binary { .. }
            | ExprKind::Assign { .. }
            | ExprKind::Ternary { .. }
            | ExprKind::Comma(..)
            | ExprKind::Cast { .. }
            | ExprKind::Unary { .. }
    );
    if needs_parens {
        out.push('(');
        write_expr(out, e);
        out.push(')');
    } else {
        write_expr(out, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_stmt, parse_translation_unit};

    fn roundtrip_expr(src: &str) {
        let e1 = parse_expr(src).unwrap();
        let printed = print_expr(&e1);
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("re-parse of `{printed}` failed: {err}"));
        assert_eq!(
            strip_expr(&e1),
            strip_expr(&e2),
            "src: {src} printed: {printed}"
        );
    }

    /// Clears spans so structural comparison ignores positions.
    fn strip_expr(e: &Expr) -> Expr {
        use crate::token::Span;
        let mut e = e.clone();
        fn go(e: &mut Expr) {
            e.span = Span::default();
            match &mut e.kind {
                ExprKind::Call { callee, args } => {
                    go(callee);
                    args.iter_mut().for_each(go);
                }
                ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                    go(lhs);
                    go(rhs);
                }
                ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => go(operand),
                ExprKind::Ternary { cond, then, els } => {
                    go(cond);
                    go(then);
                    go(els);
                }
                ExprKind::Index { base, index } => {
                    go(base);
                    go(index);
                }
                ExprKind::Member { base, .. } => go(base),
                ExprKind::Cast { expr, .. } => go(expr),
                ExprKind::Comma(a, b) => {
                    go(a);
                    go(b);
                }
                _ => {}
            }
        }
        go(&mut e);
        e
    }

    #[test]
    fn roundtrip_expressions() {
        for src in [
            "1 + 2 * 3",
            "a = b = c | d & e",
            "PI_SEND(F_DATA, keep, swap, wait, dec, 0)",
            "HANDLER_GLOBALS(header.nh.len) = LEN_NODATA",
            "p->field[3].x",
            "a ? b + 1 : c(d)",
            "!(x && y) || ~z",
            "(unsigned)x + sizeof(struct Dir)",
            "buf[i++] = *p--",
            "a <<= 2",
        ] {
            roundtrip_expr(src);
        }
    }

    #[test]
    fn roundtrip_function() {
        let src = r#"
            static void NIRemotePut(void)
            {
                int i;
                unsigned len = 16;
                if (len > 0) {
                    for (i = 0; i < len; i++) {
                        MISCBUS_READ_DB(addr, buf);
                    }
                } else {
                    return;
                }
                switch (op) {
                case 1:
                    f();
                    break;
                default:
                    break;
                }
            }
        "#;
        let tu1 = parse_translation_unit(src, "t.c").unwrap();
        let printed = print_translation_unit(&tu1);
        let tu2 = parse_translation_unit(&printed, "t.c").unwrap();
        assert_eq!(tu1.functions().count(), tu2.functions().count());
        let f1 = tu1.function("NIRemotePut").unwrap();
        let f2 = tu2.function("NIRemotePut").unwrap();
        assert_eq!(f1.body.len(), f2.body.len());
    }

    #[test]
    fn print_is_fixed_point() {
        // print(parse(print(x))) == print(x): printing normalizes once.
        let src = "void f(void) { if (a) b(); else { c(); } while (d) e--; }";
        let tu1 = parse_translation_unit(src, "t.c").unwrap();
        let p1 = print_translation_unit(&tu1);
        let tu2 = parse_translation_unit(&p1, "t.c").unwrap();
        let p2 = print_translation_unit(&tu2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn stmt_printing_shapes() {
        let s = parse_stmt("do { x--; } while (x > 0);").unwrap();
        let text = print_stmt(&s);
        assert!(text.contains("do"));
        assert!(text.contains("while (x > 0);"));
    }

    #[test]
    fn preprocessor_lines_preserved() {
        let tu = parse_translation_unit("#include \"flash.h\"\nint g;", "t.c").unwrap();
        let printed = print_translation_unit(&tu);
        assert!(printed.starts_with("#include \"flash.h\""));
    }

    #[test]
    fn array_decl_printing() {
        let tu = parse_translation_unit("void f(void) { int buf[8]; buf[0] = 1; }", "t.c").unwrap();
        let printed = print_translation_unit(&tu);
        assert!(printed.contains("int buf[8];"));
    }
}
