//! Property tests: printing an AST and re-parsing it yields a structurally
//! identical AST (modulo spans), for randomly generated expressions and
//! statements.

use mc_ast::{
    parse_expr, parse_stmt, print_expr, print_stmt, BinaryOp, Expr, ExprKind, Initializer, Span,
    Stmt, StmtKind, Type, UnaryOp,
};
use proptest::prelude::*;

/// Strategy for identifier names that cannot collide with keywords.
fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| format!("v_{s}"))
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..100_000).prop_map(|v| Expr::synth(ExprKind::IntLit(v, v.to_string()))),
        ident().prop_map(|s| Expr::synth(ExprKind::Ident(s))),
        "[a-zA-Z ]{0,8}".prop_map(|s| Expr::synth(ExprKind::StrLit(s))),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
        Just(BinaryOp::Shl),
        Just(BinaryOp::Lt),
        Just(BinaryOp::Eq),
        Just(BinaryOp::BitAnd),
        Just(BinaryOp::BitOr),
        Just(BinaryOp::LogAnd),
        Just(BinaryOp::LogOr),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![
        Just(UnaryOp::Neg),
        Just(UnaryOp::Not),
        Just(UnaryOp::BitNot),
        Just(UnaryOp::Deref),
        Just(UnaryOp::AddrOf),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, lhs, rhs)| Expr::synth(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs)
                }
            )),
            (arb_unop(), inner.clone()).prop_map(|(op, operand)| Expr::synth(ExprKind::Unary {
                op,
                operand: Box::new(operand)
            })),
            (ident(), prop::collection::vec(inner.clone(), 0..4)).prop_map(|(name, args)| {
                Expr::synth(ExprKind::Call {
                    callee: Box::new(Expr::synth(ExprKind::Ident(name))),
                    args,
                })
            }),
            (inner.clone(), inner.clone()).prop_map(|(base, index)| Expr::synth(ExprKind::Index {
                base: Box::new(base),
                index: Box::new(index)
            })),
            (inner.clone(), ident(), any::<bool>()).prop_map(|(base, field, arrow)| Expr::synth(
                ExprKind::Member {
                    base: Box::new(base),
                    field,
                    arrow
                }
            )),
            (inner.clone(), inner.clone()).prop_map(|(lhs, rhs)| Expr::synth(ExprKind::Assign {
                op: None,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs)
            })),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, t, e)| Expr::synth(
                ExprKind::Ternary {
                    cond: Box::new(c),
                    then: Box::new(t),
                    els: Box::new(e)
                }
            )),
        ]
    })
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        arb_expr().prop_map(|e| Stmt::synth(StmtKind::Expr(e))),
        Just(Stmt::synth(StmtKind::Empty)),
        Just(Stmt::synth(StmtKind::Break)),
        Just(Stmt::synth(StmtKind::Continue)),
        Just(Stmt::synth(StmtKind::Return(None))),
        arb_expr().prop_map(|e| Stmt::synth(StmtKind::Return(Some(e)))),
        (ident(), prop::option::of(arb_expr())).prop_map(|(name, init)| {
            Stmt::synth(StmtKind::Decl(mc_ast::Declaration {
                storage: Default::default(),
                ty: Type::int(),
                name,
                init: init.map(Initializer::Expr),
                span: Span::default(),
            }))
        }),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4)
                .prop_map(|body| Stmt::synth(StmtKind::Block(body))),
            (arb_expr(), inner.clone(), prop::option::of(inner.clone())).prop_map(
                |(cond, then, els)| Stmt::synth(StmtKind::If {
                    cond,
                    then: Box::new(then),
                    els: els.map(Box::new)
                })
            ),
            (arb_expr(), inner.clone()).prop_map(|(cond, body)| Stmt::synth(StmtKind::While {
                cond,
                body: Box::new(body)
            })),
            (inner.clone(), arb_expr()).prop_map(|(body, cond)| Stmt::synth(StmtKind::DoWhile {
                body: Box::new(body),
                cond
            })),
        ]
    })
}

/// Structural equality ignoring spans and literal text spelling.
fn normalize_expr(e: &Expr) -> String {
    // Printing is itself a normal form: compare by second-print.
    print_expr(e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_roundtrip(e in arb_expr()) {
        let printed = print_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("re-parse failed for `{printed}`: {err}"));
        // parse . print must be a fixed point
        prop_assert_eq!(normalize_expr(&reparsed), printed);
    }

    #[test]
    fn stmt_roundtrip(s in arb_stmt()) {
        let printed = print_stmt(&s);
        let reparsed = parse_stmt(&printed)
            .unwrap_or_else(|err| panic!("re-parse failed for:\n{printed}\nerror: {err}"));
        prop_assert_eq!(print_stmt(&reparsed), printed);
    }

    #[test]
    fn parser_never_panics_on_random_input(src in "[ -~\\n]{0,200}") {
        // Arbitrary printable input must produce Ok or Err, never a panic.
        let _ = mc_ast::parse_translation_unit(&src, "fuzz.c");
    }
}
