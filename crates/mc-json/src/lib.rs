//! # mc-json
//!
//! A minimal, dependency-free JSON library for the flash-mc workspace:
//! a [`Json`] value tree, a strict parser, compact and pretty writers,
//! and the [`ToJson`] / [`FromJson`] conversion traits the other crates
//! implement for their serializable types (reports, emitted flow graphs,
//! `FlashSpec` tables).
//!
//! The compact writer emits the same byte sequence `serde_json` would for
//! the types used here (`{"key":value,...}` with no whitespace), and the
//! pretty writer uses two-space indentation — both formats are pinned by
//! the CLI tests.

#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (JSON numbers without fraction or exponent).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved by the writer.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value as `f64` (integers convert losslessly enough).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, 0, &mut out);
        out
    }

    /// Parses a JSON document. The entire input must be consumed.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(v)
    }
}

/// A parse or conversion error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// A "field has the wrong type / is missing" error.
    pub fn expected(what: &str) -> JsonError {
        JsonError(format!("expected {what}"))
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Converts a JSON value to `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] if the value has the wrong shape.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serializes a value compactly (the `serde_json::to_string` analog).
pub fn to_string<T: ToJson + ?Sized>(v: &T) -> String {
    v.to_json().to_compact()
}

/// Serializes a value with indentation (`serde_json::to_string_pretty`).
pub fn to_string_pretty<T: ToJson + ?Sized>(v: &T) -> String {
    v.to_json().to_pretty()
}

/// Parses and converts (`serde_json::from_str`).
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or shape mismatch.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(s)?)
}

// ---------------------------------------------------------------- writers

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = format!("{v}");
        // Ensure floats stay floats on re-parse.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            out.push_str(&s);
        } else {
            out.push_str(&s);
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_compact(v: &Json, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(n) => out.push_str(&n.to_string()),
        Json::Float(f) => write_float(*f, out),
        Json::Str(s) => write_escaped(s, out),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Json::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_pretty(v: &Json, depth: usize, out: &mut String) {
    match v {
        Json::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push(']');
        }
        Json::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(depth + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(JsonError(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Json::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Json::Bool(false))
            }
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(JsonError(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(JsonError("unexpected end of input".into())),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => {
                    return Err(JsonError(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => {
                    return Err(JsonError(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError("invalid utf-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((cp - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| JsonError("invalid \\u escape".into()))?);
                            continue;
                        }
                        _ => return Err(JsonError(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                _ => return Err(JsonError("unterminated string".into())),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(JsonError("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| JsonError("bad \\u escape".into()))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| JsonError("bad \\u escape".into()))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError("bad number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| JsonError(format!("bad number `{text}`")))
        } else {
            // Large u64 values (e.g. seeds) overflow i64; fall back to f64
            // rather than reject, matching serde_json's arbitrary precision
            // spirit without the machinery.
            text.parse::<i64>().map(Json::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| JsonError(format!("bad number `{text}`")))
            })
        }
    }
}

// --------------------------------------------------- blanket conversions

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::expected("bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::expected("string"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::expected("number"))
    }
}

macro_rules! int_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let n = v.as_i64().ok_or_else(|| JsonError::expected("integer"))?;
                <$t>::try_from(n).map_err(|_| JsonError::expected(stringify!($t)))
            }
        }
    )*};
}

int_json!(i8, i16, i32, i64, u8, u16, u32, usize);

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        match i64::try_from(*self) {
            Ok(v) => Json::Int(v),
            Err(_) => Json::Float(*self as f64),
        }
    }
}

impl FromJson for u64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Int(n) => u64::try_from(*n).map_err(|_| JsonError::expected("u64")),
            Json::Float(f) if *f >= 0.0 => Ok(*f as u64),
            _ => Err(JsonError::expected("u64")),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::expected("array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + fmt::Debug, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let vec: Vec<T> = Vec::from_json(v)?;
        <[T; N]>::try_from(vec).map_err(|_| JsonError(format!("expected array of {N}")))
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl ToJson for BTreeSet<String> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(|s| Json::Str(s.clone())).collect())
    }
}

impl FromJson for BTreeSet<String> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::expected("array"))?
            .iter()
            .map(String::from_json)
            .collect()
    }
}

impl<V: ToJson> ToJson for BTreeMap<String, V> {
    fn to_json(&self) -> Json {
        Json::Object(self.iter().map(|(k, v)| (k.clone(), v.to_json())).collect())
    }
}

impl<V: FromJson> FromJson for BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_object()
            .ok_or_else(|| JsonError::expected("object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_json(val)?)))
            .collect()
    }
}

/// Builds a `Json::Object` from `(key, value)` pairs; the building block
/// for hand-written [`ToJson`] impls.
pub fn object(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Reads a required field from an object.
///
/// # Errors
///
/// Returns [`JsonError`] if `v` is not an object, the field is absent, or
/// the field has the wrong shape.
pub fn field<T: FromJson>(v: &Json, name: &str) -> Result<T, JsonError> {
    let f = v
        .get(name)
        .ok_or_else(|| JsonError(format!("missing field `{name}`")))?;
    T::from_json(f).map_err(|e| JsonError(format!("field `{name}`: {}", e.0)))
}

/// Reads an optional field from an object, substituting `T::default()`
/// when the field is absent or `null` (the `#[serde(default)]` analog).
///
/// # Errors
///
/// Returns [`JsonError`] if the field is present but has the wrong shape.
pub fn field_or_default<T: FromJson + Default>(v: &Json, name: &str) -> Result<T, JsonError> {
    match v.get(name) {
        None | Some(Json::Null) => Ok(T::default()),
        Some(f) => T::from_json(f).map_err(|e| JsonError(format!("field `{name}`: {}", e.0))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_matches_serde_style() {
        let v = object(vec![
            ("a", Json::Int(1)),
            ("b", Json::Array(vec![Json::Int(1), Json::Int(2)])),
            ("c", Json::Str("x\"y".into())),
        ]);
        assert_eq!(v.to_compact(), r#"{"a":1,"b":[1,2],"c":"x\"y"}"#);
    }

    #[test]
    fn parse_roundtrip() {
        let src = r#"{"a": 1, "b": [true, null, -2.5], "s": "line\nbreak A"}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_i64), Some(1));
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("s").and_then(Json::as_str), Some("line\nbreak A"));
        let back = Json::parse(&v.to_compact()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_is_reparseable() {
        let v = object(vec![
            (
                "outer",
                object(vec![("inner", Json::Array(vec![Json::Int(1)]))]),
            ),
            ("empty", Json::Array(vec![])),
        ]);
        let pretty = v.to_pretty();
        assert!(pretty.contains("\n  \"outer\": {"));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
    }

    #[test]
    fn collections_roundtrip() {
        let mut m: BTreeMap<String, [u32; 4]> = BTreeMap::new();
        m.insert("h".into(), [1, 2, 3, 4]);
        let j = m.to_json();
        let back: BTreeMap<String, [u32; 4]> = FromJson::from_json(&j).unwrap();
        assert_eq!(m, back);

        let s: BTreeSet<String> = ["a", "b"].iter().map(|s| s.to_string()).collect();
        let back: BTreeSet<String> = FromJson::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn default_fields() {
        let v = Json::parse(r#"{"present": 7}"#).unwrap();
        let p: u32 = field_or_default(&v, "present").unwrap();
        let a: u32 = field_or_default(&v, "absent").unwrap();
        assert_eq!((p, a), (7, 0));
        assert!(field::<u32>(&v, "absent").is_err());
    }

    #[test]
    fn u64_full_range() {
        let big = u64::MAX;
        let j = big.to_json();
        // Round-trips through f64 with precision loss at the extreme, but
        // stays a number and stays positive.
        let back = u64::from_json(&j).unwrap();
        assert!(back > u64::MAX / 2);
        let small: u64 = FromJson::from_json(&Json::Int(42)).unwrap();
        assert_eq!(small, 42);
    }
}
