//! The machine model: nodes, data-buffer pools, lanes, directories, and
//! the event-driven simulation loop.

use crate::interp::{run_handler, InterpError};
use mc_ast::{parse_translation_unit, Function, ParseError, TranslationUnit};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// A parsed protocol ready to simulate.
#[derive(Debug, Clone, Default)]
pub struct Program {
    functions: HashMap<String, Function>,
    /// Enum constants and const-initialized globals from the sources,
    /// visible to every handler.
    constants: HashMap<String, i64>,
}

impl Program {
    /// Parses one source string into a program.
    ///
    /// # Errors
    ///
    /// Returns the parse error of the first malformed source.
    pub fn parse(src: &str) -> Result<Program, ParseError> {
        Program::from_sources(&[(src.to_string(), "sim.c".to_string())])
    }

    /// Parses several `(source, name)` pairs into one program.
    ///
    /// # Errors
    ///
    /// Returns the parse error of the first malformed source.
    pub fn from_sources(sources: &[(String, String)]) -> Result<Program, ParseError> {
        let mut units = Vec::new();
        for (src, name) in sources {
            units.push(parse_translation_unit(src, name)?);
        }
        Ok(Program::from_units(&units))
    }

    /// Builds a program from already-parsed units.
    pub fn from_units(units: &[TranslationUnit]) -> Program {
        let mut functions = HashMap::new();
        let mut constants = HashMap::new();
        for tu in units {
            collect(tu, &mut functions, &mut constants);
        }
        Program {
            functions,
            constants,
        }
    }

    /// Looks up an enum or global constant declared in the sources.
    pub fn constant(&self, name: &str) -> Option<i64> {
        self.constants.get(name).copied()
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.get(name)
    }

    /// Number of functions available to the simulator.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the program has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

fn collect(
    tu: &TranslationUnit,
    out: &mut HashMap<String, Function>,
    constants: &mut HashMap<String, i64>,
) {
    use mc_ast::{ExprKind, ExternalDecl, Initializer, Item};
    for item in &tu.items {
        match item {
            Item::Function(f) => {
                out.insert(f.name.clone(), f.clone());
            }
            Item::Decl(ExternalDecl::EnumDef { variants, .. }) => {
                // C enum semantics: implicit values continue from the last
                // explicit one.
                let mut next = 0i64;
                for (name, value) in variants {
                    let v = value.unwrap_or(next);
                    constants.insert(name.clone(), v);
                    next = v + 1;
                }
            }
            Item::Decl(ExternalDecl::Var(d)) => {
                if let Some(Initializer::Expr(e)) = &d.init {
                    if let ExprKind::IntLit(v, _) = e.kind {
                        constants.insert(d.name.clone(), v);
                    }
                }
            }
            _ => {}
        }
    }
}

/// Configuration of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Data buffers per node (the real MAGIC had a small fixed pool; a
    /// slow leak therefore deadlocks only after long runs).
    pub buffers_per_node: usize,
    /// Capacity of each incoming lane queue.
    pub lane_capacity: usize,
    /// Stop after this many handler invocations.
    pub max_handler_runs: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nodes: 4,
            buffers_per_node: 16,
            lane_capacity: 64,
            max_handler_runs: 100_000,
        }
    }
}

/// A message in flight (or queued at its destination).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Name of the handler to run at the destination.
    pub opcode: String,
    /// Sending node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Lane (0–3).
    pub lane: usize,
    /// The header length field, as set by `HANDLER_GLOBALS(header.nh.len)`.
    pub len: i64,
    /// The has-data send parameter (`F_DATA`).
    pub has_data: bool,
    /// Message body (cache line words).
    pub data: Vec<i64>,
}

/// The reference-counted data-buffer pool of one node.
#[derive(Debug, Clone)]
pub struct BufferPool {
    refcounts: Vec<u32>,
    filled: Vec<bool>,
    /// Words of each buffer.
    pub payloads: Vec<Vec<i64>>,
    free_list: Vec<usize>,
}

impl BufferPool {
    /// Creates a pool of `n` buffers.
    pub fn new(n: usize) -> BufferPool {
        BufferPool {
            refcounts: vec![0; n],
            filled: vec![false; n],
            payloads: vec![vec![0; 16]; n],
            free_list: (0..n).rev().collect(),
        }
    }

    /// Allocates a buffer (refcount 1), or `None` if the pool is dry.
    pub fn alloc(&mut self) -> Option<usize> {
        let idx = self.free_list.pop()?;
        self.refcounts[idx] = 1;
        self.filled[idx] = false;
        self.payloads[idx].fill(0);
        Some(idx)
    }

    /// Increments a buffer's refcount (the §11 manual bump).
    pub fn incref(&mut self, idx: usize) {
        self.refcounts[idx] += 1;
    }

    /// Decrements a refcount; returns `false` on a double free. The buffer
    /// returns to the free list when the count reaches zero.
    pub fn decref(&mut self, idx: usize) -> bool {
        if self.refcounts[idx] == 0 {
            return false;
        }
        self.refcounts[idx] -= 1;
        if self.refcounts[idx] == 0 {
            self.free_list.push(idx);
        }
        true
    }

    /// Marks the buffer as completely filled by the hardware.
    pub fn fill(&mut self, idx: usize) {
        self.filled[idx] = true;
    }

    /// Whether the hardware has finished filling the buffer.
    pub fn is_filled(&self, idx: usize) -> bool {
        self.filled[idx]
    }

    /// Buffers currently available.
    pub fn available(&self) -> usize {
        self.free_list.len()
    }

    /// Live (non-free) buffers.
    pub fn in_use(&self) -> usize {
        self.refcounts.len() - self.free_list.len()
    }
}

/// A directory entry (state plus sharer pointer), with the handler-local
/// in-memory copy modelled by the interpreter context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirEntry {
    /// Coherence state (protocol-defined constant).
    pub state: i64,
    /// Sharer pointer / vector word.
    pub ptr: i64,
}

/// One FLASH node: MAGIC controller state.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node id.
    pub id: usize,
    /// Data buffers.
    pub buffers: BufferPool,
    /// Incoming lane queues.
    pub lanes: [VecDeque<Message>; 4],
    /// The directory for lines this node homes.
    pub directory: BTreeMap<i64, DirEntry>,
    /// Node-local globals visible to handlers.
    pub globals: HashMap<String, i64>,
    /// Set when the node can no longer make progress.
    pub wedged: bool,
}

impl Node {
    fn new(id: usize, buffers: usize) -> Node {
        Node {
            id,
            buffers: BufferPool::new(buffers),
            lanes: Default::default(),
            directory: BTreeMap::new(),
            globals: HashMap::new(),
            wedged: false,
        }
    }

    /// Total queued messages across lanes.
    pub fn queued(&self) -> usize {
        self.lanes.iter().map(|l| l.len()).sum()
    }
}

/// Observable simulation events — the dynamic manifestations of the bug
/// classes the static checkers hunt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimEvent {
    /// A handler ran to completion.
    HandlerRan {
        /// Node it ran on.
        node: usize,
        /// Handler name.
        handler: String,
    },
    /// A node needed a buffer for an incoming message and had none: the
    /// classic slow-leak deadlock.
    BufferExhausted {
        /// The starved node.
        node: usize,
        /// Handler-invocation count when it happened.
        time: u64,
    },
    /// `DB_FREE` on a buffer whose refcount was already zero.
    DoubleFree {
        /// Node.
        node: usize,
        /// Offending handler.
        handler: String,
    },
    /// A handler finished while still holding a buffer reference (leak).
    BufferLeaked {
        /// Node.
        node: usize,
        /// Offending handler.
        handler: String,
    },
    /// `MISCBUS_READ_DB` before `WAIT_FOR_DB_FULL`: the read raced the
    /// hardware fill and observed garbage.
    UnsynchronizedRead {
        /// Node.
        node: usize,
        /// Offending handler.
        handler: String,
    },
    /// An outgoing message whose header length disagrees with its has-data
    /// parameter (the Figure 3 bug class): data corruption on the wire.
    InconsistentLength {
        /// Sending node.
        node: usize,
        /// Offending handler.
        handler: String,
        /// Header length field.
        len: i64,
        /// The send's has-data flag.
        has_data: bool,
    },
    /// A destination lane queue overflowed (lane-quota violation class).
    LaneOverflow {
        /// Destination node.
        node: usize,
        /// Lane index.
        lane: usize,
    },
    /// Handler exited with a modified, unwritten directory entry: the
    /// next handler for the line will see stale state.
    StaleDirectory {
        /// Node.
        node: usize,
        /// Offending handler.
        handler: String,
    },
    /// Handler exited with a waited send still pending (send-wait class).
    MissedWait {
        /// Node.
        node: usize,
        /// Offending handler.
        handler: String,
    },
    /// The interpreter aborted the handler (step/depth budget, missing
    /// function, FATAL_ERROR).
    HandlerFault {
        /// Node.
        node: usize,
        /// Handler name.
        handler: String,
        /// Why.
        reason: String,
    },
}

/// The simulated FLASH machine.
#[derive(Debug)]
pub struct Machine {
    /// The protocol being run.
    pub program: Program,
    /// Per-node state.
    pub nodes: Vec<Node>,
    config: SimConfig,
    events: Vec<SimEvent>,
    handler_runs: u64,
    rr: usize,
    opcodes: HashMap<i64, String>,
}

impl Machine {
    /// Creates a machine running `program`.
    pub fn new(program: Program, config: SimConfig) -> Machine {
        let nodes = (0..config.nodes)
            .map(|i| Node::new(i, config.buffers_per_node))
            .collect();
        Machine {
            program,
            nodes,
            config,
            events: Vec::new(),
            handler_runs: 0,
            rr: 0,
            opcodes: HashMap::new(),
        }
    }

    /// Registers a message-type constant so handlers can address each
    /// other: an outgoing message whose `header.nh.type` equals `code`
    /// runs `handler` at its destination.
    pub fn register_opcode(&mut self, code: i64, handler: &str) {
        self.opcodes.insert(code, handler.to_string());
    }

    /// Resolves a message-type value to a handler name (empty = sink).
    pub(crate) fn opcode_handler(&self, code: i64) -> String {
        self.opcodes.get(&code).cloned().unwrap_or_default()
    }

    /// Sets a node-local global visible to handlers (e.g. `gErrCase`).
    pub fn set_global(&mut self, node: usize, name: &str, value: i64) {
        self.nodes[node].globals.insert(name.to_string(), value);
    }

    /// Injects an incoming message for `handler` at `node` (lane 2,
    /// request).
    pub fn inject(&mut self, node: usize, handler: &str) {
        self.inject_message(Message {
            opcode: handler.to_string(),
            src: node,
            dst: node,
            lane: 2,
            len: 0,
            has_data: true,
            data: vec![7; 16],
        });
    }

    /// Enqueues an arbitrary message, recording lane overflow.
    pub fn inject_message(&mut self, m: Message) {
        let node = &mut self.nodes[m.dst];
        let lane = m.lane.min(3);
        if node.lanes[lane].len() >= self.config.lane_capacity {
            self.events
                .push(SimEvent::LaneOverflow { node: m.dst, lane });
            node.wedged = true;
            return;
        }
        node.lanes[lane].push_back(m);
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Number of handler invocations so far.
    pub fn handler_runs(&self) -> u64 {
        self.handler_runs
    }

    /// Whether any node is wedged (deadlocked).
    pub fn deadlocked(&self) -> bool {
        self.nodes.iter().any(|n| n.wedged)
    }

    /// Runs one handler somewhere, if any message is deliverable.
    /// Returns `false` when nothing could run.
    pub fn step(&mut self) -> bool {
        if self.handler_runs >= self.config.max_handler_runs {
            return false;
        }
        let n = self.nodes.len();
        for off in 0..n {
            let idx = (self.rr + off) % n;
            if self.nodes[idx].wedged || self.nodes[idx].queued() == 0 {
                continue;
            }
            self.rr = idx + 1;
            self.deliver_one(idx);
            return true;
        }
        false
    }

    /// Runs until quiescent, wedged, or out of budget.
    pub fn run(&mut self) {
        while self.step() {}
    }

    fn deliver_one(&mut self, node_idx: usize) {
        // Pop from the lowest non-empty lane (replies drain first on real
        // hardware; lane 3 is replies, so scan from 3 downwards).
        let msg = {
            let node = &mut self.nodes[node_idx];
            let lane = (0..4usize).rev().find(|&l| !node.lanes[l].is_empty());
            match lane {
                Some(l) => node.lanes[l].pop_front().expect("non-empty lane"),
                None => return,
            }
        };
        // Software handlers are scheduled without a data buffer (they
        // allocate their own); hardware dispatch allocates one for the
        // incoming message.
        let is_software = msg.opcode.starts_with("SW");
        let buf = if is_software {
            None
        } else {
            match self.nodes[node_idx].buffers.alloc() {
                Some(b) => Some(b),
                None => {
                    self.events.push(SimEvent::BufferExhausted {
                        node: node_idx,
                        time: self.handler_runs,
                    });
                    self.nodes[node_idx].wedged = true;
                    return;
                }
            }
        };
        if let Some(buf) = buf {
            self.nodes[node_idx].buffers.payloads[buf][..msg.data.len().min(16)]
                .copy_from_slice(&msg.data[..msg.data.len().min(16)]);
        }
        self.handler_runs += 1;

        let handler = msg.opcode.clone();
        let Some(func) = self.program.function(&handler).cloned() else {
            // Built-in sink: consume the message and free the buffer.
            if let Some(buf) = buf {
                let _ = self.nodes[node_idx].buffers.decref(buf);
            }
            self.events.push(SimEvent::HandlerRan {
                node: node_idx,
                handler,
            });
            return;
        };

        let src = msg.src;
        match run_handler(
            self,
            node_idx,
            buf.map(|b| b as i64).unwrap_or(-1),
            src,
            &func,
        ) {
            Ok(outcome) => {
                if outcome.missed_wait {
                    self.events.push(SimEvent::MissedWait {
                        node: node_idx,
                        handler: handler.clone(),
                    });
                }
                if outcome.stale_directory {
                    self.events.push(SimEvent::StaleDirectory {
                        node: node_idx,
                        handler: handler.clone(),
                    });
                }
                self.events.push(SimEvent::HandlerRan {
                    node: node_idx,
                    handler: handler.clone(),
                });
            }
            Err(InterpError::Fault(reason)) => {
                self.events.push(SimEvent::HandlerFault {
                    node: node_idx,
                    handler: handler.clone(),
                    reason,
                });
            }
        }
        // A live refcount after the handler returns is a leak: the buffer
        // never returns to the pool (exactly the FLASH low-grade leak).
        if let Some(buf) = buf {
            if self.nodes[node_idx].buffers.refcounts[buf] > 0 {
                self.events.push(SimEvent::BufferLeaked {
                    node: node_idx,
                    handler,
                });
            }
        }
    }

    /// Internal: records an event from the interpreter.
    pub(crate) fn record(&mut self, e: SimEvent) {
        self.events.push(e);
    }

    /// Internal: next node id for an outgoing network send.
    pub(crate) fn remote_of(&self, node: usize) -> usize {
        (node + 1) % self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_alloc_free_cycle() {
        let mut p = BufferPool::new(2);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        assert_ne!(a, b);
        assert!(p.alloc().is_none());
        assert!(p.decref(a));
        assert_eq!(p.available(), 1);
        assert!(p.alloc().is_some());
    }

    #[test]
    fn pool_double_free_detected() {
        let mut p = BufferPool::new(1);
        let a = p.alloc().unwrap();
        assert!(p.decref(a));
        assert!(!p.decref(a));
    }

    #[test]
    fn pool_refcount_bump() {
        let mut p = BufferPool::new(1);
        let a = p.alloc().unwrap();
        p.incref(a);
        assert!(p.decref(a));
        assert_eq!(p.available(), 0); // still held
        assert!(p.decref(a));
        assert_eq!(p.available(), 1);
    }

    #[test]
    fn unknown_opcode_sinks_cleanly() {
        let mut m = Machine::new(Program::default(), SimConfig::default());
        m.inject(0, "NoSuchHandler");
        m.run();
        assert_eq!(m.nodes[0].buffers.in_use(), 0);
        assert!(!m.deadlocked());
    }

    #[test]
    fn lane_overflow_wedges_node() {
        let cfg = SimConfig {
            lane_capacity: 2,
            ..Default::default()
        };
        let mut m = Machine::new(Program::default(), cfg);
        for _ in 0..3 {
            m.inject(1, "X");
        }
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::LaneOverflow { node: 1, lane: 2 })));
        assert!(m.deadlocked());
    }

    #[test]
    fn handler_budget_caps_run() {
        let cfg = SimConfig {
            max_handler_runs: 5,
            ..Default::default()
        };
        let mut m = Machine::new(Program::default(), cfg);
        for _ in 0..10 {
            m.inject(0, "X");
        }
        m.run();
        assert_eq!(m.handler_runs(), 5);
    }
}
