//! Concrete witness replay: run a handler under a solver model and watch
//! for the dynamic event that corresponds to a static checker's bug class.
//!
//! This is the confirmation half of the refutation pipeline. The symbolic
//! executor (`mc-symx`) decides whether a report's witness path *can*
//! execute; when it can, its model — initial values for the plain globals
//! the path reads — is injected here and the handler actually runs. A
//! report whose violation reproduces dynamically is promoted to
//! `confirmed`: the reviewer gets a concrete input, not just a path.

use crate::machine::{Machine, Program, SimConfig, SimEvent};

/// The dynamic event classes one static checker's reports correspond to.
///
/// Returns `None` for checkers whose violations have no dynamic
/// manifestation the simulator observes (`alloc_check` guards a
/// compile-time allocation discipline; `exec_restrict` a static layering
/// rule) — their reports are never promoted.
fn event_matches(checker: &str, handler: &str, ev: &SimEvent) -> Option<bool> {
    let hit = match checker {
        "wait_for_db" => {
            matches!(ev, SimEvent::UnsynchronizedRead { handler: h, .. } if h == handler)
        }
        "msglen_check" => {
            matches!(ev, SimEvent::InconsistentLength { handler: h, .. } if h == handler)
        }
        "buffer_mgmt" | "refcount_bump" => matches!(
            ev,
            SimEvent::DoubleFree { handler: h, .. } | SimEvent::BufferLeaked { handler: h, .. }
                if h == handler
        ),
        "directory" => matches!(ev, SimEvent::StaleDirectory { handler: h, .. } if h == handler),
        "send_wait" => matches!(ev, SimEvent::MissedWait { handler: h, .. } if h == handler),
        "lanes" => matches!(ev, SimEvent::LaneOverflow { .. }),
        _ => return None,
    };
    Some(hit)
}

/// Whether `checker`'s reports have a dynamic manifestation [`replay`] can
/// observe at all.
pub fn replayable_checker(checker: &str) -> bool {
    event_matches(checker, "", &SimEvent::LaneOverflow { node: 0, lane: 0 }).is_some()
}

/// Runs `handler` on a one-shot machine with the model's globals injected,
/// and reports whether the dynamic event matching `checker` fired.
///
/// The run is deterministic: a fixed default machine, one injection, and
/// an interpreter with no randomness — so promotion decisions are stable
/// across runs, worker counts, and cache state. A `false` return is *not*
/// evidence the report is wrong (the model may bind too few globals, or
/// the violation may need cross-handler state); it only means the report
/// stays at its symbolic verdict.
pub fn replay(program: Program, checker: &str, handler: &str, model: &[(String, i64)]) -> bool {
    if program.function(handler).is_none() || !replayable_checker(checker) {
        return false;
    }
    let mut machine = Machine::new(program, SimConfig::default());
    for (name, value) in model {
        machine.set_global(0, name, *value);
    }
    machine.inject(0, handler);
    machine.run();
    machine
        .events()
        .iter()
        .any(|ev| event_matches(checker, handler, ev).unwrap_or(false))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confirms_a_real_unsynchronized_read() {
        let program = Program::parse(
            "void Racy(void) {\n\
             HANDLER_DEFS();\n\
             HANDLER_PROLOGUE();\n\
             if (gLen > 4) { MISCBUS_READ_DB(addr, buf); }\n\
             DB_FREE();\n\
             }",
        )
        .unwrap();
        // The guard needs the model: without gLen the branch stays cold
        // and nothing reproduces.
        assert!(replay(
            program.clone(),
            "wait_for_db",
            "Racy",
            &[("gLen".into(), 5)]
        ));
        assert!(!replay(program, "wait_for_db", "Racy", &[]));
    }

    #[test]
    fn wrong_checker_or_handler_never_confirms() {
        let program = Program::parse(
            "void Racy(void) {\n\
             HANDLER_DEFS();\n\
             HANDLER_PROLOGUE();\n\
             MISCBUS_READ_DB(addr, buf);\n\
             DB_FREE();\n\
             }",
        )
        .unwrap();
        assert!(!replay(program.clone(), "send_wait", "Racy", &[]));
        assert!(!replay(program.clone(), "alloc_check", "Racy", &[]));
        assert!(!replay(program, "wait_for_db", "Missing", &[]));
    }

    #[test]
    fn static_discipline_checkers_are_not_replayable() {
        assert!(replayable_checker("wait_for_db"));
        assert!(replayable_checker("msglen_check"));
        assert!(replayable_checker("buffer_mgmt"));
        assert!(replayable_checker("directory"));
        assert!(replayable_checker("send_wait"));
        assert!(replayable_checker("lanes"));
        assert!(!replayable_checker("alloc_check"));
        assert!(!replayable_checker("exec_restrict"));
    }
}
