//! # mc-sim
//!
//! A FlashLite-analog protocol simulator: a small multi-node machine model
//! (MAGIC-style node controllers with data-buffer pools, four network
//! lanes, and a directory) driving an AST **interpreter** for the FLASH
//! handler subset.
//!
//! The paper motivates the checkers with the observation that protocol
//! bugs "show up sporadically only after days of continuous use" and are
//! then nearly impossible to diagnose. This crate makes that claim
//! demonstrable: run a handler with a seeded buffer leak under message
//! load and watch the node's buffer pool drain until the machine
//! deadlocks — then run the fixed handler and watch it stay healthy. The
//! same bug is found statically by the checkers in milliseconds.
//!
//! # Example
//!
//! ```
//! use mc_sim::{Machine, Program, SimConfig, SimEvent};
//!
//! // A handler that leaks its data buffer on the error path.
//! let program = Program::parse(r#"
//!     void NILeaky(void) {
//!         HANDLER_DEFS();
//!         HANDLER_PROLOGUE();
//!         if (gErrCase) {
//!             return;      /* forgot DB_FREE() */
//!         }
//!         DB_FREE();
//!     }
//! "#).unwrap();
//! let mut machine = Machine::new(program, SimConfig { nodes: 2, buffers_per_node: 4, ..Default::default() });
//! machine.set_global(0, "gErrCase", 1);
//! for _ in 0..16 { machine.inject(0, "NILeaky"); }
//! machine.run();
//! assert!(machine
//!     .events()
//!     .iter()
//!     .any(|e| matches!(e, SimEvent::BufferExhausted { .. })));
//! ```

#![warn(missing_docs)]

mod interp;
mod machine;
mod replay;

pub use interp::{InterpError, Outcome, MAX_CALL_DEPTH, MAX_STEPS_PER_HANDLER};
pub use machine::{BufferPool, DirEntry, Machine, Message, Node, Program, SimConfig, SimEvent};
pub use replay::{replay, replayable_checker};
