//! The handler interpreter: executes FLASH protocol C against the machine
//! model, mapping the FLASH macros onto machine effects.

use crate::machine::{DirEntry, Machine, Message, SimEvent};
use mc_ast::{BinaryOp, Expr, ExprKind, Function, Initializer, Stmt, StmtKind, UnaryOp};
use std::collections::HashMap;

/// Statement budget per handler invocation (loops in handlers are short;
/// a blown budget indicates a runaway loop).
pub const MAX_STEPS_PER_HANDLER: u64 = 100_000;

/// Call-depth budget (recursion in handlers is rare and shallow).
pub const MAX_CALL_DEPTH: usize = 32;

/// An interpreter failure that aborts the current handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// The handler faulted (budget exhausted, FATAL_ERROR, unsupported
    /// construct).
    Fault(String),
}

/// What the handler's execution left behind, beyond machine effects.
#[derive(Debug, Clone, Copy, Default)]
pub struct Outcome {
    /// A waited send was never waited for.
    pub missed_wait: bool,
    /// The directory copy was modified but never written back.
    pub stale_directory: bool,
}

/// Runs `func` as a message handler on `node` with incoming buffer `buf`.
///
/// # Errors
///
/// Returns [`InterpError::Fault`] if the handler faulted.
pub fn run_handler(
    machine: &mut Machine,
    node: usize,
    buf: i64,
    msg_src: usize,
    func: &Function,
) -> Result<Outcome, InterpError> {
    let mut ctx = Ctx {
        machine,
        node,
        current_buf: buf,
        handler: func.name.clone(),
        out_len: 0,
        out_dest: None,
        out_type: 0,
        msg_src: msg_src as i64,
        pending_wait: None,
        dir_loaded: false,
        dir_modified: false,
        dir_copy: DirEntry::default(),
        dir_line: 0,
        steps: 0,
        depth: 0,
    };
    ctx.call_function(func, &[])?;
    Ok(Outcome {
        missed_wait: ctx.pending_wait.is_some(),
        stale_directory: ctx.dir_modified,
    })
}

/// Control flow out of a statement.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(i64),
}

struct Ctx<'m> {
    machine: &'m mut Machine,
    node: usize,
    /// The "current buffer pointer" of the handler (−1 when none).
    current_buf: i64,
    handler: String,
    out_len: i64,
    /// Destination override for the next network send
    /// (`HANDLER_GLOBALS(header.nh.dest) = n`).
    out_dest: Option<i64>,
    /// Message-type of the next network send
    /// (`HANDLER_GLOBALS(header.nh.type) = t`), resolved through the
    /// machine's opcode registry at the destination.
    out_type: i64,
    /// Source node of the message being handled
    /// (`HANDLER_GLOBALS(header.nh.src)`).
    msg_src: i64,
    pending_wait: Option<&'static str>,
    dir_loaded: bool,
    dir_modified: bool,
    dir_copy: DirEntry,
    dir_line: i64,
    steps: u64,
    depth: usize,
}

/// Values of the FLASH constants the interpreter understands.
fn const_value(name: &str) -> Option<i64> {
    Some(match name {
        "F_DATA" => 1,
        "F_NODATA" => 0,
        "W_WAIT" => 1,
        "W_NOWAIT" => 0,
        "LEN_NODATA" => 0,
        "LEN_WORD" => 1,
        "LEN_CACHELINE" => 16,
        "DB_FAIL" => -1,
        "MSG_REQ" => 100,
        "MSG_REPLY" => 101,
        "MSG_NAK" => 102,
        "DIR_IDLE" => 0,
        "DIR_SHARED" => 1,
        "DIR_DIRTY" => 2,
        "DIR_PENDING" => 3,
        _ => return None,
    })
}

impl Ctx<'_> {
    fn fault<T>(&self, msg: impl Into<String>) -> Result<T, InterpError> {
        Err(InterpError::Fault(msg.into()))
    }

    fn tick(&mut self) -> Result<(), InterpError> {
        self.steps += 1;
        if self.steps > MAX_STEPS_PER_HANDLER {
            return self.fault("handler exceeded its step budget (runaway loop)");
        }
        Ok(())
    }

    fn call_function(&mut self, func: &Function, args: &[i64]) -> Result<i64, InterpError> {
        self.depth += 1;
        if self.depth > MAX_CALL_DEPTH {
            self.depth -= 1;
            return self.fault("call depth exceeded");
        }
        let mut locals: HashMap<String, i64> = HashMap::new();
        for (p, v) in func.params.iter().zip(args) {
            locals.insert(p.name.clone(), *v);
        }
        let mut result = 0;
        for s in &func.body {
            match self.exec(s, &mut locals)? {
                Flow::Return(v) => {
                    result = v;
                    break;
                }
                Flow::Break | Flow::Continue => break,
                Flow::Normal => {}
            }
        }
        self.depth -= 1;
        Ok(result)
    }

    // ---- statements -----------------------------------------------------

    fn exec(&mut self, s: &Stmt, locals: &mut HashMap<String, i64>) -> Result<Flow, InterpError> {
        self.tick()?;
        match &s.kind {
            StmtKind::Expr(e) => {
                self.eval(e, locals)?;
                Ok(Flow::Normal)
            }
            StmtKind::Decl(d) => {
                let v = match &d.init {
                    Some(Initializer::Expr(e)) => self.eval(e, locals)?,
                    _ => 0,
                };
                locals.insert(d.name.clone(), v);
                Ok(Flow::Normal)
            }
            StmtKind::Empty => Ok(Flow::Normal),
            StmtKind::Block(body) => {
                for s in body {
                    match self.exec(s, locals)? {
                        Flow::Normal => {}
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then, els } => {
                if self.eval(cond, locals)? != 0 {
                    self.exec(then, locals)
                } else if let Some(e) = els {
                    self.exec(e, locals)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => {
                while self.eval(cond, locals)? != 0 {
                    self.tick()?;
                    match self.exec(body, locals)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Continue | Flow::Normal => {}
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::DoWhile { body, cond } => {
                loop {
                    self.tick()?;
                    match self.exec(body, locals)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Continue | Flow::Normal => {}
                    }
                    if self.eval(cond, locals)? == 0 {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.exec(i, locals)?;
                }
                loop {
                    if let Some(c) = cond {
                        if self.eval(c, locals)? == 0 {
                            break;
                        }
                    }
                    self.tick()?;
                    match self.exec(body, locals)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Continue | Flow::Normal => {}
                    }
                    if let Some(st) = step {
                        self.eval(st, locals)?;
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Switch { scrutinee, cases } => {
                let v = self.eval(scrutinee, locals)?;
                // Find the first matching case (or default), then execute
                // with fallthrough.
                let mut start = None;
                for (i, case) in cases.iter().enumerate() {
                    match &case.value {
                        Some(cv) if self.eval(cv, locals)? == v => {
                            start = Some(i);
                            break;
                        }
                        _ => {}
                    }
                }
                if start.is_none() {
                    start = cases.iter().position(|c| c.value.is_none());
                }
                if let Some(start) = start {
                    'arms: for case in &cases[start..] {
                        for s in &case.body {
                            match self.exec(s, locals)? {
                                Flow::Break => break 'arms,
                                Flow::Return(v) => return Ok(Flow::Return(v)),
                                Flow::Continue => return Ok(Flow::Continue),
                                Flow::Normal => {}
                            }
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Return(None) => Ok(Flow::Return(0)),
            StmtKind::Return(Some(e)) => {
                let v = self.eval(e, locals)?;
                Ok(Flow::Return(v))
            }
            StmtKind::Label(_, inner) => self.exec(inner, locals),
            StmtKind::Goto(l) => self.fault(format!("goto `{l}` is not supported in simulation")),
        }
    }

    // ---- expressions -----------------------------------------------------

    fn eval(&mut self, e: &Expr, locals: &mut HashMap<String, i64>) -> Result<i64, InterpError> {
        match &e.kind {
            ExprKind::IntLit(v, _) => Ok(*v),
            ExprKind::FloatLit(..) => self.fault("floating point reached the protocol processor"),
            ExprKind::CharLit(c) => Ok(*c as i64),
            ExprKind::StrLit(_) => Ok(0),
            ExprKind::Ident(name) => Ok(self.read_var(name, locals)),
            ExprKind::Wildcard(_) => Ok(0),
            ExprKind::Call { .. } => self.eval_call(e, locals),
            ExprKind::Binary { op, lhs, rhs } => {
                // Short-circuit forms first.
                match op {
                    BinaryOp::LogAnd => {
                        let l = self.eval(lhs, locals)?;
                        if l == 0 {
                            return Ok(0);
                        }
                        return Ok((self.eval(rhs, locals)? != 0) as i64);
                    }
                    BinaryOp::LogOr => {
                        let l = self.eval(lhs, locals)?;
                        if l != 0 {
                            return Ok(1);
                        }
                        return Ok((self.eval(rhs, locals)? != 0) as i64);
                    }
                    _ => {}
                }
                let l = self.eval(lhs, locals)?;
                let r = self.eval(rhs, locals)?;
                Ok(apply_binop(*op, l, r))
            }
            ExprKind::Unary { op, operand } => {
                match op {
                    UnaryOp::PreInc | UnaryOp::PreDec => {
                        let cur = self.eval(operand, locals)?;
                        let v = if *op == UnaryOp::PreInc {
                            cur + 1
                        } else {
                            cur - 1
                        };
                        self.write_lvalue(operand, v, locals)?;
                        Ok(v)
                    }
                    UnaryOp::Neg => Ok(-self.eval(operand, locals)?),
                    UnaryOp::Not => Ok((self.eval(operand, locals)? == 0) as i64),
                    UnaryOp::BitNot => Ok(!self.eval(operand, locals)?),
                    // Addresses are not modelled; deref/addr-of are
                    // identity for the value flow the handlers need.
                    UnaryOp::Deref | UnaryOp::AddrOf => self.eval(operand, locals),
                }
            }
            ExprKind::Postfix { operand, inc } => {
                let cur = self.eval(operand, locals)?;
                let v = if *inc { cur + 1 } else { cur - 1 };
                self.write_lvalue(operand, v, locals)?;
                Ok(cur)
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let r = self.eval(rhs, locals)?;
                let v = match op {
                    None => r,
                    Some(op) => {
                        let cur = self.eval(lhs, locals)?;
                        apply_binop(*op, cur, r)
                    }
                };
                self.write_lvalue(lhs, v, locals)?;
                Ok(v)
            }
            ExprKind::Ternary { cond, then, els } => {
                if self.eval(cond, locals)? != 0 {
                    self.eval(then, locals)
                } else {
                    self.eval(els, locals)
                }
            }
            ExprKind::Index { base, .. } => self.eval(base, locals),
            ExprKind::Member { base, .. } => self.eval(base, locals),
            ExprKind::Cast { expr, .. } => self.eval(expr, locals),
            ExprKind::SizeofType(ty) => Ok((ty.size_bits() / 8) as i64),
            ExprKind::Comma(a, b) => {
                self.eval(a, locals)?;
                self.eval(b, locals)
            }
        }
    }

    fn read_var(&self, name: &str, locals: &HashMap<String, i64>) -> i64 {
        if let Some(v) = locals.get(name) {
            return *v;
        }
        if let Some(v) = const_value(name) {
            return v;
        }
        if let Some(v) = self.machine.nodes[self.node].globals.get(name) {
            return *v;
        }
        self.machine.program.constant(name).unwrap_or(0)
    }

    fn write_lvalue(
        &mut self,
        lhs: &Expr,
        value: i64,
        locals: &mut HashMap<String, i64>,
    ) -> Result<(), InterpError> {
        match &lhs.kind {
            ExprKind::Ident(name) => {
                if let Some(slot) = locals.get_mut(name) {
                    *slot = value;
                } else {
                    self.machine.nodes[self.node]
                        .globals
                        .insert(name.clone(), value);
                }
                Ok(())
            }
            // `HANDLER_GLOBALS(header.nh.<field>) = X` sets an outgoing
            // header field (len, dest, or type).
            ExprKind::Call { callee, args } => {
                if callee.as_ident() == Some("HANDLER_GLOBALS") {
                    match args.first().and_then(header_field) {
                        Some("dest") => self.out_dest = Some(value),
                        Some("type") => self.out_type = value,
                        _ => self.out_len = value,
                    }
                    Ok(())
                } else {
                    self.fault("unsupported assignment target")
                }
            }
            // Array/member stores are accepted and folded into the base
            // variable (fields are not modelled separately).
            ExprKind::Index { base, .. } | ExprKind::Member { base, .. } => {
                self.write_lvalue(base, value, locals)
            }
            ExprKind::Unary {
                op: UnaryOp::Deref,
                operand,
            } => self.write_lvalue(operand, value, locals),
            _ => self.fault("unsupported assignment target"),
        }
    }

    // ---- intrinsics --------------------------------------------------------

    fn eval_call(
        &mut self,
        e: &Expr,
        locals: &mut HashMap<String, i64>,
    ) -> Result<i64, InterpError> {
        let (name, args) = match e.as_call() {
            Some((n, a)) => (n.to_string(), a.to_vec()),
            None => return self.fault("indirect calls are not supported"),
        };
        let node = self.node;
        match name.as_str() {
            // Hooks and annotations: no machine effect.
            "HANDLER_DEFS" | "HANDLER_PROLOGUE" | "SWHANDLER_DEFS" | "SWHANDLER_PROLOGUE"
            | "PROC_DEFS" | "PROC_PROLOGUE" | "NO_STACK" | "SET_STACKPTR" | "has_buffer"
            | "no_free_needed" | "debug_print" => Ok(0),
            "HANDLER_GLOBALS" => Ok(match args.first().and_then(header_field) {
                Some("src") => self.msg_src,
                Some("dest") => self.out_dest.unwrap_or(0),
                Some("type") => self.out_type,
                Some("node") => self.node as i64,
                _ => self.out_len,
            }),
            "FATAL_ERROR" => self.fault("FATAL_ERROR: unimplemented handler invoked"),
            "MAGIC_PI_STATUS" | "MAGIC_NI_STATUS" | "MAGIC_IO_STATUS" => Ok(1),
            "DB_CURRENT" => Ok(self.current_buf),

            "DB_ALLOC" => {
                let allocated = self.machine.nodes[node].buffers.alloc();
                match allocated {
                    Some(idx) => {
                        self.current_buf = idx as i64;
                        Ok(idx as i64)
                    }
                    None => Ok(-1),
                }
            }
            "DB_FREE" => {
                if self.current_buf < 0
                    || !self.machine.nodes[node]
                        .buffers
                        .decref(self.current_buf as usize)
                {
                    let handler = self.handler.clone();
                    self.machine.record(SimEvent::DoubleFree { node, handler });
                }
                Ok(0)
            }
            "DB_REFCOUNT_INCR" => {
                if self.current_buf >= 0 {
                    self.machine.nodes[node]
                        .buffers
                        .incref(self.current_buf as usize);
                }
                Ok(0)
            }
            "DB_WRITE" => {
                let b = self.arg(&args, 0, locals)?;
                let off = self.arg(&args, 1, locals)? as usize % 16;
                let v = self.arg(&args, 2, locals)?;
                if b >= 0 && (b as usize) < self.machine.nodes[node].buffers.payloads.len() {
                    self.machine.nodes[node].buffers.payloads[b as usize][off] = v;
                }
                Ok(0)
            }
            "WAIT_FOR_DB_FULL" => {
                if self.current_buf >= 0 {
                    self.machine.nodes[node]
                        .buffers
                        .fill(self.current_buf as usize);
                }
                Ok(1)
            }
            "MISCBUS_READ_DB" => {
                let off = if args.len() > 1 {
                    self.arg(&args, 1, locals)? as usize % 16
                } else {
                    0
                };
                if self.current_buf < 0 {
                    return Ok(0);
                }
                let b = self.current_buf as usize;
                if !self.machine.nodes[node].buffers.is_filled(b) {
                    let handler = self.handler.clone();
                    self.machine
                        .record(SimEvent::UnsynchronizedRead { node, handler });
                    // The racing read observes garbage.
                    return Ok(0xDEAD);
                }
                Ok(self.machine.nodes[node].buffers.payloads[b][off])
            }

            "PI_SEND" | "IO_SEND" | "NI_SEND" => self.do_send(&name, &args, locals),
            "PI_WAIT" | "IO_WAIT" | "NI_WAIT" => {
                if self.pending_wait == Some(leak_static(&name)) {
                    self.pending_wait = None;
                }
                Ok(1)
            }

            "DIR_LOAD" => {
                self.dir_line = self.read_var("gLine", locals);
                self.dir_copy = self.machine.nodes[node]
                    .directory
                    .get(&self.dir_line)
                    .copied()
                    .unwrap_or_default();
                self.dir_loaded = true;
                self.dir_modified = false;
                Ok(0)
            }
            "DIR_STATE" => Ok(self.dir_copy.state),
            "DIR_PTR" => Ok(self.dir_copy.ptr),
            "DIR_SET_STATE" => {
                self.dir_copy.state = self.arg(&args, 0, locals)?;
                self.dir_modified = true;
                Ok(0)
            }
            "DIR_SET_PTR" => {
                self.dir_copy.ptr = self.arg(&args, 0, locals)?;
                self.dir_modified = true;
                Ok(0)
            }
            "DIR_WRITEBACK" => {
                let line = self.dir_line;
                let copy = self.dir_copy;
                self.machine.nodes[node].directory.insert(line, copy);
                self.dir_modified = false;
                Ok(0)
            }
            "DIR_ADDR" => Ok(self.read_var("gLine", locals) * 8),

            _ => {
                // User function?
                if let Some(func) = self.machine.program.function(&name).cloned() {
                    let mut vals = Vec::new();
                    for a in &args {
                        vals.push(self.eval(a, locals)?);
                    }
                    self.call_function(&func, &vals)
                } else {
                    Ok(0)
                }
            }
        }
    }

    fn arg(
        &mut self,
        args: &[Expr],
        i: usize,
        locals: &mut HashMap<String, i64>,
    ) -> Result<i64, InterpError> {
        match args.get(i) {
            Some(a) => self.eval(a, locals),
            None => Ok(0),
        }
    }

    fn do_send(
        &mut self,
        name: &str,
        args: &[Expr],
        locals: &mut HashMap<String, i64>,
    ) -> Result<i64, InterpError> {
        let node = self.node;
        // PI/IO_SEND(flag, keep, swap, wait, dec, null);
        // NI_SEND(type, flag, keep, wait, dec, null).
        let (flag_idx, wait_idx) = if name == "NI_SEND" { (1, 3) } else { (0, 3) };
        let has_data = self.arg(args, flag_idx, locals)? != 0;
        let wants_wait = self.arg(args, wait_idx, locals)? != 0;
        // Consistency between the header length and the has-data flag —
        // the Figure 3 invariant, enforced by the hardware interface.
        let consistent = (has_data && self.out_len > 0) || (!has_data && self.out_len == 0);
        if !consistent {
            let handler = self.handler.clone();
            let (len, hd) = (self.out_len, has_data);
            self.machine.record(SimEvent::InconsistentLength {
                node,
                handler,
                len,
                has_data: hd,
            });
        }
        if wants_wait {
            self.pending_wait = Some(match name {
                "PI_SEND" => "PI_WAIT",
                "IO_SEND" => "IO_WAIT",
                _ => "NI_WAIT",
            });
        }
        if name == "NI_SEND" {
            let msg_type = self.arg(args, 0, locals)?;
            let lane = if msg_type == 100 { 2 } else { 3 };
            let dst = match self.out_dest {
                Some(d) => (d.rem_euclid(self.machine.nodes.len() as i64)) as usize,
                None => self.machine.remote_of(node),
            };
            let opcode = self.machine.opcode_handler(self.out_type);
            let data = if self.current_buf >= 0 {
                self.machine.nodes[node].buffers.payloads[self.current_buf as usize].clone()
            } else {
                vec![0; 16]
            };
            let msg = Message {
                opcode,
                src: node,
                dst,
                lane,
                len: self.out_len,
                has_data,
                data,
            };
            self.machine.inject_message(msg);
        }
        Ok(0)
    }
}

/// Extracts the innermost field name of a `header.nh.<field>` chain.
fn header_field(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Member { field, .. } => Some(field.as_str()),
        _ => None,
    }
}

/// Maps a wait-macro name to its static string (for `pending_wait`).
fn leak_static(name: &str) -> &'static str {
    match name {
        "PI_WAIT" => "PI_WAIT",
        "IO_WAIT" => "IO_WAIT",
        _ => "NI_WAIT",
    }
}

fn apply_binop(op: BinaryOp, l: i64, r: i64) -> i64 {
    match op {
        BinaryOp::Add => l.wrapping_add(r),
        BinaryOp::Sub => l.wrapping_sub(r),
        BinaryOp::Mul => l.wrapping_mul(r),
        BinaryOp::Div => {
            if r == 0 {
                0
            } else {
                l.wrapping_div(r)
            }
        }
        BinaryOp::Rem => {
            if r == 0 {
                0
            } else {
                l.wrapping_rem(r)
            }
        }
        BinaryOp::Shl => l.wrapping_shl((r & 63) as u32),
        BinaryOp::Shr => l.wrapping_shr((r & 63) as u32),
        BinaryOp::Lt => (l < r) as i64,
        BinaryOp::Gt => (l > r) as i64,
        BinaryOp::Le => (l <= r) as i64,
        BinaryOp::Ge => (l >= r) as i64,
        BinaryOp::Eq => (l == r) as i64,
        BinaryOp::Ne => (l != r) as i64,
        BinaryOp::BitAnd => l & r,
        BinaryOp::BitXor => l ^ r,
        BinaryOp::BitOr => l | r,
        BinaryOp::LogAnd => ((l != 0) && (r != 0)) as i64,
        BinaryOp::LogOr => ((l != 0) || (r != 0)) as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Machine, Program, SimConfig};

    fn machine_with(src: &str) -> Machine {
        Machine::new(Program::parse(src).unwrap(), SimConfig::default())
    }

    #[test]
    fn clean_handler_frees_its_buffer() {
        let mut m = machine_with(
            r#"void NIClean(void) {
                HANDLER_DEFS();
                HANDLER_PROLOGUE();
                DB_FREE();
            }"#,
        );
        m.inject(0, "NIClean");
        m.run();
        assert_eq!(m.nodes[0].buffers.in_use(), 0);
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::HandlerRan { .. })));
    }

    #[test]
    fn double_free_event() {
        let mut m = machine_with("void NIBad(void) { DB_FREE(); DB_FREE(); }");
        m.inject(0, "NIBad");
        m.run();
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::DoubleFree { .. })));
    }

    #[test]
    fn leak_event_and_eventual_exhaustion() {
        let mut m = Machine::new(
            Program::parse("void NILeak(void) { gCount = gCount + 1; }").unwrap(),
            SimConfig {
                buffers_per_node: 3,
                ..Default::default()
            },
        );
        for _ in 0..5 {
            m.inject(0, "NILeak");
        }
        m.run();
        let leaks = m
            .events()
            .iter()
            .filter(|e| matches!(e, SimEvent::BufferLeaked { .. }))
            .count();
        assert_eq!(leaks, 3);
        assert!(m.deadlocked());
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::BufferExhausted { time: 3, .. })));
    }

    #[test]
    fn unsynchronized_read_sees_garbage() {
        let mut m = machine_with(
            r#"void NIRace(void) {
                gGot = MISCBUS_READ_DB(addr, 0);
                DB_FREE();
            }"#,
        );
        m.inject(0, "NIRace");
        m.run();
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::UnsynchronizedRead { .. })));
        assert_eq!(m.nodes[0].globals["gGot"], 0xDEAD);
    }

    #[test]
    fn synchronized_read_sees_payload() {
        let mut m = machine_with(
            r#"void NISync(void) {
                WAIT_FOR_DB_FULL(addr);
                gGot = MISCBUS_READ_DB(addr, 0);
                DB_FREE();
            }"#,
        );
        m.inject(0, "NISync"); // payload words are 7
        m.run();
        assert_eq!(m.nodes[0].globals["gGot"], 7);
    }

    #[test]
    fn inconsistent_length_event() {
        let mut m = machine_with(
            r#"void NIWrongLen(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                NI_SEND(MSG_REPLY, F_DATA, 1, W_NOWAIT, 1, 0);
                DB_FREE();
            }"#,
        );
        m.inject(0, "NIWrongLen");
        m.run();
        assert!(m.events().iter().any(|e| matches!(
            e,
            SimEvent::InconsistentLength {
                len: 0,
                has_data: true,
                ..
            }
        )));
    }

    #[test]
    fn consistent_send_is_silent_and_delivered() {
        let mut m = machine_with(
            r#"void NIGood(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
                NI_SEND(MSG_REPLY, F_DATA, 1, W_NOWAIT, 1, 0);
                DB_FREE();
            }"#,
        );
        m.inject(0, "NIGood");
        m.run();
        assert!(!m
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::InconsistentLength { .. })));
        // The reply was delivered to node 1 and sunk there.
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::HandlerRan { node: 1, .. })));
    }

    #[test]
    fn missed_wait_event() {
        let mut m = machine_with(
            r#"void PIHang(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                PI_SEND(F_NODATA, 1, 0, W_WAIT, 1, 0);
                DB_FREE();
            }"#,
        );
        m.inject(0, "PIHang");
        m.run();
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::MissedWait { .. })));
    }

    #[test]
    fn paired_wait_is_silent() {
        let mut m = machine_with(
            r#"void PIOk(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                PI_SEND(F_NODATA, 1, 0, W_WAIT, 1, 0);
                PI_WAIT();
                DB_FREE();
            }"#,
        );
        m.inject(0, "PIOk");
        m.run();
        assert!(!m
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::MissedWait { .. })));
    }

    #[test]
    fn stale_directory_event_and_state() {
        let mut m = machine_with(
            r#"void NIStale(void) {
                DIR_LOAD();
                DIR_SET_STATE(DIR_DIRTY);
                DB_FREE();
            }"#,
        );
        m.inject(0, "NIStale");
        m.run();
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::StaleDirectory { .. })));
        // The directory still holds the default state.
        assert!(!m.nodes[0].directory.contains_key(&0));
    }

    #[test]
    fn writeback_persists() {
        let mut m = machine_with(
            r#"void NICommit(void) {
                DIR_LOAD();
                DIR_SET_STATE(DIR_SHARED);
                DIR_WRITEBACK();
                DB_FREE();
            }"#,
        );
        m.inject(0, "NICommit");
        m.run();
        assert_eq!(m.nodes[0].directory[&0].state, 1);
    }

    #[test]
    fn manual_refcount_bump_requires_two_frees() {
        // The §11 incident, replayed dynamically: with the bump, a double
        // free is CORRECT; removing the second free leaks.
        let mut m = machine_with(
            r#"void NIIncident(void) {
                DB_REFCOUNT_INCR();
                DB_FREE();
                DB_FREE();
            }"#,
        );
        m.inject(0, "NIIncident");
        m.run();
        assert!(!m
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::DoubleFree { .. })));
        assert_eq!(m.nodes[0].buffers.in_use(), 0);

        let mut m2 = machine_with(
            r#"void NIFixed(void) {
                DB_REFCOUNT_INCR();
                DB_FREE();
            }"#,
        );
        m2.inject(0, "NIFixed");
        m2.run();
        assert!(m2
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::BufferLeaked { .. })));
    }

    #[test]
    fn runaway_loop_faults() {
        let mut m = machine_with("void NISpin(void) { while (1) { gX = gX + 1; } }");
        m.inject(0, "NISpin");
        m.run();
        assert!(m
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::HandlerFault { .. })));
    }

    #[test]
    fn helper_calls_interpret() {
        let mut m = machine_with(
            r#"int triple(int x) { return x * 3; }
               void NICall(void) { gOut = triple(5); DB_FREE(); }"#,
        );
        m.inject(0, "NICall");
        m.run();
        assert_eq!(m.nodes[0].globals["gOut"], 15);
    }

    #[test]
    fn switch_and_loops_execute() {
        let mut m = machine_with(
            r#"void NIFlow(void) {
                int i;
                int acc = 0;
                for (i = 0; i < 4; i++) {
                    acc += i;
                }
                switch (acc) {
                case 6:
                    gResult = 60;
                    break;
                default:
                    gResult = -1;
                    break;
                }
                DB_FREE();
            }"#,
        );
        m.inject(0, "NIFlow");
        m.run();
        assert_eq!(m.nodes[0].globals["gResult"], 60);
    }

    #[test]
    fn spin_on_status_register_terminates() {
        // The send-wait false-positive shape must still run correctly.
        let mut m = machine_with(
            r#"void PISpinWait(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                PI_SEND(F_NODATA, 1, 0, W_WAIT, 1, 0);
                while (!MAGIC_PI_STATUS()) {
                    gSpin = gSpin + 1;
                }
                DB_FREE();
            }"#,
        );
        m.inject(0, "PISpinWait");
        m.run();
        assert!(!m
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::HandlerFault { .. })));
    }
}
