//! A complete MSI write-invalidate coherence protocol, written in the
//! FLASH handler idiom and executed on the simulated machine — the
//! substrate demonstration that `mc-sim` is a real (if small) FlashLite:
//! multi-node message routing, a home directory, data movement, and
//! invalidation all work end to end.

use mc_sim::{Machine, Program, SimConfig, SimEvent};

const MSI: &str = include_str!("msi_protocol.c");

fn msi_machine() -> Machine {
    let program = Program::parse(MSI).expect("MSI protocol parses");
    let mut m = Machine::new(
        program,
        SimConfig {
            nodes: 4,
            buffers_per_node: 16,
            lane_capacity: 256,
            max_handler_runs: 10_000,
        },
    );
    // Wire the message types to their handlers (the protocol
    // specification's opcode table).
    m.register_opcode(10, "NIHomeGet");
    m.register_opcode(11, "NIHomeGetX");
    m.register_opcode(12, "NIPut");
    m.register_opcode(13, "NIPutX");
    m.register_opcode(14, "NIInval");
    // Node 0 homes the line and holds memory; everyone knows the home.
    for n in 0..4 {
        m.set_global(n, "gHomeNode", 0);
    }
    m.set_global(0, "gMemory", 42);
    m
}

fn no_defect_events(m: &Machine) {
    assert!(
        !m.events().iter().any(|e| matches!(
            e,
            SimEvent::DoubleFree { .. }
                | SimEvent::BufferLeaked { .. }
                | SimEvent::InconsistentLength { .. }
                | SimEvent::UnsynchronizedRead { .. }
                | SimEvent::StaleDirectory { .. }
                | SimEvent::HandlerFault { .. }
                | SimEvent::BufferExhausted { .. }
        )),
        "protocol must run clean: {:#?}",
        m.events()
    );
}

#[test]
fn read_miss_fetches_line_from_home() {
    let mut m = msi_machine();
    m.inject(1, "SWReadMiss");
    m.run();
    no_defect_events(&m);
    assert_eq!(m.nodes[1].globals["gCache"], 42);
    assert_eq!(m.nodes[1].globals["gCacheValid"], 1);
    // The home directory records node 1 as a sharer.
    assert_eq!(m.nodes[0].directory[&0].state, 1);
    assert_eq!(m.nodes[0].directory[&0].ptr, 1 << 1);
}

#[test]
fn two_readers_both_become_sharers() {
    let mut m = msi_machine();
    m.inject(1, "SWReadMiss");
    m.inject(2, "SWReadMiss");
    m.run();
    no_defect_events(&m);
    assert_eq!(m.nodes[1].globals["gCache"], 42);
    assert_eq!(m.nodes[2].globals["gCache"], 42);
    assert_eq!(m.nodes[0].directory[&0].ptr, (1 << 1) | (1 << 2));
}

#[test]
fn write_invalidates_other_sharers() {
    let mut m = msi_machine();
    // Node 1 reads, then node 2 writes 99.
    m.inject(1, "SWReadMiss");
    m.run();
    m.set_global(2, "gStoreValue", 99);
    m.inject(2, "SWWriteMiss");
    m.run();
    no_defect_events(&m);
    // Node 1's copy was invalidated; node 2 owns the new value; memory at
    // the home is up to date.
    assert_eq!(m.nodes[1].globals["gCacheValid"], 0);
    assert_eq!(m.nodes[1].globals["gInvalCount"], 1);
    assert_eq!(m.nodes[2].globals["gCache"], 99);
    assert_eq!(m.nodes[2].globals["gCacheValid"], 1);
    assert_eq!(m.nodes[0].globals["gMemory"], 99);
    assert_eq!(m.nodes[0].directory[&0].ptr, 1 << 2);
}

#[test]
fn reread_after_write_sees_new_value() {
    let mut m = msi_machine();
    m.inject(1, "SWReadMiss");
    m.run();
    m.set_global(2, "gStoreValue", 99);
    m.inject(2, "SWWriteMiss");
    m.run();
    m.inject(1, "SWReadMiss");
    m.run();
    no_defect_events(&m);
    // Coherence: node 1's re-read observes node 2's write.
    assert_eq!(m.nodes[1].globals["gCache"], 99);
    assert_eq!(m.nodes[1].globals["gCacheValid"], 1);
    assert_eq!(m.nodes[0].directory[&0].ptr, (1 << 1) | (1 << 2));
}

#[test]
fn writer_does_not_invalidate_itself() {
    let mut m = msi_machine();
    m.inject(2, "SWReadMiss");
    m.run();
    m.set_global(2, "gStoreValue", 7);
    m.inject(2, "SWWriteMiss");
    m.run();
    no_defect_events(&m);
    assert_eq!(m.nodes[2].globals["gCache"], 7);
    assert_eq!(m.nodes[2].globals["gCacheValid"], 1);
    assert!(!m.nodes[2].globals.contains_key("gInvalCount"));
}

#[test]
fn sustained_coherence_traffic_stays_healthy() {
    let mut m = msi_machine();
    for round in 0..50i64 {
        m.inject(1, "SWReadMiss");
        m.inject(3, "SWReadMiss");
        m.run();
        m.set_global(2, "gStoreValue", 1000 + round);
        m.inject(2, "SWWriteMiss");
        m.run();
    }
    no_defect_events(&m);
    assert_eq!(m.nodes[0].globals["gMemory"], 1049);
    // All buffers returned to every pool.
    for n in &m.nodes {
        assert_eq!(n.buffers.in_use(), 0, "node {} leaked buffers", n.id);
    }
}

#[test]
fn static_checkers_accept_the_msi_protocol_with_its_spec() {
    // The protocol is also *checkable*: with its handlers classified and
    // with the simulator-oriented allocation-failure returns annotated,
    // the full suite runs. We assert the checkers' actual findings here
    // so the fixture doubles as a regression test for checker behavior on
    // hand-written (non-corpus) code.
    use mc_checkers::flash::FlashSpec;
    use mc_driver::Driver;

    let mut spec = FlashSpec::new();
    spec.default_quota = [4, 4, 4, 4];
    // NIHomeGetX's invalidation loop sends inside a cycle: the lane
    // checker must warn about it (a cycle with sends is exactly what §7's
    // fixed-point rule flags).
    let mut driver = Driver::new();
    mc_checkers::all_checkers(&mut driver, &spec).unwrap();
    let reports = driver.check_source(MSI, "msi.c").unwrap();
    assert!(
        reports
            .iter()
            .any(|r| r.checker == "lanes" && r.message.contains("cycle")),
        "{reports:#?}"
    );
    // The early return on allocation failure legitimately exits without a
    // buffer; the buffer checker (which does not model DB_FAIL) flags it —
    // the annotation mechanism exists for exactly this.
    assert!(reports
        .iter()
        .any(|r| r.checker == "buffer_mgmt" && r.function == "SWReadMiss"));
}
