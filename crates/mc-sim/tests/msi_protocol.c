#include "flash.h"

/* A small write-invalidate MSI coherence protocol in the FLASH handler
 * idiom, runnable on the mc-sim machine model. Node gHomeNode homes the
 * line; requesters issue read/write misses with the software handlers and
 * receive data/invalidations with the hardware handlers. */

enum Ops { OP_GET = 10, OP_GETX = 11, OP_PUT = 12, OP_PUTX = 13, OP_INVAL = 14 };
enum MsiState { MSI_IDLE = 0, MSI_SHARED = 1 };

/* ---- requester side ---------------------------------------------- */

void SWReadMiss(void)
{
    SWHANDLER_DEFS();
    SWHANDLER_PROLOGUE();
    int nb = DB_ALLOC();
    if (nb == DB_FAIL) {
        return;
    }
    HANDLER_GLOBALS(header.nh.dest) = gHomeNode;
    HANDLER_GLOBALS(header.nh.type) = OP_GET;
    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
    NI_SEND(MSG_REQ, F_NODATA, 1, W_NOWAIT, 1, 0);
    DB_FREE();
}

void SWWriteMiss(void)
{
    SWHANDLER_DEFS();
    SWHANDLER_PROLOGUE();
    int nb = DB_ALLOC();
    if (nb == DB_FAIL) {
        return;
    }
    DB_WRITE(nb, 0, gStoreValue);
    HANDLER_GLOBALS(header.nh.dest) = gHomeNode;
    HANDLER_GLOBALS(header.nh.type) = OP_GETX;
    HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
    NI_SEND(MSG_REQ, F_DATA, 1, W_NOWAIT, 1, 0);
    DB_FREE();
}

void NIPut(void)
{
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    WAIT_FOR_DB_FULL(addr);
    gCache = MISCBUS_READ_DB(addr, 0);
    gCacheValid = 1;
    DB_FREE();
}

void NIPutX(void)
{
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    WAIT_FOR_DB_FULL(addr);
    gCache = MISCBUS_READ_DB(addr, 0);
    gCacheValid = 1;
    DB_FREE();
}

void NIInval(void)
{
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    gCacheValid = 0;
    gInvalCount = gInvalCount + 1;
    DB_FREE();
}

/* ---- home side ----------------------------------------------------- */

void NIHomeGet(void)
{
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int requester = HANDLER_GLOBALS(header.nh.src);
    DIR_LOAD();
    DIR_SET_STATE(MSI_SHARED);
    DIR_SET_PTR(DIR_PTR() | (1 << requester));
    DIR_WRITEBACK();
    DB_WRITE(DB_CURRENT(), 0, gMemory);
    HANDLER_GLOBALS(header.nh.dest) = requester;
    HANDLER_GLOBALS(header.nh.type) = OP_PUT;
    HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
    NI_SEND(MSG_REPLY, F_DATA, 1, W_NOWAIT, 1, 0);
    DB_FREE();
}

void NIHomeGetX(void)
{
    HANDLER_DEFS();
    HANDLER_PROLOGUE();
    int writer = HANDLER_GLOBALS(header.nh.src);
    int sharers;
    int i;
    WAIT_FOR_DB_FULL(addr);
    gMemory = MISCBUS_READ_DB(addr, 0);
    DIR_LOAD();
    sharers = DIR_PTR();
    for (i = 0; i < 8; i++) {
        if ((sharers >> i) & 1) {
            if (i != writer) {
                HANDLER_GLOBALS(header.nh.dest) = i;
                HANDLER_GLOBALS(header.nh.type) = OP_INVAL;
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                NI_SEND(MSG_REQ, F_NODATA, 1, W_NOWAIT, 1, 0);
            }
        }
    }
    DIR_SET_STATE(MSI_SHARED);
    DIR_SET_PTR(1 << writer);
    DIR_WRITEBACK();
    HANDLER_GLOBALS(header.nh.dest) = writer;
    HANDLER_GLOBALS(header.nh.type) = OP_PUTX;
    HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
    NI_SEND(MSG_REPLY, F_DATA, 1, W_NOWAIT, 1, 0);
    DB_FREE();
}
