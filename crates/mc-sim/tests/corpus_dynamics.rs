//! Static findings manifest dynamically: run the *generated corpus*
//! protocols in the simulator and confirm that the very bugs the checkers
//! flag statically produce the failure modes the paper describes (slow
//! buffer leaks that deadlock the node, double frees, inconsistent
//! message lengths).

use mc_corpus::{generate, plan::plan_for, PlantedKind, DEFAULT_SEED};
use mc_sim::{Machine, Program, SimConfig, SimEvent};

/// Builds a simulator program from a generated protocol.
fn program_of(proto: &mc_corpus::Protocol) -> Program {
    Program::from_sources(&proto.sources()).expect("corpus parses")
}

#[test]
fn bitvector_race_bug_reads_garbage_dynamically() {
    let proto = generate(plan_for("bitvector").unwrap(), DEFAULT_SEED);
    let program = program_of(&proto);
    let race = proto
        .manifest
        .iter()
        .find(|p| p.checker == "wait_for_db" && p.kind == PlantedKind::Bug)
        .expect("bitvector has race bugs");
    let mut m = Machine::new(program, SimConfig::default());
    m.inject(0, &race.function);
    m.run();
    assert!(
        m.events()
            .iter()
            .any(|e| matches!(e, SimEvent::UnsynchronizedRead { .. })),
        "the statically-flagged race must read garbage dynamically"
    );
}

#[test]
fn msglen_bug_corrupts_wire_format_when_triggered() {
    let proto = generate(plan_for("rac").unwrap(), DEFAULT_SEED.wrapping_add(4));
    let program = program_of(&proto);
    let bug = proto
        .manifest
        .iter()
        .find(|p| p.checker == "msglen_check" && p.kind == PlantedKind::Bug)
        .expect("rac has msglen bugs");
    let mut m = Machine::new(program, SimConfig::default());
    // Arm the rare corner-case conditions the checker reasoned about.
    for flag in ["gDirtyRemote", "gQueueFull", "gEagerMode"] {
        m.set_global(0, flag, 1);
    }
    m.inject(0, &bug.function);
    m.run();
    assert!(
        m.events()
            .iter()
            .any(|e| matches!(e, SimEvent::InconsistentLength { .. })),
        "triggering the corner case must corrupt the message header: {:?}",
        m.events()
    );
}

#[test]
fn msglen_bug_is_silent_without_the_corner_case() {
    // This is why such bugs survive years of testing: the common-case run
    // is perfectly healthy.
    let proto = generate(plan_for("rac").unwrap(), DEFAULT_SEED.wrapping_add(4));
    let program = program_of(&proto);
    let bug = proto
        .manifest
        .iter()
        .find(|p| p.checker == "msglen_check" && p.kind == PlantedKind::Bug)
        .unwrap();
    let mut m = Machine::new(program, SimConfig::default());
    m.inject(0, &bug.function);
    m.run();
    assert!(
        !m.events()
            .iter()
            .any(|e| matches!(e, SimEvent::InconsistentLength { .. })),
        "without the corner case the bug must stay hidden"
    );
}

#[test]
fn buffer_double_free_bug_fires_in_simulation() {
    let proto = generate(plan_for("bitvector").unwrap(), DEFAULT_SEED);
    let program = program_of(&proto);
    // Find a double-free planted bug and trigger its rare path.
    let bug = proto
        .manifest
        .iter()
        .find(|p| {
            p.checker == "buffer_mgmt"
                && p.kind == PlantedKind::Bug
                && p.note.contains("double free")
        })
        .expect("bitvector has double-free bugs");
    let mut m = Machine::new(program, SimConfig::default());
    for flag in ["gRetryPath", "gIOBusy"] {
        m.set_global(0, flag, 1);
    }
    m.inject(0, &bug.function);
    m.run();
    assert!(
        m.events()
            .iter()
            .any(|e| matches!(e, SimEvent::DoubleFree { .. })),
        "{:?}",
        m.events()
    );
}

#[test]
fn sci_leak_bug_slowly_deadlocks_the_node() {
    // "Low-grade buffer leak that only deadlocks the system after several
    // days": scaled down to a small pool, the same dynamics in seconds.
    let proto = generate(plan_for("sci").unwrap(), DEFAULT_SEED.wrapping_add(2));
    let program = program_of(&proto);
    let leak = proto
        .manifest
        .iter()
        .find(|p| {
            p.checker == "buffer_mgmt" && p.kind == PlantedKind::Bug && p.note.contains("leak")
        })
        .expect("sci has a leak bug");
    let mut m = Machine::new(
        program,
        SimConfig {
            buffers_per_node: 8,
            lane_capacity: 1024,
            ..Default::default()
        },
    );
    m.set_global(0, "gErrCase", 1); // the rare error path leaks
    for _ in 0..64 {
        m.inject(0, &leak.function);
    }
    m.run();
    assert!(m.deadlocked(), "the leak must exhaust the pool");
    let exhausted_at = m.events().iter().find_map(|e| match e {
        SimEvent::BufferExhausted { time, .. } => Some(*time),
        _ => None,
    });
    // It takes many healthy-looking runs before the machine wedges.
    assert!(exhausted_at.unwrap() >= 8);
}

#[test]
fn clean_handlers_run_healthily_under_load() {
    // A clean generated handler processes a sustained message stream with
    // no leaks, no corruption, no deadlock.
    let proto = generate(plan_for("coma").unwrap(), DEFAULT_SEED.wrapping_add(3));
    let program = program_of(&proto);
    // Pick a handler with no planted defect.
    let planted: Vec<&str> = proto.manifest.iter().map(|p| p.function.as_str()).collect();
    let clean = proto
        .spec
        .hardware_handlers
        .iter()
        .find(|h| !planted.contains(&h.as_str()) && program.function(h).is_some())
        .expect("coma has clean handlers");
    let mut m = Machine::new(
        program,
        SimConfig {
            buffers_per_node: 4,
            lane_capacity: 4096,
            ..Default::default()
        },
    );
    for _ in 0..200 {
        m.inject(0, clean);
    }
    m.run();
    assert!(!m.deadlocked(), "clean handler must not wedge the machine");
    assert!(!m.events().iter().any(|e| matches!(
        e,
        SimEvent::DoubleFree { .. }
            | SimEvent::BufferLeaked { .. }
            | SimEvent::InconsistentLength { .. }
            | SimEvent::UnsynchronizedRead { .. }
    )));
    assert!(m.handler_runs() >= 200);
}
