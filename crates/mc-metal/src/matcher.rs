//! Structural pattern matching with wildcard binding.
//!
//! A pattern is an AST with [`ExprKind::Wildcard`] holes. Matching compares
//! the pattern and candidate structurally; a wildcard binds the candidate
//! subexpression (subject to its [`TypeClass`]), and a wildcard appearing
//! twice must bind structurally equal expressions.

use crate::lang::TypeClass;
use mc_ast::{Expr, ExprKind, Initializer, Stmt, StmtKind};
use std::collections::BTreeMap;

/// Wildcard bindings produced by a successful match.
pub type Bindings = BTreeMap<String, Expr>;

/// Matches an expression pattern against a candidate expression.
///
/// Returns the bindings on success. `classes` gives each wildcard's type
/// class (wildcards absent from the map behave as [`TypeClass::Any`]).
pub fn match_expr(
    pattern: &Expr,
    candidate: &Expr,
    classes: &BTreeMap<String, TypeClass>,
) -> Option<Bindings> {
    let mut b = Bindings::new();
    if expr_matches(pattern, candidate, classes, &mut b) {
        Some(b)
    } else {
        None
    }
}

/// Matches a statement pattern against a candidate statement.
pub fn match_stmt(
    pattern: &Stmt,
    candidate: &Stmt,
    classes: &BTreeMap<String, TypeClass>,
) -> Option<Bindings> {
    let mut b = Bindings::new();
    if stmt_matches(pattern, candidate, classes, &mut b) {
        Some(b)
    } else {
        None
    }
}

fn bind(
    name: &str,
    candidate: &Expr,
    classes: &BTreeMap<String, TypeClass>,
    b: &mut Bindings,
) -> bool {
    let class = classes.get(name).copied().unwrap_or(TypeClass::Any);
    if !class.admits(candidate) {
        return false;
    }
    match b.get(name) {
        Some(prev) => exprs_equal(prev, candidate),
        None => {
            b.insert(name.to_string(), candidate.clone());
            true
        }
    }
}

/// Structural equality ignoring spans (and literal spelling).
pub(crate) fn exprs_equal(a: &Expr, b: &Expr) -> bool {
    use ExprKind::*;
    match (&a.kind, &b.kind) {
        (IntLit(x, _), IntLit(y, _)) => x == y,
        (FloatLit(x, _), FloatLit(y, _)) => x == y,
        (CharLit(x), CharLit(y)) => x == y,
        (StrLit(x), StrLit(y)) => x == y,
        (Ident(x), Ident(y)) | (Wildcard(x), Wildcard(y)) => x == y,
        (
            Call {
                callee: c1,
                args: a1,
            },
            Call {
                callee: c2,
                args: a2,
            },
        ) => {
            exprs_equal(c1, c2)
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(x, y)| exprs_equal(x, y))
        }
        (
            Binary {
                op: o1,
                lhs: l1,
                rhs: r1,
            },
            Binary {
                op: o2,
                lhs: l2,
                rhs: r2,
            },
        ) => o1 == o2 && exprs_equal(l1, l2) && exprs_equal(r1, r2),
        (
            Unary {
                op: o1,
                operand: e1,
            },
            Unary {
                op: o2,
                operand: e2,
            },
        ) => o1 == o2 && exprs_equal(e1, e2),
        (
            Postfix {
                operand: e1,
                inc: i1,
            },
            Postfix {
                operand: e2,
                inc: i2,
            },
        ) => i1 == i2 && exprs_equal(e1, e2),
        (
            Assign {
                op: o1,
                lhs: l1,
                rhs: r1,
            },
            Assign {
                op: o2,
                lhs: l2,
                rhs: r2,
            },
        ) => o1 == o2 && exprs_equal(l1, l2) && exprs_equal(r1, r2),
        (
            Ternary {
                cond: c1,
                then: t1,
                els: e1,
            },
            Ternary {
                cond: c2,
                then: t2,
                els: e2,
            },
        ) => exprs_equal(c1, c2) && exprs_equal(t1, t2) && exprs_equal(e1, e2),
        (
            Index {
                base: b1,
                index: i1,
            },
            Index {
                base: b2,
                index: i2,
            },
        ) => exprs_equal(b1, b2) && exprs_equal(i1, i2),
        (
            Member {
                base: b1,
                field: f1,
                arrow: a1,
            },
            Member {
                base: b2,
                field: f2,
                arrow: a2,
            },
        ) => f1 == f2 && a1 == a2 && exprs_equal(b1, b2),
        (Cast { ty: t1, expr: e1 }, Cast { ty: t2, expr: e2 }) => t1 == t2 && exprs_equal(e1, e2),
        (SizeofType(t1), SizeofType(t2)) => t1 == t2,
        (Comma(a1, b1), Comma(a2, b2)) => exprs_equal(a1, a2) && exprs_equal(b1, b2),
        _ => false,
    }
}

fn expr_matches(
    pat: &Expr,
    cand: &Expr,
    classes: &BTreeMap<String, TypeClass>,
    b: &mut Bindings,
) -> bool {
    use ExprKind::*;
    if let Wildcard(name) = &pat.kind {
        return bind(name, cand, classes, b);
    }
    match (&pat.kind, &cand.kind) {
        (IntLit(x, _), IntLit(y, _)) => x == y,
        (FloatLit(x, _), FloatLit(y, _)) => x == y,
        (CharLit(x), CharLit(y)) => x == y,
        (StrLit(x), StrLit(y)) => x == y,
        (Ident(x), Ident(y)) => x == y,
        (
            Call {
                callee: c1,
                args: a1,
            },
            Call {
                callee: c2,
                args: a2,
            },
        ) => {
            a1.len() == a2.len()
                && expr_matches(c1, c2, classes, b)
                && a1
                    .iter()
                    .zip(a2)
                    .all(|(p, c)| expr_matches(p, c, classes, b))
        }
        (
            Binary {
                op: o1,
                lhs: l1,
                rhs: r1,
            },
            Binary {
                op: o2,
                lhs: l2,
                rhs: r2,
            },
        ) => o1 == o2 && expr_matches(l1, l2, classes, b) && expr_matches(r1, r2, classes, b),
        (
            Unary {
                op: o1,
                operand: e1,
            },
            Unary {
                op: o2,
                operand: e2,
            },
        ) => o1 == o2 && expr_matches(e1, e2, classes, b),
        (
            Postfix {
                operand: e1,
                inc: i1,
            },
            Postfix {
                operand: e2,
                inc: i2,
            },
        ) => i1 == i2 && expr_matches(e1, e2, classes, b),
        (
            Assign {
                op: o1,
                lhs: l1,
                rhs: r1,
            },
            Assign {
                op: o2,
                lhs: l2,
                rhs: r2,
            },
        ) => o1 == o2 && expr_matches(l1, l2, classes, b) && expr_matches(r1, r2, classes, b),
        (
            Ternary {
                cond: c1,
                then: t1,
                els: e1,
            },
            Ternary {
                cond: c2,
                then: t2,
                els: e2,
            },
        ) => {
            expr_matches(c1, c2, classes, b)
                && expr_matches(t1, t2, classes, b)
                && expr_matches(e1, e2, classes, b)
        }
        (
            Index {
                base: b1,
                index: i1,
            },
            Index {
                base: b2,
                index: i2,
            },
        ) => expr_matches(b1, b2, classes, b) && expr_matches(i1, i2, classes, b),
        (
            Member {
                base: b1,
                field: f1,
                arrow: a1,
            },
            Member {
                base: b2,
                field: f2,
                arrow: a2,
            },
        ) => f1 == f2 && a1 == a2 && expr_matches(b1, b2, classes, b),
        (Cast { ty: t1, expr: e1 }, Cast { ty: t2, expr: e2 }) => {
            t1 == t2 && expr_matches(e1, e2, classes, b)
        }
        (SizeofType(t1), SizeofType(t2)) => t1 == t2,
        (Comma(a1, b1), Comma(a2, b2)) => {
            expr_matches(a1, a2, classes, b) && expr_matches(b1, b2, classes, b)
        }
        _ => false,
    }
}

fn stmt_matches(
    pat: &Stmt,
    cand: &Stmt,
    classes: &BTreeMap<String, TypeClass>,
    b: &mut Bindings,
) -> bool {
    use StmtKind::*;
    match (&pat.kind, &cand.kind) {
        (Expr(p), Expr(c)) => expr_matches(p, c, classes, b),
        (Empty, Empty) | (Break, Break) | (Continue, Continue) => true,
        (Return(None), Return(None)) => true,
        (Return(Some(p)), Return(Some(c))) => expr_matches(p, c, classes, b),
        (Decl(p), Decl(c)) => {
            p.ty == c.ty
                && p.name == c.name
                && match (&p.init, &c.init) {
                    (None, None) => true,
                    (Some(Initializer::Expr(pe)), Some(Initializer::Expr(ce))) => {
                        expr_matches(pe, ce, classes, b)
                    }
                    _ => false,
                }
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::{parse_expr, parse_stmt, Lexer, Parser};
    use std::collections::HashSet;

    fn pat(src: &str, wildcards: &[&str]) -> Expr {
        let (tokens, _) = Lexer::new(src).tokenize().unwrap();
        let wc: HashSet<String> = wildcards.iter().map(|s| s.to_string()).collect();
        let mut p = Parser::with_wildcards(tokens, wc);
        p.expr().unwrap()
    }

    fn classes(names: &[&str]) -> BTreeMap<String, TypeClass> {
        names
            .iter()
            .map(|n| (n.to_string(), TypeClass::Scalar))
            .collect()
    }

    #[test]
    fn literal_pattern_matches_exactly() {
        let p = pat("WAIT_FOR_DB_FULL(x)", &[]);
        let c = parse_expr("WAIT_FOR_DB_FULL(x)").unwrap();
        assert!(match_expr(&p, &c, &BTreeMap::new()).is_some());
        let c2 = parse_expr("WAIT_FOR_DB_FULL(y)").unwrap();
        assert!(match_expr(&p, &c2, &BTreeMap::new()).is_none());
    }

    #[test]
    fn wildcard_binds_argument() {
        let p = pat("WAIT_FOR_DB_FULL(addr)", &["addr"]);
        let c = parse_expr("WAIT_FOR_DB_FULL(hdr.address + 4)").unwrap();
        let b = match_expr(&p, &c, &classes(&["addr"])).unwrap();
        assert_eq!(mc_ast::print_expr(&b["addr"]), "hdr.address + 4");
    }

    #[test]
    fn repeated_wildcard_requires_equality() {
        let p = pat("copy(dst, dst)", &["dst"]);
        let same = parse_expr("copy(buf, buf)").unwrap();
        let diff = parse_expr("copy(buf, other)").unwrap();
        let cls = classes(&["dst"]);
        assert!(match_expr(&p, &same, &cls).is_some());
        assert!(match_expr(&p, &diff, &cls).is_none());
    }

    #[test]
    fn scalar_class_rejects_strings() {
        let p = pat("f(x)", &["x"]);
        let c = parse_expr("f(\"hello\")").unwrap();
        assert!(match_expr(&p, &c, &classes(&["x"])).is_none());
        // But Any admits it.
        let mut cls = BTreeMap::new();
        cls.insert("x".to_string(), TypeClass::Any);
        assert!(match_expr(&p, &c, &cls).is_some());
    }

    #[test]
    fn assignment_pattern() {
        let p = pat("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA", &[]);
        let c = parse_expr("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA").unwrap();
        assert!(match_expr(&p, &c, &BTreeMap::new()).is_some());
        let c2 = parse_expr("HANDLER_GLOBALS(header.nh.len) = LEN_WORD").unwrap();
        assert!(match_expr(&p, &c2, &BTreeMap::new()).is_none());
    }

    #[test]
    fn arity_must_match() {
        let p = pat("NI_SEND(t, F_DATA, k, w, d, n)", &["t", "k", "w", "d", "n"]);
        let six = parse_expr("NI_SEND(a, F_DATA, b, c, d, e)").unwrap();
        let five = parse_expr("NI_SEND(a, F_DATA, b, c, d)").unwrap();
        let cls = classes(&["t", "k", "w", "d", "n"]);
        assert!(match_expr(&p, &six, &cls).is_some());
        assert!(match_expr(&p, &five, &cls).is_none());
    }

    #[test]
    fn stmt_pattern_matches_expression_statement() {
        let pstmt = parse_stmt("f();").unwrap();
        let cstmt = parse_stmt("f();").unwrap();
        assert!(match_stmt(&pstmt, &cstmt, &BTreeMap::new()).is_some());
        let other = parse_stmt("g();").unwrap();
        assert!(match_stmt(&pstmt, &other, &BTreeMap::new()).is_none());
    }

    #[test]
    fn spelling_of_literals_ignored() {
        let p = pat("f(255)", &[]);
        let c = parse_expr("f(0xff)").unwrap();
        assert!(match_expr(&p, &c, &BTreeMap::new()).is_some());
    }

    #[test]
    fn nested_member_chains() {
        let p = pat("HANDLER_GLOBALS(header.nh.len)", &[]);
        let deep = parse_expr("HANDLER_GLOBALS(header.nh.len)").unwrap();
        let shallow = parse_expr("HANDLER_GLOBALS(header.len)").unwrap();
        assert!(match_expr(&p, &deep, &BTreeMap::new()).is_some());
        assert!(match_expr(&p, &shallow, &BTreeMap::new()).is_none());
    }
}
