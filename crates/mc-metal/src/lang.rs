//! The metal program representation.

use mc_ast::{Expr, ExprKind, Span, Stmt, StmtKind};
use std::collections::{BTreeMap, HashSet};

/// The type class of a wildcard variable, from `decl { class } name;`.
///
/// The paper's checkers use `scalar` (any C integer expression) and
/// `unsigned`; metal's classes restrict what a wildcard may bind to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypeClass {
    /// Any integer-ish expression (excludes string and float literals).
    Scalar,
    /// Alias of [`TypeClass::Scalar`] in this implementation (we do not run
    /// full type inference; the distinction never changes a match in the
    /// paper's checkers).
    Unsigned,
    /// Any expression at all.
    Any,
}

impl TypeClass {
    /// Whether an expression may bind to a wildcard of this class.
    pub fn admits(self, e: &Expr) -> bool {
        match self {
            TypeClass::Any => true,
            TypeClass::Scalar | TypeClass::Unsigned => {
                !matches!(e.kind, ExprKind::StrLit(_) | ExprKind::FloatLit(..))
            }
        }
    }
}

/// A compiled pattern: a C fragment with wildcard holes.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    /// The fragment.
    pub kind: PatternKind,
    /// Identifiers (non-wildcard) that must appear in a node for this
    /// pattern to possibly match — a cheap pre-filter index. See
    /// [`Pattern::required_idents`].
    required: Vec<String>,
}

/// The two fragment shapes a `{ ... }` pattern can take.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternKind {
    /// An expression pattern; matches any subexpression of an event.
    Expr(Expr),
    /// A statement pattern; matches a whole statement.
    Stmt(Stmt),
}

impl Pattern {
    /// Creates a pattern from a parsed fragment, computing the ident index.
    pub fn new(kind: PatternKind) -> Pattern {
        let mut required = Vec::new();
        match &kind {
            PatternKind::Expr(e) => collect_idents_expr(e, &mut required),
            PatternKind::Stmt(s) => collect_idents_stmt(s, &mut required),
        }
        required.sort();
        required.dedup();
        Pattern { kind, required }
    }

    /// Non-wildcard identifiers the pattern mentions. A candidate node that
    /// does not contain all of them cannot match, so the engine can skip
    /// the full structural comparison (the "pattern indexing" ablation).
    pub fn required_idents(&self) -> &[String] {
        &self.required
    }
}

fn collect_idents_expr(e: &Expr, out: &mut Vec<String>) {
    struct V<'a>(&'a mut Vec<String>);
    impl mc_ast::Visitor for V<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Ident(name) = &e.kind {
                self.0.push(name.clone());
            }
        }
    }
    let mut v = V(out);
    mc_ast::Visitor::visit_expr(&mut v, e);
    mc_ast::walk_expr(&mut v, e);
}

fn collect_idents_stmt(s: &Stmt, out: &mut Vec<String>) {
    if let StmtKind::Expr(e) = &s.kind {
        collect_idents_expr(e, out);
        return;
    }
    struct V<'a>(&'a mut Vec<String>);
    impl mc_ast::Visitor for V<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Ident(name) = &e.kind {
                self.0.push(name.clone());
            }
        }
    }
    let mut v = V(out);
    mc_ast::walk_stmt(&mut v, s);
}

/// Index of a state within a [`MetalProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub usize);

/// Where a rule sends the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleTarget {
    /// Stay in the current state (rule had no state after `==>`).
    Stay,
    /// Go to the named state.
    Goto(StateId),
    /// Stop checking this path (the built-in `stop` state).
    Stop,
}

/// An action executed when a rule fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// `err("message")` — report an error at the matched location. The
    /// message may reference wildcard bindings with `%name`.
    Err(String),
    /// `warn("message")` — like `err` but reported at warning severity.
    Warn(String),
}

/// One rule of a state: pattern alternatives, a target, and actions.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Pattern alternatives (`|`-joined in the source, named patterns
    /// already expanded).
    pub patterns: Vec<Pattern>,
    /// Where to transition when a pattern matches.
    pub target: RuleTarget,
    /// Actions to run on a match.
    pub actions: Vec<Action>,
    /// Location of the rule's first token in the metal source, for
    /// load-time diagnostics (shadowed rules, unbound interpolations).
    pub span: Span,
}

/// A named state and its rules.
#[derive(Debug, Clone, PartialEq)]
pub struct StateDef {
    /// State name as written.
    pub name: String,
    /// Rules, in source order (first match wins).
    pub rules: Vec<Rule>,
    /// Location of the state's name token in the metal source, for the
    /// unreachable-state diagnostic.
    pub span: Span,
}

/// A parsed metal program.
#[derive(Debug, Clone, PartialEq)]
pub struct MetalProgram {
    /// Machine name from `sm NAME { ... }`.
    pub name: String,
    /// Raw text of the `{ ... }` prologue before `sm`, if any (the paper's
    /// examples carry `#include "flash-includes.h"` there).
    pub prologue: Option<String>,
    /// Wildcard variables and their classes.
    pub wildcards: BTreeMap<String, TypeClass>,
    /// States in declaration order. The machine starts in the first state
    /// that is not `all`.
    pub states: Vec<StateDef>,
    /// Index of the special `all` state whose rules apply in every state,
    /// if declared.
    pub all_state: Option<StateId>,
}

impl MetalProgram {
    /// The id of the start state: the first declared state. When the first
    /// state is `all` (as in Figure 3 of the paper), the machine starts
    /// there — a neutral state in which only the always-applied rules run
    /// until one of them transitions elsewhere.
    pub fn start_state(&self) -> StateId {
        StateId(0)
    }

    /// Looks up a state id by name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|s| s.name == name).map(StateId)
    }

    /// The set of wildcard names, used when parsing pattern fragments.
    pub fn wildcard_names(&self) -> HashSet<String> {
        self.wildcards.keys().cloned().collect()
    }

    /// Number of lines in the original source, recorded for Table 7's
    /// checker-size column.
    pub fn source_lines(src: &str) -> usize {
        src.lines().filter(|l| !l.trim().is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::parse_expr;

    #[test]
    fn typeclass_admits() {
        let int = parse_expr("x + 1").unwrap();
        let s = parse_expr("\"str\"").unwrap();
        assert!(TypeClass::Scalar.admits(&int));
        assert!(!TypeClass::Scalar.admits(&s));
        assert!(TypeClass::Any.admits(&s));
    }

    #[test]
    fn required_idents_collected() {
        let e = parse_expr("PI_SEND(F_DATA, keep, swap)").unwrap();
        let p = Pattern::new(PatternKind::Expr(e));
        let req = p.required_idents();
        assert!(req.contains(&"PI_SEND".to_string()));
        assert!(req.contains(&"F_DATA".to_string()));
    }
}
