//! Compilation of metal programs to indexed decision programs.
//!
//! The interpreted engine ([`crate::MetalMachine`]) walks the pattern AST
//! recursively for every `(candidate, pattern)` pair and re-derives a
//! per-candidate identifier set for the `required_idents` pre-filter. That
//! is the hot loop of the whole checker: the paper's throughput numbers are
//! dominated by it. This module lowers a parsed [`MetalProgram`] once, at
//! load time, into a [`CompiledProgram`]:
//!
//! * a **dispatch index** per state, keyed on the candidate's root
//!   expression kind and head identifier, so a candidate only ever meets
//!   the patterns that could possibly match it;
//! * **pattern bytecode** — each pattern becomes a flat op sequence
//!   executed by a small non-recursive loop with interned identifiers and
//!   pre-allocated binding slots;
//! * **load-time validation** — unreachable states, shadowed rules,
//!   unbound `%wildcard` interpolations, and unmatchable patterns are
//!   diagnosed once, when the checker is loaded, instead of silently doing
//!   nothing at check time.
//!
//! [`CompiledMachine`] produces byte-identical reports to the interpreter:
//! the index only skips patterns that cannot match, rule order is preserved
//! by merging index buckets on rule/pattern ordinals, and the bytecode
//! replays exactly the comparison and binding order of
//! [`crate::matcher`].

use crate::engine::{interpolate, postorder, stmt_candidates, Candidate, MetalReport};
use crate::lang::{
    Action, MetalProgram, Pattern, PatternKind, Rule, RuleTarget, StateId, TypeClass,
};
use crate::matcher::{exprs_equal, Bindings};
use mc_ast::{BinaryOp, Expr, ExprKind, Initializer, Span, Stmt, StmtKind, Type, UnaryOp};
use mc_cfg::{PathEvent, PathMachine, Witness};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Which metal execution engine the driver should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MetalEngine {
    /// The indexed decision-program engine ([`CompiledMachine`]).
    #[default]
    Compiled,
    /// The reference interpreter ([`crate::MetalMachine`]), kept as a
    /// differential oracle.
    Interp,
}

impl MetalEngine {
    /// Parses an engine name as accepted by `--metal-engine`.
    pub fn parse(s: &str) -> Option<MetalEngine> {
        match s {
            "compiled" => Some(MetalEngine::Compiled),
            "interp" => Some(MetalEngine::Interp),
            _ => None,
        }
    }

    /// The canonical name of the engine (`compiled` or `interp`).
    pub fn as_str(self) -> &'static str {
        match self {
            MetalEngine::Compiled => "compiled",
            MetalEngine::Interp => "interp",
        }
    }
}

/// A hard error that prevents a program from being compiled.
///
/// Compilation only fails on structural impossibilities (e.g. a pattern
/// with more than 255 distinct wildcards); everything a parsed program can
/// legitimately express compiles, possibly with [`CompileDiag`] warnings,
/// so engine choice never changes which checkers load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Location of the offending rule in the metal source.
    pub span: Span,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CompileError {}

/// The category of a load-time diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileDiagKind {
    /// A state that no reachable rule transitions into.
    UnreachableState,
    /// A pattern structurally covered by an earlier pattern of the same
    /// state, so the earlier rule always wins.
    ShadowedRule,
    /// An action message referencing a `%wildcard` that some pattern
    /// alternative of the rule never binds.
    UnboundInterpolation,
    /// A pattern that can never match any candidate the traversal emits.
    UnmatchablePattern,
}

impl CompileDiagKind {
    /// A stable identifier for the diagnostic, used in rendered reports.
    pub fn code(self) -> &'static str {
        match self {
            CompileDiagKind::UnreachableState => "unreachable-state",
            CompileDiagKind::ShadowedRule => "shadowed-rule",
            CompileDiagKind::UnboundInterpolation => "unbound-interpolation",
            CompileDiagKind::UnmatchablePattern => "unmatchable-pattern",
        }
    }
}

/// A load-time warning about a suspicious (but accepted) metal program.
///
/// Diagnostics never reject a program the parser accepted — both engines
/// must check the same suite — they are surfaced through the driver as
/// warning-severity reports against the checker source itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileDiag {
    /// What kind of problem was found.
    pub kind: CompileDiagKind,
    /// Human-readable description, naming the state or rule involved.
    pub message: String,
    /// Location in the metal source (a state name or rule start).
    pub span: Span,
}

/// Interned identifier symbol; compares as a `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Sym(u32);

/// String interner for pattern identifiers and member field names.
///
/// Only identifiers that appear in patterns are interned; a candidate-side
/// name that fails [`Interner::lookup`] can therefore not match any keyed
/// pattern, which is what makes head-identifier dispatch O(1).
#[derive(Debug, Default)]
struct Interner {
    names: Vec<String>,
    map: HashMap<String, Sym>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.map.get(name) {
            return s;
        }
        let s = Sym(self.names.len() as u32);
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), s);
        s
    }

    fn lookup(&self, name: &str) -> Option<Sym> {
        self.map.get(name).copied()
    }

    fn name(&self, s: Sym) -> &str {
        &self.names[s.0 as usize]
    }
}

/// One bytecode instruction of a compiled pattern.
///
/// Ops are emitted in pre-order over the pattern AST; the executor pops the
/// corresponding candidate node off an explicit stack, tests it, and pushes
/// its children in reverse so they pop in emission order.
#[derive(Debug, Clone)]
enum Op {
    /// Bind the node to wildcard slot `slot` (class-checked; a repeated
    /// slot must be structurally equal to the first binding).
    Bind { slot: u8, class: TypeClass },
    /// Node must be the interned identifier.
    Ident(Sym),
    /// Node must be an integer literal with this value.
    IntLit(i64),
    /// Node must be a float literal with this value.
    FloatLit(f64),
    /// Node must be a character literal with this value.
    CharLit(char),
    /// Node must be a string literal with this value.
    StrLit(String),
    /// Node must be a call with exactly `arity` arguments; descends into
    /// callee then arguments.
    CallHead { arity: u32 },
    /// Node must be a binary expression with this operator.
    Binary(BinaryOp),
    /// Node must be a unary expression with this operator.
    Unary(UnaryOp),
    /// Node must be a postfix `++`/`--` with matching direction.
    Postfix { inc: bool },
    /// Node must be an assignment with this (compound) operator.
    Assign { op: Option<BinaryOp> },
    /// Node must be a ternary conditional.
    Ternary,
    /// Node must be an index expression.
    Index,
    /// Node must be a member access with this field and `.`/`->` kind.
    Member { field: Sym, arrow: bool },
    /// Node must be a cast to exactly this type.
    Cast(Type),
    /// Node must be `sizeof` of exactly this type.
    SizeofType(Type),
    /// Node must be a comma expression.
    Comma,
}

/// The statement-level shape of a compiled pattern — what kinds of
/// candidate it can meet at all.
#[derive(Debug, Clone)]
enum PatShape {
    /// An expression pattern. `from_stmt` records that it was written as a
    /// statement (`{ e; }`), which also matches expression statements.
    Expr { from_stmt: bool },
    /// `return;`
    ReturnNone,
    /// `return e;` — ops run against the returned expression.
    ReturnSome,
    /// A declaration; ops run against the initializer when `has_init`.
    Decl {
        /// Declared type, compared exactly.
        ty: Type,
        /// Declared name, compared exactly.
        name: String,
        /// Whether the pattern has an initializer expression.
        has_init: bool,
    },
    /// `;`
    Empty,
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A pattern no candidate can ever match (e.g. a list initializer).
    Never,
}

/// A fully lowered pattern: shape, bytecode, and binding slot names.
#[derive(Debug)]
struct CompiledPattern {
    shape: PatShape,
    ops: Vec<Op>,
    /// Wildcard name and class per slot, in first-occurrence order.
    slots: Vec<(String, TypeClass)>,
}

/// A rule's compiled action part (the match part lives in the patterns).
#[derive(Debug)]
struct CompiledRule {
    target: RuleTarget,
    actions: Vec<Action>,
}

/// An index entry: rule/pattern ids plus the ordinal that preserves the
/// interpreter's first-match-wins order when buckets are merged.
#[derive(Debug, Clone, Copy)]
struct Entry {
    ord: u32,
    rule: u32,
    pat: u32,
}

/// Number of expression kind tags (see [`expr_tag`]).
const N_TAGS: usize = 17;

fn expr_tag(k: &ExprKind) -> usize {
    match k {
        ExprKind::IntLit(..) => 0,
        ExprKind::FloatLit(..) => 1,
        ExprKind::CharLit(..) => 2,
        ExprKind::StrLit(..) => 3,
        ExprKind::Ident(..) => 4,
        ExprKind::Call { .. } => 5,
        ExprKind::Binary { .. } => 6,
        ExprKind::Unary { .. } => 7,
        ExprKind::Postfix { .. } => 8,
        ExprKind::Assign { .. } => 9,
        ExprKind::Ternary { .. } => 10,
        ExprKind::Index { .. } => 11,
        ExprKind::Member { .. } => 12,
        ExprKind::Cast { .. } => 13,
        ExprKind::SizeofType(..) => 14,
        ExprKind::Comma(..) => 15,
        ExprKind::Wildcard(..) => 16,
    }
}

/// The head identifier of an expression: the name reached by descending
/// the child the matcher compares first (callee of a call, base of a
/// member/index, left operand, …). Because the matcher forces the pattern
/// and candidate to agree on node kind at every step of this path, a
/// pattern with head `H` can only match candidates with head `H` — that is
/// the soundness argument for keyed dispatch.
fn head_ident(e: &Expr) -> Option<&str> {
    match &e.kind {
        ExprKind::Ident(name) => Some(name),
        ExprKind::Call { callee, .. } => head_ident(callee),
        ExprKind::Assign { lhs, .. } => head_ident(lhs),
        ExprKind::Member { base, .. } => head_ident(base),
        ExprKind::Index { base, .. } => head_ident(base),
        ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => head_ident(operand),
        ExprKind::Cast { expr, .. } => head_ident(expr),
        ExprKind::Binary { lhs, .. } => head_ident(lhs),
        ExprKind::Comma(a, _) => head_ident(a),
        ExprKind::Ternary { cond, .. } => head_ident(cond),
        _ => None,
    }
}

/// Where a pattern is registered in the per-state dispatch index.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ExprDispatch {
    /// `by_key[(tag, head)]` — root kind and head identifier both pinned.
    Keyed(usize, Sym),
    /// `by_kind[tag]` — root kind pinned, head unknown (a wildcard sits on
    /// the head path).
    Kind(usize),
    /// Wildcard root: meets every expression candidate.
    Generic,
}

/// The dispatch index of one state: every pattern of the state's effective
/// rule list (own rules, then `all` rules) appears in exactly one bucket.
#[derive(Debug, Default)]
struct StateIndex {
    /// Keyed bucket: `(root tag << 32) | head symbol`.
    by_key: HashMap<u64, Vec<Entry>>,
    /// Per-root-kind bucket for patterns with an unkeyable head.
    by_kind: Vec<Vec<Entry>>,
    /// Wildcard-root patterns, tried against every expression.
    generic: Vec<Entry>,
    /// `has_key[tag]` — whether `by_key` has any entry with this root tag,
    /// letting the hot path skip the candidate head walk entirely.
    has_key: [bool; N_TAGS],
    /// Statement-pattern buckets by candidate statement kind.
    expr_stmt: Vec<Entry>,
    ret_none: Vec<Entry>,
    ret_some: Vec<Entry>,
    decl: Vec<Entry>,
    empty: Vec<Entry>,
    brk: Vec<Entry>,
    cont: Vec<Entry>,
}

fn key_of(tag: usize, sym: Sym) -> u64 {
    ((tag as u64) << 32) | sym.0 as u64
}

/// Program-wide union of every state's expression dispatch buckets.
///
/// [`CandidatePlan::build`] consults it to reject candidates that cannot
/// match in *any* state with one tag test (plus, for keyed patterns, one
/// head lookup), before paying the per-state dispatch rounds.
#[derive(Debug, Default)]
struct Prefilter {
    /// `by_kind[tag]` is nonempty in some state.
    any_kind: [bool; N_TAGS],
    /// Some state has a generic (wildcard-root) pattern.
    any_generic: bool,
    /// Some state has a keyed pattern with this root tag.
    any_has_key: [bool; N_TAGS],
    /// Union of the states' `by_key` key sets.
    any_key: HashSet<u64>,
}

impl Prefilter {
    fn build(states: &[StateIndex]) -> Prefilter {
        let mut pre = Prefilter::default();
        for idx in states {
            for (tag, has) in idx.has_key.iter().enumerate() {
                pre.any_has_key[tag] |= has;
            }
            pre.any_key.extend(idx.by_key.keys().copied());
            for (tag, bucket) in idx.by_kind.iter().enumerate() {
                pre.any_kind[tag] |= !bucket.is_empty();
            }
            pre.any_generic |= !idx.generic.is_empty();
        }
        pre
    }

    /// `false` only if [`CompiledMachine::find_expr`] is guaranteed to
    /// return `None` for `e` in every state.
    fn admits(&self, interner: &Interner, e: &Expr) -> bool {
        if self.any_generic {
            return true;
        }
        let tag = expr_tag(&e.kind);
        if self.any_kind[tag] {
            return true;
        }
        if !self.any_has_key[tag] {
            return false;
        }
        match head_ident(e).and_then(|n| interner.lookup(n)) {
            Some(sym) => self.any_key.contains(&key_of(tag, sym)),
            None => false,
        }
    }
}

/// Cross-program union of several [`Prefilter`]s, keyed by head-ident
/// *string hash* instead of per-program interner symbols so one probe
/// covers every program. Hash collisions only widen the filter (the
/// per-program [`Prefilter::admits`] still runs on whatever gets through),
/// so a false positive costs a little time and a false negative is
/// impossible.
#[derive(Debug, Default)]
struct UnionPrefilter {
    any_kind: [bool; N_TAGS],
    any_generic: bool,
    any_has_key: [bool; N_TAGS],
    names: HashSet<u64, std::hash::BuildHasherDefault<NodeKeyHasher>>,
}

fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn union_key(tag: usize, name: &str) -> u64 {
    fnv64(name).wrapping_mul(31).wrapping_add(tag as u64)
}

impl UnionPrefilter {
    fn build(progs: &[&CompiledProgram]) -> UnionPrefilter {
        let mut u = UnionPrefilter::default();
        for prog in progs {
            for tag in 0..N_TAGS {
                u.any_kind[tag] |= prog.pre.any_kind[tag];
                u.any_has_key[tag] |= prog.pre.any_has_key[tag];
            }
            u.any_generic |= prog.pre.any_generic;
            for &key in &prog.pre.any_key {
                let tag = (key >> 32) as usize;
                let name = prog.interner.name(Sym(key as u32));
                u.names.insert(union_key(tag, name));
            }
        }
        u
    }

    /// `false` only if every program's [`Prefilter::admits`] returns
    /// `false` for `e`.
    fn admits(&self, e: &Expr) -> bool {
        if self.any_generic {
            return true;
        }
        let tag = expr_tag(&e.kind);
        if self.any_kind[tag] {
            return true;
        }
        if !self.any_has_key[tag] {
            return false;
        }
        match head_ident(e) {
            Some(n) => self.names.contains(&union_key(tag, n)),
            None => false,
        }
    }
}

/// A metal program lowered to an indexed decision program.
///
/// Built once per program by [`CompiledProgram::compile`]; shared
/// (immutably) by every [`CompiledMachine`] that runs it. Owns everything
/// it needs, so it can live alongside the source [`MetalProgram`] without
/// borrowing from it.
#[derive(Debug)]
pub struct CompiledProgram {
    name: String,
    state_names: Vec<String>,
    all_state: Option<StateId>,
    rules: Vec<CompiledRule>,
    patterns: Vec<CompiledPattern>,
    states: Vec<StateIndex>,
    interner: Interner,
    max_slots: usize,
    pre: Prefilter,
    diagnostics: Vec<CompileDiag>,
}

impl CompiledProgram {
    /// Lowers `prog` into bytecode plus per-state dispatch indexes, and
    /// runs load-time validation. Validation problems are recorded as
    /// [`CompileDiag`] warnings (see [`CompiledProgram::diagnostics`]);
    /// `Err` is reserved for structural impossibilities.
    pub fn compile(prog: &MetalProgram) -> Result<CompiledProgram, CompileError> {
        let mut interner = Interner::default();
        let mut rules: Vec<CompiledRule> = Vec::new();
        let mut patterns: Vec<CompiledPattern> = Vec::new();
        let mut max_slots = 0usize;
        // Global (rule id, pattern ids) per state, in declaration order.
        let mut state_rules: Vec<Vec<(u32, Vec<u32>)>> = Vec::new();

        for st in &prog.states {
            let mut rids = Vec::new();
            for rule in &st.rules {
                let rid = rules.len() as u32;
                rules.push(CompiledRule {
                    target: rule.target.clone(),
                    actions: rule.actions.clone(),
                });
                let mut pids = Vec::new();
                for pat in &rule.patterns {
                    let pid = patterns.len() as u32;
                    let compiled = compile_pattern(pat, prog, &mut interner, rule.span)?;
                    max_slots = max_slots.max(compiled.slots.len());
                    patterns.push(compiled);
                    pids.push(pid);
                }
                rids.push((rid, pids));
            }
            state_rules.push(rids);
        }

        // Per-state dispatch: effective order is the state's own rules
        // followed by the `all` state's rules, exactly like the
        // interpreter's `find_rule`. Ordinals are per-state because the
        // same `all` rule sits at a different position in each state's
        // effective list.
        let mut states = Vec::with_capacity(prog.states.len());
        for (si, _) in prog.states.iter().enumerate() {
            let mut idx = StateIndex {
                by_kind: vec![Vec::new(); N_TAGS],
                ..StateIndex::default()
            };
            let mut ord = 0u32;
            let mut effective: Vec<&(u32, Vec<u32>)> = state_rules[si].iter().collect();
            if let Some(all) = prog.all_state {
                if all.0 != si {
                    effective.extend(state_rules[all.0].iter());
                }
            }
            for (rid, pids) in effective {
                for pid in pids {
                    let entry = Entry {
                        ord,
                        rule: *rid,
                        pat: *pid,
                    };
                    ord += 1;
                    register(&mut idx, entry, &patterns[*pid as usize]);
                }
            }
            states.push(idx);
        }

        let pre = Prefilter::build(&states);
        let mut cp = CompiledProgram {
            name: prog.name.clone(),
            state_names: prog.states.iter().map(|s| s.name.clone()).collect(),
            all_state: prog.all_state,
            rules,
            patterns,
            states,
            interner,
            max_slots,
            pre,
            diagnostics: Vec::new(),
        };
        cp.diagnostics = validate(prog, &cp);
        Ok(cp)
    }

    /// Machine name from `sm NAME { ... }`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The start state (the first declared state, like the interpreter).
    pub fn start_state(&self) -> StateId {
        StateId(0)
    }

    /// State names in declaration order.
    pub fn state_names(&self) -> &[String] {
        &self.state_names
    }

    /// Looks up a state id by name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.state_names.iter().position(|s| s == name).map(StateId)
    }

    /// Load-time validation warnings, in deterministic source order.
    pub fn diagnostics(&self) -> &[CompileDiag] {
        &self.diagnostics
    }
}

/// Compiles one pattern to shape + bytecode.
fn compile_pattern(
    pat: &Pattern,
    prog: &MetalProgram,
    interner: &mut Interner,
    span: Span,
) -> Result<CompiledPattern, CompileError> {
    let mut ops = Vec::new();
    let mut slots: Vec<(String, TypeClass)> = Vec::new();
    let shape = match &pat.kind {
        PatternKind::Expr(e) => {
            emit_expr(e, prog, interner, &mut ops, &mut slots, span)?;
            PatShape::Expr { from_stmt: false }
        }
        PatternKind::Stmt(s) => match &s.kind {
            StmtKind::Expr(e) => {
                emit_expr(e, prog, interner, &mut ops, &mut slots, span)?;
                PatShape::Expr { from_stmt: true }
            }
            StmtKind::Return(None) => PatShape::ReturnNone,
            StmtKind::Return(Some(e)) => {
                emit_expr(e, prog, interner, &mut ops, &mut slots, span)?;
                PatShape::ReturnSome
            }
            StmtKind::Empty => PatShape::Empty,
            StmtKind::Break => PatShape::Break,
            StmtKind::Continue => PatShape::Continue,
            StmtKind::Decl(d) => match &d.init {
                None => PatShape::Decl {
                    ty: d.ty.clone(),
                    name: d.name.clone(),
                    has_init: false,
                },
                Some(Initializer::Expr(e)) => {
                    emit_expr(e, prog, interner, &mut ops, &mut slots, span)?;
                    PatShape::Decl {
                        ty: d.ty.clone(),
                        name: d.name.clone(),
                        has_init: true,
                    }
                }
                // The matcher rejects every candidate for list
                // initializers; keep the pattern (both engines must agree)
                // but mark it unmatchable.
                Some(_) => PatShape::Never,
            },
            // Control-flow statements are decomposed by the CFG and never
            // appear as candidates; the matcher's fallthrough arm rejects
            // them unconditionally.
            _ => PatShape::Never,
        },
    };
    Ok(CompiledPattern { shape, ops, slots })
}

/// Emits pre-order bytecode for an expression pattern.
fn emit_expr(
    e: &Expr,
    prog: &MetalProgram,
    interner: &mut Interner,
    ops: &mut Vec<Op>,
    slots: &mut Vec<(String, TypeClass)>,
    span: Span,
) -> Result<(), CompileError> {
    match &e.kind {
        ExprKind::Wildcard(name) => {
            let slot = match slots.iter().position(|(n, _)| n == name) {
                Some(i) => i,
                None => {
                    let class = prog.wildcards.get(name).copied().unwrap_or(TypeClass::Any);
                    slots.push((name.clone(), class));
                    slots.len() - 1
                }
            };
            if slot > u8::MAX as usize {
                return Err(CompileError {
                    message: format!(
                        "pattern has more than {} distinct wildcards",
                        u8::MAX as usize + 1
                    ),
                    span,
                });
            }
            ops.push(Op::Bind {
                slot: slot as u8,
                class: slots[slot].1,
            });
        }
        ExprKind::Ident(name) => ops.push(Op::Ident(interner.intern(name))),
        ExprKind::IntLit(v, _) => ops.push(Op::IntLit(*v)),
        ExprKind::FloatLit(v, _) => ops.push(Op::FloatLit(*v)),
        ExprKind::CharLit(c) => ops.push(Op::CharLit(*c)),
        ExprKind::StrLit(s) => ops.push(Op::StrLit(s.clone())),
        ExprKind::Call { callee, args } => {
            ops.push(Op::CallHead {
                arity: args.len() as u32,
            });
            emit_expr(callee, prog, interner, ops, slots, span)?;
            for a in args {
                emit_expr(a, prog, interner, ops, slots, span)?;
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            ops.push(Op::Binary(*op));
            emit_expr(lhs, prog, interner, ops, slots, span)?;
            emit_expr(rhs, prog, interner, ops, slots, span)?;
        }
        ExprKind::Unary { op, operand } => {
            ops.push(Op::Unary(*op));
            emit_expr(operand, prog, interner, ops, slots, span)?;
        }
        ExprKind::Postfix { operand, inc } => {
            ops.push(Op::Postfix { inc: *inc });
            emit_expr(operand, prog, interner, ops, slots, span)?;
        }
        ExprKind::Assign { op, lhs, rhs } => {
            ops.push(Op::Assign { op: *op });
            emit_expr(lhs, prog, interner, ops, slots, span)?;
            emit_expr(rhs, prog, interner, ops, slots, span)?;
        }
        ExprKind::Ternary { cond, then, els } => {
            ops.push(Op::Ternary);
            emit_expr(cond, prog, interner, ops, slots, span)?;
            emit_expr(then, prog, interner, ops, slots, span)?;
            emit_expr(els, prog, interner, ops, slots, span)?;
        }
        ExprKind::Index { base, index } => {
            ops.push(Op::Index);
            emit_expr(base, prog, interner, ops, slots, span)?;
            emit_expr(index, prog, interner, ops, slots, span)?;
        }
        ExprKind::Member { base, field, arrow } => {
            ops.push(Op::Member {
                field: interner.intern(field),
                arrow: *arrow,
            });
            emit_expr(base, prog, interner, ops, slots, span)?;
        }
        ExprKind::Cast { ty, expr } => {
            ops.push(Op::Cast(ty.clone()));
            emit_expr(expr, prog, interner, ops, slots, span)?;
        }
        ExprKind::SizeofType(ty) => ops.push(Op::SizeofType(ty.clone())),
        ExprKind::Comma(a, b) => {
            ops.push(Op::Comma);
            emit_expr(a, prog, interner, ops, slots, span)?;
            emit_expr(b, prog, interner, ops, slots, span)?;
        }
    }
    Ok(())
}

/// Registers a pattern's entry in the right bucket(s) of a state index.
fn register(idx: &mut StateIndex, entry: Entry, pat: &CompiledPattern) {
    match &pat.shape {
        PatShape::Expr { from_stmt } => {
            // Root op decides the expression-side bucket.
            let dispatch = match pat.ops.first() {
                Some(Op::Bind { .. }) | None => ExprDispatch::Generic,
                Some(op) => {
                    let tag = root_tag(op);
                    match pattern_head(pat) {
                        Some(sym) => ExprDispatch::Keyed(tag, sym),
                        None => ExprDispatch::Kind(tag),
                    }
                }
            };
            match dispatch {
                ExprDispatch::Keyed(tag, sym) => {
                    idx.has_key[tag] = true;
                    idx.by_key.entry(key_of(tag, sym)).or_default().push(entry);
                }
                ExprDispatch::Kind(tag) => idx.by_kind[tag].push(entry),
                ExprDispatch::Generic => idx.generic.push(entry),
            }
            if *from_stmt {
                idx.expr_stmt.push(entry);
            }
        }
        PatShape::ReturnNone => idx.ret_none.push(entry),
        PatShape::ReturnSome => idx.ret_some.push(entry),
        PatShape::Decl { .. } => idx.decl.push(entry),
        PatShape::Empty => idx.empty.push(entry),
        PatShape::Break => idx.brk.push(entry),
        PatShape::Continue => idx.cont.push(entry),
        PatShape::Never => {}
    }
}

/// The expression tag a root op demands of its candidate.
fn root_tag(op: &Op) -> usize {
    match op {
        Op::IntLit(..) => 0,
        Op::FloatLit(..) => 1,
        Op::CharLit(..) => 2,
        Op::StrLit(..) => 3,
        Op::Ident(..) => 4,
        Op::CallHead { .. } => 5,
        Op::Binary(..) => 6,
        Op::Unary(..) => 7,
        Op::Postfix { .. } => 8,
        Op::Assign { .. } => 9,
        Op::Ternary => 10,
        Op::Index => 11,
        Op::Member { .. } => 12,
        Op::Cast(..) => 13,
        Op::SizeofType(..) => 14,
        Op::Comma => 15,
        Op::Bind { .. } => 16,
    }
}

/// Walks the pattern bytecode along the head path (the same descent as
/// [`head_ident`] on candidates) and returns the pinned head symbol, or
/// `None` if a wildcard or literal sits on the path.
fn pattern_head(pat: &CompiledPattern) -> Option<Sym> {
    // The head path child is always the *first* child emitted, and ops are
    // emitted pre-order, so the head path is simply a prefix of the op
    // stream: keep following ops while they are interior head-path nodes.
    let mut i = 0;
    loop {
        match pat.ops.get(i)? {
            Op::Ident(s) => return Some(*s),
            Op::CallHead { .. }
            | Op::Assign { .. }
            | Op::Member { .. }
            | Op::Index
            | Op::Unary(..)
            | Op::Postfix { .. }
            | Op::Cast(..)
            | Op::Binary(..)
            | Op::Comma
            | Op::Ternary => i += 1,
            _ => return None,
        }
    }
}

/// Runs load-time validation over a program, returning warnings in source
/// order: unreachable states first, then per-rule problems.
fn validate(prog: &MetalProgram, cp: &CompiledProgram) -> Vec<CompileDiag> {
    let mut diags = Vec::new();

    // Unreachable states: BFS over goto edges from the start state. The
    // `all` state's rules apply everywhere, so its gotos are live from any
    // reachable state, and the `all` state itself is never flagged.
    let mut reachable = vec![false; prog.states.len()];
    let mut work = vec![0usize];
    reachable[0] = true;
    while let Some(si) = work.pop() {
        let mut rule_sets: Vec<&[Rule]> = vec![&prog.states[si].rules];
        if let Some(all) = prog.all_state {
            if all.0 != si {
                rule_sets.push(&prog.states[all.0].rules);
            }
        }
        for rules in rule_sets {
            for rule in rules {
                if let RuleTarget::Goto(t) = rule.target {
                    if !reachable[t.0] {
                        reachable[t.0] = true;
                        work.push(t.0);
                    }
                }
            }
        }
    }
    for (si, st) in prog.states.iter().enumerate() {
        if !reachable[si] && prog.all_state != Some(StateId(si)) {
            diags.push(CompileDiag {
                kind: CompileDiagKind::UnreachableState,
                message: format!(
                    "state `{}` is unreachable: no rule reachable from the start state transitions into it",
                    st.name
                ),
                span: st.span,
            });
        }
    }

    // Per-state pattern shadowing and per-rule action checks.
    let mut pid = 0usize;
    for st in &prog.states {
        let mut earlier: Vec<&Pattern> = Vec::new();
        for rule in &st.rules {
            for (ai, pat) in rule.patterns.iter().enumerate() {
                if matches!(cp.patterns[pid].shape, PatShape::Never) {
                    diags.push(CompileDiag {
                        kind: CompileDiagKind::UnmatchablePattern,
                        message: format!(
                            "pattern alternative {} in state `{}` can never match a candidate",
                            ai + 1,
                            st.name
                        ),
                        span: rule.span,
                    });
                } else if earlier.iter().any(|q| pattern_covers(q, pat)) {
                    diags.push(CompileDiag {
                        kind: CompileDiagKind::ShadowedRule,
                        message: format!(
                            "pattern alternative {} in state `{}` duplicates an earlier pattern of the same state; the earlier rule always wins",
                            ai + 1,
                            st.name
                        ),
                        span: rule.span,
                    });
                }
                earlier.push(pat);
                pid += 1;
            }
            // Unbound interpolation: every `%wildcard` used in an action
            // message must be bound by every alternative of the rule —
            // otherwise the reference survives uninterpolated when that
            // alternative fires.
            for action in &rule.actions {
                let msg = match action {
                    Action::Err(m) | Action::Warn(m) => m,
                };
                for name in prog.wildcards.keys() {
                    if !msg.contains(&format!("%{name}")) {
                        continue;
                    }
                    let first_pid = pid - rule.patterns.len();
                    for (ai, _) in rule.patterns.iter().enumerate() {
                        let cpat = &cp.patterns[first_pid + ai];
                        if matches!(cpat.shape, PatShape::Never) {
                            continue;
                        }
                        if !cpat.slots.iter().any(|(n, _)| n == name) {
                            diags.push(CompileDiag {
                                kind: CompileDiagKind::UnboundInterpolation,
                                message: format!(
                                    "action message references `%{}` but pattern alternative {} in state `{}` does not bind it",
                                    name,
                                    ai + 1,
                                    st.name
                                ),
                                span: rule.span,
                            });
                        }
                    }
                }
            }
        }
    }

    diags
}

/// Whether pattern `q` structurally covers pattern `p`, i.e. every
/// candidate `p` could match is matched by `q` first. Wildcards must agree
/// by name (the comparison is structural, not semantic).
fn pattern_covers(q: &Pattern, p: &Pattern) -> bool {
    match (inner_expr(q), inner_expr(p)) {
        (Some(qe), Some(pe)) => exprs_equal(qe, pe),
        (None, None) => match (&q.kind, &p.kind) {
            (PatternKind::Stmt(qs), PatternKind::Stmt(ps)) => stmts_equal(qs, ps),
            _ => false,
        },
        _ => false,
    }
}

/// The expression of an `{e}` or `{e;}` pattern.
fn inner_expr(p: &Pattern) -> Option<&Expr> {
    match &p.kind {
        PatternKind::Expr(e) => Some(e),
        PatternKind::Stmt(s) => match &s.kind {
            StmtKind::Expr(e) => Some(e),
            _ => None,
        },
    }
}

/// Structural statement equality with [`exprs_equal`] leaf comparison.
fn stmts_equal(a: &Stmt, b: &Stmt) -> bool {
    match (&a.kind, &b.kind) {
        (StmtKind::Expr(x), StmtKind::Expr(y)) => exprs_equal(x, y),
        (StmtKind::Empty, StmtKind::Empty)
        | (StmtKind::Break, StmtKind::Break)
        | (StmtKind::Continue, StmtKind::Continue)
        | (StmtKind::Return(None), StmtKind::Return(None)) => true,
        (StmtKind::Return(Some(x)), StmtKind::Return(Some(y))) => exprs_equal(x, y),
        (StmtKind::Decl(x), StmtKind::Decl(y)) => {
            x.ty == y.ty
                && x.name == y.name
                && match (&x.init, &y.init) {
                    (None, None) => true,
                    (Some(Initializer::Expr(xe)), Some(Initializer::Expr(ye))) => {
                        exprs_equal(xe, ye)
                    }
                    _ => false,
                }
        }
        _ => false,
    }
}

/// Executes pattern bytecode against a candidate expression.
///
/// `stack` and `slots` are caller-provided scratch (reused across attempts
/// within one traversal step); `slots` must hold at least
/// `CompiledProgram::max_slots` entries and is reset here.
fn exec<'a>(
    ops: &[Op],
    root: &'a Expr,
    interner: &Interner,
    stack: &mut Vec<&'a Expr>,
    slots: &mut [Option<&'a Expr>],
) -> bool {
    stack.clear();
    slots.fill(None);
    stack.push(root);
    for op in ops {
        // Emission guarantees one candidate node per op.
        let node = match stack.pop() {
            Some(n) => n,
            None => return false,
        };
        match op {
            Op::Bind { slot, class } => {
                if !class.admits(node) {
                    return false;
                }
                match slots[*slot as usize] {
                    Some(prev) => {
                        if !exprs_equal(prev, node) {
                            return false;
                        }
                    }
                    None => slots[*slot as usize] = Some(node),
                }
            }
            Op::Ident(sym) => match &node.kind {
                ExprKind::Ident(n) if interner.name(*sym) == n => {}
                _ => return false,
            },
            Op::IntLit(v) => match &node.kind {
                ExprKind::IntLit(y, _) if v == y => {}
                _ => return false,
            },
            Op::FloatLit(v) => match &node.kind {
                ExprKind::FloatLit(y, _) if v == y => {}
                _ => return false,
            },
            Op::CharLit(v) => match &node.kind {
                ExprKind::CharLit(y) if v == y => {}
                _ => return false,
            },
            Op::StrLit(v) => match &node.kind {
                ExprKind::StrLit(y) if v == y => {}
                _ => return false,
            },
            Op::CallHead { arity } => match &node.kind {
                ExprKind::Call { callee, args } if args.len() == *arity as usize => {
                    for a in args.iter().rev() {
                        stack.push(a);
                    }
                    stack.push(callee);
                }
                _ => return false,
            },
            Op::Binary(o) => match &node.kind {
                ExprKind::Binary { op, lhs, rhs } if op == o => {
                    stack.push(rhs);
                    stack.push(lhs);
                }
                _ => return false,
            },
            Op::Unary(o) => match &node.kind {
                ExprKind::Unary { op, operand } if op == o => stack.push(operand),
                _ => return false,
            },
            Op::Postfix { inc } => match &node.kind {
                ExprKind::Postfix { operand, inc: i } if i == inc => stack.push(operand),
                _ => return false,
            },
            Op::Assign { op: o } => match &node.kind {
                ExprKind::Assign { op, lhs, rhs } if op == o => {
                    stack.push(rhs);
                    stack.push(lhs);
                }
                _ => return false,
            },
            Op::Ternary => match &node.kind {
                ExprKind::Ternary { cond, then, els } => {
                    stack.push(els);
                    stack.push(then);
                    stack.push(cond);
                }
                _ => return false,
            },
            Op::Index => match &node.kind {
                ExprKind::Index { base, index } => {
                    stack.push(index);
                    stack.push(base);
                }
                _ => return false,
            },
            Op::Member { field, arrow } => match &node.kind {
                ExprKind::Member {
                    base,
                    field: f,
                    arrow: a,
                } if a == arrow && interner.name(*field) == f => stack.push(base),
                _ => return false,
            },
            Op::Cast(ty) => match &node.kind {
                ExprKind::Cast { ty: t, expr } if t == ty => stack.push(expr),
                _ => return false,
            },
            Op::SizeofType(ty) => match &node.kind {
                ExprKind::SizeofType(t) if t == ty => {}
                _ => return false,
            },
            Op::Comma => match &node.kind {
                ExprKind::Comma(a, b) => {
                    stack.push(b);
                    stack.push(a);
                }
                _ => return false,
            },
        }
    }
    true
}

/// A compiled program bound to a report sink, ready to run over CFGs.
///
/// Drop-in replacement for [`crate::MetalMachine`]: same candidate
/// enumeration, same first-match-wins rule selection (via ordinal-merged
/// index buckets), same report dedup — the two engines produce identical
/// [`MetalReport`] lists and application counts on any input.
#[derive(Debug)]
pub struct CompiledMachine<'p> {
    prog: &'p CompiledProgram,
    /// Precomputed per-function match results (see [`CandidatePlan`]).
    plan: Option<&'p CandidatePlan<'p>>,
    /// Reports produced so far (deduplicated by message and location).
    pub reports: Vec<MetalReport>,
    seen: HashSet<(String, Span)>,
    /// Number of rule firings (pattern matches), including ones with no
    /// action.
    pub applications: usize,
    /// Number of candidate nodes scanned (comparable with
    /// [`crate::MetalMachine::candidates`]).
    pub candidates: u64,
    /// Number of bytecode match attempts — pattern executions that
    /// survived index dispatch. The dispatch benchmark compares this with
    /// the interpreter's structural-comparison count. A machine running
    /// from a [`CandidatePlan`] attempts nothing per event; the build-time
    /// attempts are on [`CandidatePlan::attempts`].
    pub attempts: u64,
}

impl<'p> CompiledMachine<'p> {
    /// Creates a machine for `prog` with an empty report sink.
    pub fn new(prog: &'p CompiledProgram) -> Self {
        CompiledMachine {
            prog,
            plan: None,
            reports: Vec::new(),
            seen: HashSet::new(),
            applications: 0,
            candidates: 0,
            attempts: 0,
        }
    }

    /// Creates a machine that replays `plan` (built from the same program
    /// over the CFG about to be traversed) instead of matching per event.
    /// Report lists, application and candidate counts are identical to
    /// [`CompiledMachine::new`]; only the per-event cost changes.
    pub fn with_plan(prog: &'p CompiledProgram, plan: &'p CandidatePlan<'p>) -> Self {
        let mut m = CompiledMachine::new(prog);
        m.plan = Some(plan);
        m
    }

    /// The program's start state, to pass to [`mc_cfg::run_machine`].
    pub fn start_state(&self) -> StateId {
        self.prog.start_state()
    }

    /// The underlying compiled program.
    pub fn program(&self) -> &CompiledProgram {
        self.prog
    }

    /// Errors only (excludes warnings).
    pub fn errors(&self) -> impl Iterator<Item = &MetalReport> {
        self.reports.iter().filter(|r| r.is_error)
    }

    fn fire(
        &mut self,
        rule: u32,
        state: StateId,
        bindings: &Bindings,
        span: Span,
        witness: &Witness<'_>,
    ) {
        let prog = self.prog;
        self.applications += 1;
        for action in &prog.rules[rule as usize].actions {
            let (msg, is_error) = match action {
                Action::Err(m) => (m, true),
                Action::Warn(m) => (m, false),
            };
            let message = interpolate(msg, bindings);
            if self.seen.insert((message.clone(), span)) {
                self.reports.push(MetalReport {
                    sm_name: prog.name.clone(),
                    message,
                    span,
                    is_error,
                    state: prog.state_names[state.0].clone(),
                    steps: witness.steps(),
                });
            }
        }
    }

    /// Dispatches one expression candidate through the state's index: the
    /// keyed, per-kind, and generic buckets are merged on ordinals so the
    /// first match found is the first match the interpreter would find.
    ///
    /// Returns the matched `(rule, pattern)` ids; on success the caller's
    /// `slots` hold the bindings (pattern [`NO_PAT`] means a bindingless
    /// match whose slots are meaningless).
    fn find_expr<'a>(
        &mut self,
        state: StateId,
        e: &'a Expr,
        stack: &mut Vec<&'a Expr>,
        slots: &mut [Option<&'a Expr>],
    ) -> Option<(u32, u32)> {
        let prog = self.prog;
        let idx = &prog.states[state.0];
        let tag = expr_tag(&e.kind);
        let keyed: &[Entry] = if idx.has_key[tag] {
            match head_ident(e).and_then(|n| prog.interner.lookup(n)) {
                Some(sym) => idx
                    .by_key
                    .get(&key_of(tag, sym))
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]),
                None => &[],
            }
        } else {
            &[]
        };
        let kinded: &[Entry] = &idx.by_kind[tag];
        let generic: &[Entry] = &idx.generic;

        let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
        loop {
            let a = keyed.get(i).map_or(u32::MAX, |en| en.ord);
            let b = kinded.get(j).map_or(u32::MAX, |en| en.ord);
            let c = generic.get(k).map_or(u32::MAX, |en| en.ord);
            if a == u32::MAX && b == u32::MAX && c == u32::MAX {
                return None;
            }
            let entry = if a <= b && a <= c {
                i += 1;
                keyed[i - 1]
            } else if b <= c {
                j += 1;
                kinded[j - 1]
            } else {
                k += 1;
                generic[k - 1]
            };
            self.attempts += 1;
            let pat = &prog.patterns[entry.pat as usize];
            if exec(&pat.ops, e, &prog.interner, stack, slots) {
                return Some((entry.rule, entry.pat));
            }
        }
    }

    /// Dispatches one statement candidate through the per-kind statement
    /// buckets (each already in ordinal order). Return convention as in
    /// [`CompiledMachine::find_expr`].
    fn find_stmt<'a>(
        &mut self,
        state: StateId,
        s: &'a Stmt,
        stack: &mut Vec<&'a Expr>,
        slots: &mut [Option<&'a Expr>],
    ) -> Option<(u32, u32)> {
        let prog = self.prog;
        let idx = &prog.states[state.0];
        match &s.kind {
            StmtKind::Expr(e) => {
                for entry in &idx.expr_stmt {
                    self.attempts += 1;
                    let pat = &prog.patterns[entry.pat as usize];
                    if exec(&pat.ops, e, &prog.interner, stack, slots) {
                        return Some((entry.rule, entry.pat));
                    }
                }
                None
            }
            StmtKind::Return(None) => idx.ret_none.first().map(|en| {
                self.attempts += 1;
                (en.rule, NO_PAT)
            }),
            StmtKind::Return(Some(v)) => {
                for entry in &idx.ret_some {
                    self.attempts += 1;
                    let pat = &prog.patterns[entry.pat as usize];
                    if exec(&pat.ops, v, &prog.interner, stack, slots) {
                        return Some((entry.rule, entry.pat));
                    }
                }
                None
            }
            StmtKind::Decl(d) => {
                for entry in &idx.decl {
                    self.attempts += 1;
                    let pat = &prog.patterns[entry.pat as usize];
                    let PatShape::Decl { ty, name, has_init } = &pat.shape else {
                        continue;
                    };
                    if *ty != d.ty || *name != d.name {
                        continue;
                    }
                    match (*has_init, &d.init) {
                        (false, None) => return Some((entry.rule, NO_PAT)),
                        (true, Some(Initializer::Expr(e)))
                            if exec(&pat.ops, e, &prog.interner, stack, slots) =>
                        {
                            return Some((entry.rule, entry.pat));
                        }
                        _ => {}
                    }
                }
                None
            }
            StmtKind::Empty => idx.empty.first().map(|e| {
                self.attempts += 1;
                (e.rule, NO_PAT)
            }),
            StmtKind::Break => idx.brk.first().map(|e| {
                self.attempts += 1;
                (e.rule, NO_PAT)
            }),
            StmtKind::Continue => idx.cont.first().map(|e| {
                self.attempts += 1;
                (e.rule, NO_PAT)
            }),
            _ => None,
        }
    }

    /// Scans the candidates of one event, firing rules and following
    /// transitions, and pushes the successor states (none = path pruned).
    fn scan<'a>(
        &mut self,
        state: StateId,
        cands: &'a [Candidate<'a>],
        witness: &Witness<'_>,
        out: &mut Vec<StateId>,
    ) {
        let mut stack: Vec<&'a Expr> = Vec::new();
        let mut slots: Vec<Option<&'a Expr>> = vec![None; self.prog.max_slots];
        let mut cur = state;
        for cand in cands {
            self.candidates += 1;
            let found = match cand {
                Candidate::Expr(e) => self.find_expr(cur, e, &mut stack, &mut slots),
                Candidate::Stmt(s) => self.find_stmt(cur, s, &mut stack, &mut slots),
                Candidate::Owned(s) => self.find_stmt(cur, s, &mut stack, &mut slots),
            };
            if let Some((rule, pat)) = found {
                let bindings = if pat == NO_PAT {
                    Bindings::new()
                } else {
                    materialize(&self.prog.patterns[pat as usize], &slots)
                };
                let span = cand.span();
                self.fire(rule, cur, &bindings, span, witness);
                match self.prog.rules[rule as usize].target {
                    RuleTarget::Stay => {}
                    RuleTarget::Goto(s) => cur = s,
                    RuleTarget::Stop => return,
                }
            }
        }
        out.push(cur);
    }

    /// Replays a precomputed [`PlanEntry`]: only candidates with at least
    /// one structural match anywhere are visited, and each costs a single
    /// per-state table load instead of a dispatch-and-execute round.
    fn scan_planned(
        &mut self,
        state: StateId,
        entry: &PlanEntry<'_>,
        witness: &Witness<'_>,
        out: &mut Vec<StateId>,
    ) {
        self.candidates += entry.n_cands;
        let mut cur = state;
        for hit in &entry.hits {
            if let Some(m) = &hit.per_state[cur.0] {
                let bindings = if m.pat == NO_PAT {
                    Bindings::new()
                } else {
                    materialize(&self.prog.patterns[m.pat as usize], &m.slots)
                };
                self.fire(m.rule, cur, &bindings, hit.span, witness);
                match self.prog.rules[m.rule as usize].target {
                    RuleTarget::Stay => {}
                    RuleTarget::Goto(s) => cur = s,
                    RuleTarget::Stop => return,
                }
            }
        }
        out.push(cur);
    }
}

/// Builds the interpreter-compatible [`Bindings`] map from filled slots.
fn materialize(pat: &CompiledPattern, slots: &[Option<&Expr>]) -> Bindings {
    let mut b = Bindings::new();
    for (i, (name, _)) in pat.slots.iter().enumerate() {
        if let Some(e) = slots[i] {
            b.insert(name.clone(), e.clone());
        }
    }
    b
}

/// Sentinel pattern id for matches that bind nothing (`return;`, bare
/// declarations, `break`/`continue`/`;` statement patterns).
const NO_PAT: u32 = u32::MAX;

/// Multiplicative hasher for the plan maps, whose only key type is an AST
/// node address. One multiply and a shift instead of SipHash: the keys are
/// already well-distributed pointers and need no DoS resistance.
#[derive(Default)]
struct NodeKeyHasher(u64);

impl std::hash::Hasher for NodeKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }

    fn write_usize(&mut self, n: usize) {
        let h = (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

type NodeMap<V> = HashMap<usize, V, std::hash::BuildHasherDefault<NodeKeyHasher>>;

/// Address of a statement node, used strictly as a lookup key (never
/// dereferenced); the plan's lifetime ties it to the CFG that owns the node.
fn node_key_stmt(s: &Stmt) -> usize {
    s as *const Stmt as usize
}

/// Address of an expression node; see [`node_key_stmt`].
fn node_key_expr(e: &Expr) -> usize {
    e as *const Expr as usize
}

/// One precomputed match: exactly what the dispatch index would return for
/// this candidate in this state, with the binding slots already resolved.
#[derive(Debug)]
struct PlanMatch<'c> {
    rule: u32,
    pat: u32,
    slots: Box<[Option<&'c Expr>]>,
}

/// A candidate that structurally matches some pattern in at least one
/// state. Candidates matching nowhere are dropped from the plan entirely —
/// for FLASH-style checkers that is the overwhelming majority.
#[derive(Debug)]
struct PlanHit<'c> {
    span: Span,
    /// Indexed by state id: the match the dispatch would find, if any.
    per_state: Box<[Option<PlanMatch<'c>>]>,
}

/// The precomputed scan of one event: total candidate count (kept so the
/// [`CompiledMachine::candidates`] counter stays engine-comparable) plus
/// the matching candidates in scan order.
#[derive(Debug)]
struct PlanEntry<'c> {
    n_cands: u64,
    hits: Vec<PlanHit<'c>>,
}

/// Precomputed match results of one [`CompiledProgram`] over one
/// function's CFG.
///
/// Pattern matching is structural — independent of the machine's current
/// state — so the full dispatch-and-execute round for every candidate of
/// every event node can run once per function instead of once per worklist
/// item. A traversal revisits each block once per distinct
/// `(state, facts)` pair that reaches it, so the plan amortizes matching
/// across all of those visits; [`CompiledMachine::with_plan`] then reduces
/// a step to a hash probe plus a per-state table load. Reports, candidate
/// counts, and application counts are identical to the plan-less machine.
#[derive(Debug)]
pub struct CandidatePlan<'c> {
    /// Event-node key → slot in `entries`. Shared by every plan built in
    /// the same [`CandidatePlan::build_many`] call: the key set depends
    /// only on the CFG, so the map is built (and its inserts paid) once.
    index: std::sync::Arc<NodeMap<u32>>,
    entries: Vec<PlanEntry<'c>>,
    /// Per-state result of the synthetic `return;` candidate (the only
    /// candidate the extracting path synthesizes rather than borrows).
    ret_none: Box<[Option<u32>]>,
    /// Pattern executions spent building the plan — the compiled engine's
    /// total match work for the whole function, comparable with the
    /// per-event attempt counters.
    pub attempts: u64,
}

impl<'c> CandidatePlan<'c> {
    #[inline]
    fn entry(&self, key: usize) -> Option<&PlanEntry<'c>> {
        self.index.get(&key).map(|&i| &self.entries[i as usize])
    }

    /// Total candidates the plan accounts for across all event nodes (what
    /// the extracting engines would scan once per visit).
    pub fn total_cands(&self) -> u64 {
        self.entries.iter().map(|e| e.n_cands).sum()
    }
}

impl<'c> CandidatePlan<'c> {
    /// Matches every candidate of every event node of `cfg` against
    /// `prog`'s dispatch index, once per state.
    pub fn build(prog: &CompiledProgram, cfg: &'c mc_cfg::Cfg) -> CandidatePlan<'c> {
        CandidatePlan::build_many(&[prog], cfg)
            .pop()
            .expect("one plan per program")
    }

    /// Builds one plan per program over a single candidate-extraction walk
    /// of `cfg` — the driver runs several checkers over each function, and
    /// the extraction (the only per-node cost the prefilter cannot skip) is
    /// identical for all of them.
    pub fn build_many(progs: &[&CompiledProgram], cfg: &'c mc_cfg::Cfg) -> Vec<CandidatePlan<'c>> {
        let union = UnionPrefilter::build(progs);
        // One entry per statement plus at most one per terminator: sizing
        // the map up front keeps the build out of doubling rehashes.
        let keys: usize = cfg.blocks.iter().map(|b| b.nodes.len() + 1).sum();
        let mut index: NodeMap<u32> = NodeMap::with_capacity_and_hasher(keys, Default::default());
        let mut builders: Vec<PlanBuilder<'_, 'c>> =
            progs.iter().map(|p| PlanBuilder::new(p, keys)).collect();
        let mut cands: Vec<Candidate<'c>> = Vec::new();
        // The sieved walks below enumerate exactly what the extracting scan
        // would, but one union probe retires a candidate for every program
        // at once and only survivors are materialized; the count of what
        // was dropped still reaches each entry so visit statistics stay
        // identical to the extracting engines.
        for block in &cfg.blocks {
            for node in &block.nodes {
                cands.clear();
                let n_cands = sieved_stmt(&node.stmt, &union, &mut cands);
                index.insert(node_key_stmt(&node.stmt), index.len() as u32);
                for b in &mut builders {
                    b.add_entry(&cands, n_cands);
                }
            }
            match &block.term {
                mc_cfg::Terminator::Jump(_) => {}
                mc_cfg::Terminator::Branch { cond, .. } => {
                    cands.clear();
                    let n_cands = sieved_postorder(cond, &union, &mut cands);
                    index.insert(node_key_expr(cond), index.len() as u32);
                    for b in &mut builders {
                        b.add_entry(&cands, n_cands);
                    }
                }
                mc_cfg::Terminator::Switch { targets, .. } => {
                    for value in targets.iter().filter_map(|(v, _)| v.as_ref()) {
                        cands.clear();
                        let n_cands = sieved_postorder(value, &union, &mut cands);
                        index.insert(node_key_expr(value), index.len() as u32);
                        for b in &mut builders {
                            b.add_entry(&cands, n_cands);
                        }
                    }
                }
                mc_cfg::Terminator::Return { value, span } => {
                    let Some(v) = value else { continue };
                    cands.clear();
                    let n_cands = sieved_postorder(v, &union, &mut cands);
                    index.insert(node_key_expr(v), index.len() as u32);
                    for b in &mut builders {
                        b.add_return_entry(&cands, n_cands, v, *span);
                    }
                }
            }
        }
        let index = std::sync::Arc::new(index);
        builders
            .into_iter()
            .map(|b| b.finish(std::sync::Arc::clone(&index)))
            .collect()
    }
}

/// Fused form of the extracting engines' `stmt_candidates` + the union
/// prefilter: counts every candidate the scan would enumerate, but
/// materializes only those some program could match. Statement candidates
/// always survive (the prefilter covers expressions only).
fn sieved_stmt<'a>(s: &'a Stmt, union: &UnionPrefilter, out: &mut Vec<Candidate<'a>>) -> u64 {
    match &s.kind {
        StmtKind::Expr(e) => sieved_postorder(e, union, out),
        StmtKind::Decl(d) => {
            let mut n = 0;
            if let Some(Initializer::Expr(e)) = &d.init {
                n = sieved_postorder(e, union, out);
            }
            out.push(Candidate::Stmt(s));
            n + 1
        }
        _ => {
            out.push(Candidate::Stmt(s));
            1
        }
    }
}

/// Fused form of `postorder` + the union prefilter; see [`sieved_stmt`].
/// Children are walked in the same evaluation order, so the survivors keep
/// their scan order.
fn sieved_postorder<'a>(e: &'a Expr, union: &UnionPrefilter, out: &mut Vec<Candidate<'a>>) -> u64 {
    let mut n = 0;
    match &e.kind {
        ExprKind::Call { callee, args } => {
            n += sieved_postorder(callee, union, out);
            for a in args {
                n += sieved_postorder(a, union, out);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            n += sieved_postorder(lhs, union, out);
            n += sieved_postorder(rhs, union, out);
        }
        ExprKind::Assign { lhs, rhs, .. } => {
            // RHS evaluates first in C semantics that matter here.
            n += sieved_postorder(rhs, union, out);
            n += sieved_postorder(lhs, union, out);
        }
        ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => {
            n += sieved_postorder(operand, union, out);
        }
        ExprKind::Ternary { cond, then, els } => {
            n += sieved_postorder(cond, union, out);
            n += sieved_postorder(then, union, out);
            n += sieved_postorder(els, union, out);
        }
        ExprKind::Index { base, index } => {
            n += sieved_postorder(base, union, out);
            n += sieved_postorder(index, union, out);
        }
        ExprKind::Member { base, .. } => n += sieved_postorder(base, union, out),
        ExprKind::Cast { expr, .. } => n += sieved_postorder(expr, union, out),
        ExprKind::Comma(a, b) => {
            n += sieved_postorder(a, union, out);
            n += sieved_postorder(b, union, out);
        }
        _ => {}
    }
    if union.admits(e) {
        out.push(Candidate::Expr(e));
    }
    n + 1
}

/// Per-program state of [`CandidatePlan::build_many`].
struct PlanBuilder<'p, 'c> {
    scratch: CompiledMachine<'p>,
    stack: Vec<&'c Expr>,
    slots: Vec<Option<&'c Expr>>,
    entries: Vec<PlanEntry<'c>>,
}

impl<'p, 'c> PlanBuilder<'p, 'c> {
    fn new(prog: &'p CompiledProgram, keys: usize) -> Self {
        PlanBuilder {
            scratch: CompiledMachine::new(prog),
            stack: Vec::new(),
            slots: vec![None; prog.max_slots],
            entries: Vec::with_capacity(keys),
        }
    }

    fn add_entry(&mut self, cands: &[Candidate<'c>], n_cands: u64) {
        let entry = build_entry(
            &mut self.scratch,
            cands,
            n_cands,
            &mut self.stack,
            &mut self.slots,
        );
        self.entries.push(entry);
    }

    /// Entry for a `return v;` terminator: the value's subexpression
    /// candidates plus the synthetic return-statement candidate the
    /// extracting path appends after them. Its patterns (the `ret_some`
    /// bucket) execute against `v` itself, so the resolved slots borrow
    /// from the CFG like every other hit.
    fn add_return_entry(&mut self, cands: &[Candidate<'c>], n_cands: u64, v: &'c Expr, span: Span) {
        let prog = self.scratch.prog;
        let n_states = prog.state_names.len();
        let mut entry = build_entry(
            &mut self.scratch,
            cands,
            n_cands,
            &mut self.stack,
            &mut self.slots,
        );
        entry.n_cands += 1;
        let mut per_state: Vec<Option<PlanMatch<'c>>> = Vec::with_capacity(n_states);
        let mut any = false;
        for si in 0..n_states {
            let mut found = None;
            for en in &prog.states[si].ret_some {
                self.scratch.attempts += 1;
                let pat = &prog.patterns[en.pat as usize];
                if exec(
                    &pat.ops,
                    v,
                    &prog.interner,
                    &mut self.stack,
                    &mut self.slots,
                ) {
                    found = Some(plan_match(prog, en.rule, en.pat, &self.slots));
                    break;
                }
            }
            any |= found.is_some();
            per_state.push(found);
        }
        if any {
            entry.hits.push(PlanHit {
                span,
                per_state: per_state.into_boxed_slice(),
            });
        }
        self.entries.push(entry);
    }

    fn finish(self, index: std::sync::Arc<NodeMap<u32>>) -> CandidatePlan<'c> {
        let prog = self.scratch.prog;
        let ret_none: Vec<Option<u32>> = (0..prog.state_names.len())
            .map(|si| prog.states[si].ret_none.first().map(|en| en.rule))
            .collect();
        CandidatePlan {
            index,
            entries: self.entries,
            ret_none: ret_none.into_boxed_slice(),
            attempts: self.scratch.attempts,
        }
    }
}

/// Resolves one matched `(rule, pattern)` into a [`PlanMatch`], snapshotting
/// the filled slots.
fn plan_match<'c>(
    prog: &CompiledProgram,
    rule: u32,
    pat: u32,
    slots: &[Option<&'c Expr>],
) -> PlanMatch<'c> {
    let snapshot = if pat == NO_PAT {
        Vec::new()
    } else {
        slots[..prog.patterns[pat as usize].slots.len()].to_vec()
    };
    PlanMatch {
        rule,
        pat,
        slots: snapshot.into_boxed_slice(),
    }
}

/// Matches every candidate of one event against every state's index.
fn build_entry<'c>(
    scratch: &mut CompiledMachine<'_>,
    cands: &[Candidate<'c>],
    n_cands: u64,
    stack: &mut Vec<&'c Expr>,
    slots: &mut Vec<Option<&'c Expr>>,
) -> PlanEntry<'c> {
    let prog = scratch.prog;
    let n_states = prog.state_names.len();
    let mut hits = Vec::new();
    for cand in cands {
        // O(1) rejection of expression candidates no state could match —
        // for FLASH-style checkers that is the overwhelming majority, so
        // plan building costs little more than the extraction walk.
        if let Candidate::Expr(e) = cand {
            if !prog.pre.admits(&prog.interner, e) {
                continue;
            }
        }
        let mut per_state: Vec<Option<PlanMatch<'c>>> = Vec::with_capacity(n_states);
        let mut any = false;
        for si in 0..n_states {
            let found = match cand {
                Candidate::Expr(e) => scratch.find_expr(StateId(si), e, stack, slots),
                Candidate::Stmt(s) => scratch.find_stmt(StateId(si), s, stack, slots),
                // Extraction only synthesizes owned candidates for return
                // events, which `build` handles itself.
                Candidate::Owned(_) => None,
            };
            let m = found.map(|(rule, pat)| plan_match(prog, rule, pat, slots));
            any |= m.is_some();
            per_state.push(m);
        }
        if any {
            hits.push(PlanHit {
                span: cand.span(),
                per_state: per_state.into_boxed_slice(),
            });
        }
    }
    PlanEntry { n_cands, hits }
}

impl PathMachine for CompiledMachine<'_> {
    type State = StateId;

    fn step(
        &mut self,
        state: &StateId,
        event: &PathEvent<'_>,
        witness: &Witness<'_>,
    ) -> Vec<StateId> {
        let mut out = Vec::new();
        self.step_into(state, event, witness, &mut out);
        out
    }

    fn step_into(
        &mut self,
        state: &StateId,
        event: &PathEvent<'_>,
        witness: &Witness<'_>,
        out: &mut Vec<StateId>,
    ) {
        // Fast path: the per-function plan already holds this event's match
        // results; replaying them skips candidate extraction and pattern
        // execution entirely.
        if let Some(plan) = self.plan {
            let entry = match event {
                PathEvent::Stmt(s) => plan.entry(node_key_stmt(s)),
                PathEvent::Branch { cond, .. } => plan.entry(node_key_expr(cond)),
                PathEvent::Case { value: Some(v), .. } => plan.entry(node_key_expr(v)),
                PathEvent::Case { value: None, .. } => {
                    // No candidates: the state rides through unchanged.
                    out.push(*state);
                    return;
                }
                PathEvent::Return {
                    value: Some(v),
                    span: _,
                } => plan.entry(node_key_expr(v)),
                PathEvent::Return { value: None, span } => {
                    // One synthetic `return;` candidate, resolved per state
                    // at plan-build time.
                    self.candidates += 1;
                    if let Some(rule) = plan.ret_none[state.0] {
                        self.fire(rule, *state, &Bindings::new(), *span, witness);
                        match self.prog.rules[rule as usize].target {
                            RuleTarget::Stay => out.push(*state),
                            RuleTarget::Goto(s) => out.push(s),
                            RuleTarget::Stop => {}
                        }
                    } else {
                        out.push(*state);
                    }
                    return;
                }
                PathEvent::Call { .. } => None,
            };
            // A miss (an event node the plan was not built from) falls
            // through to the extracting slow path below.
            if let Some(entry) = entry {
                self.scan_planned(*state, entry, witness, out);
                return;
            }
        }
        let mut cands = Vec::new();
        match event {
            PathEvent::Stmt(s) => stmt_candidates(s, &mut cands),
            PathEvent::Branch { cond, .. } => postorder(cond, &mut cands),
            PathEvent::Case { value, .. } => {
                if let Some(v) = value {
                    postorder(v, &mut cands);
                }
            }
            PathEvent::Return { value, span } => {
                if let Some(v) = value {
                    postorder(v, &mut cands);
                }
                cands.push(Candidate::Owned(Stmt::new(
                    StmtKind::Return(value.cloned()),
                    *span,
                )));
            }
            PathEvent::Call { summary, .. } => {
                // Same summarized-transfer application as the interpreter.
                if let Some(per_state) = summary.transfers.get(&self.prog.name) {
                    let cur = &self.prog.state_names[state.0];
                    if let Some(ends) = per_state.get(cur) {
                        out.extend(ends.iter().filter_map(|n| self.prog.state_by_name(n)));
                        return;
                    }
                }
                out.push(*state);
                return;
            }
        }
        self.scan(*state, &cands, witness, out);
    }
}

/// Computes the state transfer of one function for a compiled program —
/// the compiled-engine counterpart of [`crate::compute_transfers`], with
/// identical output (the summary layer dispatches on the configured
/// engine).
pub fn compute_transfers_compiled(
    prog: &CompiledProgram,
    cfg: &mc_cfg::Cfg,
    traversal: mc_cfg::Traversal,
    oracle: Option<&dyn mc_cfg::SummaryLookup>,
) -> BTreeMap<String, Vec<String>> {
    let mut transfers = BTreeMap::new();
    // One plan serves every per-state traversal of this function.
    let plan = CandidatePlan::build(prog, cfg);
    for si in 0..prog.state_names.len() {
        let mut m = mc_cfg::EndCollector::new(CompiledMachine::with_plan(prog, &plan));
        mc_cfg::run_traversal_with(cfg, &mut m, StateId(si), traversal, oracle);
        let mut ends: Vec<String> = m
            .ends
            .into_iter()
            .map(|s| prog.state_names[s.0].clone())
            .collect();
        ends.sort();
        ends.dedup();
        // Identity transfers are omitted, matching the interpreter.
        if ends.len() == 1 && ends[0] == prog.state_names[si] {
            continue;
        }
        transfers.insert(prog.state_names[si].clone(), ends);
    }
    transfers
}

// `all_state` is carried for completeness of the lowered form (dispatch
// already folds the all-state rules into every state's effective list).
impl CompiledProgram {
    /// Index of the special `all` state, if the program declares one.
    pub fn all_state(&self) -> Option<StateId> {
        self.all_state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{compute_transfers, MetalMachine};
    use mc_ast::{parse_stmt, parse_translation_unit};
    use mc_cfg::{run_machine, Cfg, Mode, Traversal};

    const WAIT_SM: &str = r#"
        sm wait_for_db {
            decl { scalar } addr, buf;
            start:
                { WAIT_FOR_DB_FULL(addr); } ==> stop
              | { MISCBUS_READ_DB(addr, buf); } ==> { err("Buffer not synchronized"); }
            ;
        }
    "#;

    const MSGLEN_SM: &str = r#"
        sm msglen_check {
            decl { unsigned } keep, swap, wait, dec, null, type;
            pat zero_assign = { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA } ;
            pat nonzero_assign =
                { HANDLER_GLOBALS(header.nh.len) = LEN_WORD }
              | { HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE } ;
            pat send_data =
                { PI_SEND(F_DATA, keep, swap, wait, dec, null) }
              | { IO_SEND(F_DATA, keep, swap, wait, dec, null) }
              | { NI_SEND(type, F_DATA, keep, wait, dec, null) } ;
            pat send_nodata =
                { PI_SEND(F_NODATA, keep, swap, wait, dec, null) }
              | { IO_SEND(F_NODATA, keep, swap, wait, dec, null) }
              | { NI_SEND(type, F_NODATA, keep, wait, dec, null) } ;
            all:
                zero_assign ==> zero_len
              | nonzero_assign ==> nonzero_len
            ;
            zero_len:
                send_data ==> { err("data send, zero len"); } ;
            nonzero_len:
                send_nodata ==> { err("nodata send, nonzero len"); } ;
        }
    "#;

    /// Runs a source through both engines and asserts identical reports
    /// and application counts; returns the compiled-engine reports.
    fn both(sm_src: &str, c_src: &str) -> Vec<MetalReport> {
        let prog = MetalProgram::parse(sm_src).unwrap();
        let cp = CompiledProgram::compile(&prog).unwrap();
        let tu = parse_translation_unit(c_src, "t.c").unwrap();
        let mut out = Vec::new();
        for f in tu.functions() {
            let cfg = Cfg::build(f);
            let mut interp = MetalMachine::new(&prog);
            let init = interp.start_state();
            run_machine(&cfg, &mut interp, init, Mode::StateSet);
            let mut comp = CompiledMachine::new(&cp);
            run_machine(&cfg, &mut comp, init, Mode::StateSet);
            assert_eq!(interp.reports, comp.reports, "engine reports diverge");
            assert_eq!(
                interp.applications, comp.applications,
                "application counts diverge"
            );
            out.extend(comp.reports);
        }
        out
    }

    #[test]
    fn wait_for_db_parity() {
        let cases = [
            "void h(void) { MISCBUS_READ_DB(a, b); }",
            "void h(void) { WAIT_FOR_DB_FULL(a); MISCBUS_READ_DB(a, b); }",
            "void h(void) { if (x) { WAIT_FOR_DB_FULL(a); } MISCBUS_READ_DB(a, b); }",
            "void h(void) { if (WAIT_FOR_DB_FULL(a)) { } MISCBUS_READ_DB(a, b); }",
            "void h(void) { x = MISCBUS_READ_DB(a, b) + 1; }",
            "void h(void) { MISCBUS_READ_DB(a, b); MISCBUS_READ_DB(c, d); }",
        ];
        for src in cases {
            both(WAIT_SM, src);
        }
        let r = both(WAIT_SM, "void h(void) { MISCBUS_READ_DB(a, b); }");
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].message, "Buffer not synchronized");
    }

    #[test]
    fn msglen_parity() {
        let cases = [
            r#"void h(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                PI_SEND(F_DATA, 1, 1, 0, 1, 0);
            }"#,
            r#"void h(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
                NI_SEND(t, F_DATA, 1, 0, 1, 0);
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                NI_SEND(t, F_NODATA, 1, 0, 1, 0);
            }"#,
            r#"void h(void) {
                if (flag) {
                    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                } else {
                    HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
                }
                PI_SEND(F_DATA, 1, 1, 0, 1, 0);
            }"#,
            "void h(void) { PI_SEND(F_DATA, 1, 1, 0, 1, 0); }",
        ];
        for src in cases {
            both(MSGLEN_SM, src);
        }
    }

    #[test]
    fn interpolation_parity() {
        let r = both(
            r#"sm x {
                decl { scalar } addr;
                start: { use_buf(addr); } ==> { err("unsynchronized use of %addr"); } ;
            }"#,
            "void h(void) { use_buf(hdr.a); }",
        );
        assert_eq!(r[0].message, "unsynchronized use of hdr.a");
    }

    #[test]
    fn return_and_decl_patterns_parity() {
        both(
            r#"sm r {
                decl { scalar } v;
                start: { return v; } ==> { err("returned %v"); } ;
            }"#,
            "int h(void) { return x + 1; }",
        );
        both(
            r#"sm d {
                decl { scalar } v;
                start: { int len = v; } ==> { err("len decl"); } ;
            }"#,
            "void h(void) { int len = 4; f(len); }",
        );
    }

    #[test]
    fn transfers_parity() {
        let prog = MetalProgram::parse(MSGLEN_SM).unwrap();
        let cp = CompiledProgram::compile(&prog).unwrap();
        let src = r#"void h(void) {
            HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
        }"#;
        let tu = parse_translation_unit(src, "t.c").unwrap();
        let cfg = Cfg::build(tu.function("h").unwrap());
        let t1 = compute_transfers(&prog, &cfg, Traversal::default(), None);
        let t2 = compute_transfers_compiled(&cp, &cfg, Traversal::default(), None);
        assert_eq!(t1, t2);
        assert!(t1.contains_key("all"));
    }

    #[test]
    fn builtin_style_programs_have_no_diagnostics() {
        for src in [WAIT_SM, MSGLEN_SM] {
            let prog = MetalProgram::parse(src).unwrap();
            let cp = CompiledProgram::compile(&prog).unwrap();
            assert!(
                cp.diagnostics().is_empty(),
                "unexpected diags: {:?}",
                cp.diagnostics()
            );
        }
    }

    #[test]
    fn unreachable_state_diagnosed() {
        let prog = MetalProgram::parse(
            r#"sm u {
                decl { scalar } x;
                start: { f(x); } ==> stop ;
                orphan: { g(x); } ==> { err("never"); } ;
            }"#,
        )
        .unwrap();
        let cp = CompiledProgram::compile(&prog).unwrap();
        let d: Vec<_> = cp
            .diagnostics()
            .iter()
            .filter(|d| d.kind == CompileDiagKind::UnreachableState)
            .collect();
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("orphan"), "{}", d[0].message);
        assert!(d[0].span.line > 0);
    }

    #[test]
    fn goto_keeps_state_reachable() {
        let prog = MetalProgram::parse(
            r#"sm u {
                decl { scalar } x;
                start: { f(x); } ==> second ;
                second: { g(x); } ==> { err("e"); } ;
            }"#,
        )
        .unwrap();
        let cp = CompiledProgram::compile(&prog).unwrap();
        assert!(cp.diagnostics().is_empty());
    }

    #[test]
    fn shadowed_rule_diagnosed() {
        let prog = MetalProgram::parse(
            r#"sm s {
                decl { scalar } x;
                start:
                    { f(x); } ==> stop
                  | { f(x); } ==> { err("never fires"); }
                ;
            }"#,
        )
        .unwrap();
        let cp = CompiledProgram::compile(&prog).unwrap();
        let d: Vec<_> = cp
            .diagnostics()
            .iter()
            .filter(|d| d.kind == CompileDiagKind::ShadowedRule)
            .collect();
        assert_eq!(d.len(), 1);
        assert!(d[0].span.line > 0);
    }

    #[test]
    fn expr_and_stmt_expr_shadowing_detected() {
        // `{ f(x) }` (expr) then `{ f(x); }` (stmt-expr) — structurally
        // the same match set in practice.
        let prog = MetalProgram::parse(
            r#"sm s {
                decl { scalar } x;
                start:
                    { f(x) } ==> stop
                  | { f(x); } ==> { err("never"); }
                ;
            }"#,
        )
        .unwrap();
        let cp = CompiledProgram::compile(&prog).unwrap();
        assert!(cp
            .diagnostics()
            .iter()
            .any(|d| d.kind == CompileDiagKind::ShadowedRule));
    }

    #[test]
    fn unbound_interpolation_diagnosed() {
        let prog = MetalProgram::parse(
            r#"sm s {
                decl { scalar } x, y;
                start: { f(x); } ==> { err("saw %y"); } ;
            }"#,
        )
        .unwrap();
        let cp = CompiledProgram::compile(&prog).unwrap();
        let d: Vec<_> = cp
            .diagnostics()
            .iter()
            .filter(|d| d.kind == CompileDiagKind::UnboundInterpolation)
            .collect();
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("%y"), "{}", d[0].message);
    }

    #[test]
    fn unmatchable_pattern_diagnosed() {
        // Control-flow statements never appear as candidates; build the
        // program by hand since such fragments may not parse as patterns.
        let stmt = parse_stmt("while (x) { f(); }").unwrap();
        let prog = MetalProgram {
            name: "m".to_string(),
            prologue: None,
            wildcards: BTreeMap::new(),
            states: vec![crate::lang::StateDef {
                name: "start".to_string(),
                rules: vec![Rule {
                    patterns: vec![Pattern::new(PatternKind::Stmt(stmt))],
                    target: RuleTarget::Stay,
                    actions: vec![Action::Err("e".to_string())],
                    span: Span::new(1, 1),
                }],
                span: Span::new(1, 1),
            }],
            all_state: None,
        };
        let cp = CompiledProgram::compile(&prog).unwrap();
        assert!(cp
            .diagnostics()
            .iter()
            .any(|d| d.kind == CompileDiagKind::UnmatchablePattern));
    }

    #[test]
    fn engine_enum_round_trips() {
        assert_eq!(MetalEngine::parse("compiled"), Some(MetalEngine::Compiled));
        assert_eq!(MetalEngine::parse("interp"), Some(MetalEngine::Interp));
        assert_eq!(MetalEngine::parse("other"), None);
        assert_eq!(MetalEngine::default().as_str(), "compiled");
        assert_eq!(MetalEngine::Interp.as_str(), "interp");
    }

    #[test]
    fn dispatch_skips_unrelated_candidates() {
        // A program keyed on two macros should attempt far fewer matches
        // than the interpreter on ident-heavy code that mentions neither.
        let prog = MetalProgram::parse(WAIT_SM).unwrap();
        let cp = CompiledProgram::compile(&prog).unwrap();
        let src = "void h(void) { a = b + c * d; e = f(g, h2) + i; MISCBUS_READ_DB(a, b); }";
        let tu = parse_translation_unit(src, "t.c").unwrap();
        let cfg = Cfg::build(tu.function("h").unwrap());
        let mut interp = MetalMachine::new(&prog);
        let init = interp.start_state();
        run_machine(&cfg, &mut interp, init, Mode::StateSet);
        let mut comp = CompiledMachine::new(&cp);
        run_machine(&cfg, &mut comp, init, Mode::StateSet);
        assert_eq!(interp.reports, comp.reports);
        assert_eq!(interp.candidates, comp.candidates);
        assert!(
            comp.attempts <= interp.attempts,
            "compiled dispatch attempted more matches ({}) than interp ({})",
            comp.attempts,
            interp.attempts
        );
    }
}
