//! Parser for metal source text.
//!
//! Grammar (informal):
//!
//! ```text
//! program   := [ '{' raw-prologue '}' ] 'sm' IDENT '{' item* '}'
//! item      := 'decl' '{' class '}' IDENT (',' IDENT)* ';'
//!            | 'pat' IDENT '=' alts ';'
//!            | IDENT ':' rules ';'
//! alts      := fragment ('|' fragment)*
//! fragment  := '{' c-tokens '}' | IDENT            (named pattern ref)
//! rules     := rule ('|' rule)*
//! rule      := alts '==>' target
//! target    := IDENT [action] | action
//! action    := '{' (err|warn) '(' STRING ')' ';' ... '}'
//! ```
//!
//! Pattern fragments are parsed with the C parser of [`mc_ast`], with the
//! `decl`-declared names as wildcards — patterns are literally "written in
//! the base language".

use crate::lang::*;
use mc_ast::{Lexer, Parser as CParser, Span, Token, TokenKind};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// An error produced while parsing a metal program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetalParseError {
    /// Human-readable description.
    pub message: String,
    /// Location of the offending token.
    pub span: Span,
}

impl fmt::Display for MetalParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "metal parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for MetalParseError {}

impl MetalProgram {
    /// Parses a metal program from source text.
    ///
    /// # Errors
    ///
    /// Returns [`MetalParseError`] on any syntax error, on references to
    /// undeclared states or named patterns, and on programs without states.
    pub fn parse(src: &str) -> Result<MetalProgram, MetalParseError> {
        // Extract a leading `{ raw prologue }` textually: its contents
        // (e.g. `#include "flash-includes.h"`) need not lex as C.
        let (prologue, rest) = split_prologue(src)?;
        let (tokens, _) = Lexer::new(rest).tokenize().map_err(|e| MetalParseError {
            message: e.message,
            span: e.span,
        })?;
        let mut p = MetalParser {
            tokens,
            pos: 0,
            wildcards: BTreeMap::new(),
            named: HashMap::new(),
        };
        let mut prog = p.program()?;
        prog.prologue = prologue;
        Ok(prog)
    }
}

struct MetalParser {
    tokens: Vec<Token>,
    pos: usize,
    wildcards: BTreeMap<String, TypeClass>,
    named: HashMap<String, Vec<Pattern>>,
}

/// Rules as collected by the first pass, before state-name resolution:
/// the rule's source span, its pattern alternatives, target, and actions.
type RawRules = Vec<(Span, Vec<Pattern>, RawTarget, Vec<Action>)>;

/// An unresolved rule target (states may be referenced before definition).
enum RawTarget {
    Stay,
    Stop,
    Name(String, Span),
}

impl MetalParser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, MetalParseError> {
        Err(MetalParseError {
            message: message.into(),
            span: self.peek_span(),
        })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek().is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), MetalParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found `{}`", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, MetalParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    fn program(&mut self) -> Result<MetalProgram, MetalParseError> {
        if !matches!(self.peek(), TokenKind::Ident(s) if s == "sm") {
            return self.err("expected `sm`");
        }
        self.bump();
        let name = self.expect_ident()?;
        self.expect_punct("{")?;

        // First pass collects raw items so states can forward-reference.
        let mut raw_states: Vec<(String, Span, RawRules)> = Vec::new();
        while !self.eat_punct("}") {
            match self.peek() {
                TokenKind::Eof => return self.err("unexpected end of metal program"),
                TokenKind::Ident(kw) if kw == "decl" => {
                    self.bump();
                    self.parse_decl()?;
                }
                TokenKind::Ident(kw) if kw == "pat" => {
                    self.bump();
                    let pname = self.expect_ident()?;
                    self.expect_punct("=")?;
                    let pats = self.parse_alts()?;
                    self.expect_punct(";")?;
                    self.named.insert(pname, pats);
                }
                TokenKind::Ident(_) => {
                    let sspan = self.peek_span();
                    let sname = self.expect_ident()?;
                    self.expect_punct(":")?;
                    let rules = self.parse_rules()?;
                    self.expect_punct(";")?;
                    raw_states.push((sname, sspan, rules));
                }
                other => return self.err(format!("unexpected token `{other}` in sm body")),
            }
        }
        if raw_states.is_empty() {
            return self.err("metal program must define at least one state");
        }

        // Second pass: resolve state names.
        let ids: HashMap<String, StateId> = raw_states
            .iter()
            .enumerate()
            .map(|(i, (n, _, _))| (n.clone(), StateId(i)))
            .collect();
        let mut states = Vec::new();
        for (sname, sspan, rules) in raw_states {
            let mut resolved = Vec::new();
            for (rspan, patterns, raw_target, actions) in rules {
                let target = match raw_target {
                    RawTarget::Stay => RuleTarget::Stay,
                    RawTarget::Stop => RuleTarget::Stop,
                    RawTarget::Name(n, span) => match ids.get(&n) {
                        Some(id) => RuleTarget::Goto(*id),
                        None => {
                            return Err(MetalParseError {
                                message: format!("transition to undeclared state `{n}`"),
                                span,
                            })
                        }
                    },
                };
                resolved.push(Rule {
                    patterns,
                    target,
                    actions,
                    span: rspan,
                });
            }
            states.push(StateDef {
                name: sname,
                rules: resolved,
                span: sspan,
            });
        }
        let all_state = states.iter().position(|s| s.name == "all").map(StateId);
        Ok(MetalProgram {
            name,
            prologue: None,
            wildcards: std::mem::take(&mut self.wildcards),
            states,
            all_state,
        })
    }

    /// `decl { class } a, b, c ;` — registers wildcards.
    fn parse_decl(&mut self) -> Result<(), MetalParseError> {
        self.expect_punct("{")?;
        let class_name = self.expect_ident()?;
        // Multi-word classes like `unsigned long` — consume extra idents.
        while matches!(self.peek(), TokenKind::Ident(_)) {
            self.bump();
        }
        self.expect_punct("}")?;
        let class = match class_name.as_str() {
            "scalar" => TypeClass::Scalar,
            "unsigned" | "int" | "long" | "short" | "char" => TypeClass::Unsigned,
            "any" | "expr" => TypeClass::Any,
            other => {
                return self.err(format!("unknown wildcard class `{other}`"));
            }
        };
        loop {
            let name = self.expect_ident()?;
            self.wildcards.insert(name, class);
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(";")?;
        Ok(())
    }

    /// Pattern alternatives: fragment ('|' fragment)*.
    fn parse_alts(&mut self) -> Result<Vec<Pattern>, MetalParseError> {
        let mut pats = Vec::new();
        loop {
            if self.peek().is_punct("{") {
                pats.push(self.parse_fragment()?);
            } else if let TokenKind::Ident(name) = self.peek().clone() {
                // Named pattern reference.
                match self.named.get(&name) {
                    Some(expansion) => {
                        pats.extend(expansion.iter().cloned());
                        self.bump();
                    }
                    None => return self.err(format!("reference to undeclared pattern `{name}`")),
                }
            } else {
                return self.err(format!(
                    "expected `{{ pattern }}` or pattern name, found `{}`",
                    self.peek()
                ));
            }
            if !self.eat_punct("|") {
                break;
            }
        }
        Ok(pats)
    }

    /// Parses one `{ c-fragment }` into a [`Pattern`].
    fn parse_fragment(&mut self) -> Result<Pattern, MetalParseError> {
        let open_span = self.peek_span();
        self.expect_punct("{")?;
        // Collect tokens until the matching close brace.
        let mut depth = 1usize;
        let mut inner: Vec<Token> = Vec::new();
        loop {
            match self.peek() {
                TokenKind::Eof => {
                    return Err(MetalParseError {
                        message: "unterminated pattern fragment".into(),
                        span: open_span,
                    })
                }
                TokenKind::Punct("{") => {
                    depth += 1;
                    inner.push(self.tokens[self.pos].clone());
                    self.bump();
                }
                TokenKind::Punct("}") => {
                    depth -= 1;
                    if depth == 0 {
                        self.bump();
                        break;
                    }
                    inner.push(self.tokens[self.pos].clone());
                    self.bump();
                }
                _ => {
                    inner.push(self.tokens[self.pos].clone());
                    self.bump();
                }
            }
        }
        // Decide statement vs expression by trailing semicolon.
        let is_stmt = matches!(inner.last().map(|t| &t.kind), Some(TokenKind::Punct(";")));
        let mut toks = inner;
        toks.push(Token::new(TokenKind::Eof, open_span));
        let wildcard_names = self.wildcards.keys().cloned().collect();
        let mut cp = CParser::with_wildcards(toks, wildcard_names);
        if is_stmt {
            let stmt = cp.stmt().map_err(|e| MetalParseError {
                message: format!("in pattern fragment: {}", e.message),
                span: if e.span.line > 1 { e.span } else { open_span },
            })?;
            Ok(Pattern::new(PatternKind::Stmt(stmt)))
        } else {
            let expr = cp.expr().map_err(|e| MetalParseError {
                message: format!("in pattern fragment: {}", e.message),
                span: if e.span.line > 1 { e.span } else { open_span },
            })?;
            Ok(Pattern::new(PatternKind::Expr(expr)))
        }
    }

    /// Rules of one state. Unlike in `pat` definitions, a `|` here
    /// separates *rules*; to give a single rule several pattern
    /// alternatives, name them with `pat`.
    fn parse_rules(&mut self) -> Result<RawRules, MetalParseError> {
        let mut rules = Vec::new();
        loop {
            let rspan = self.peek_span();
            let patterns = self.parse_rule_atom()?;
            let (target, actions) = if self.peek().is_punct("==>") {
                self.bump();
                self.parse_target()?
            } else {
                (RawTarget::Stay, Vec::new())
            };
            rules.push((rspan, patterns, target, actions));
            if !self.eat_punct("|") {
                break;
            }
        }
        Ok(rules)
    }

    /// One pattern atom in rule position: a `{ fragment }` or a named
    /// pattern reference (which may expand to several alternatives).
    fn parse_rule_atom(&mut self) -> Result<Vec<Pattern>, MetalParseError> {
        if self.peek().is_punct("{") {
            Ok(vec![self.parse_fragment()?])
        } else if let TokenKind::Ident(name) = self.peek().clone() {
            match self.named.get(&name) {
                Some(expansion) => {
                    let pats = expansion.clone();
                    self.bump();
                    Ok(pats)
                }
                None => self.err(format!("reference to undeclared pattern `{name}`")),
            }
        } else {
            self.err(format!(
                "expected `{{ pattern }}` or pattern name, found `{}`",
                self.peek()
            ))
        }
    }

    /// Target after `==>`: `stop`, a state name, an action block, or a
    /// state name followed by an action block.
    fn parse_target(&mut self) -> Result<(RawTarget, Vec<Action>), MetalParseError> {
        let mut target = RawTarget::Stay;
        if let TokenKind::Ident(name) = self.peek().clone() {
            let span = self.peek_span();
            self.bump();
            target = if name == "stop" {
                RawTarget::Stop
            } else {
                RawTarget::Name(name, span)
            };
        }
        let actions = if self.peek().is_punct("{") {
            self.parse_actions()?
        } else {
            Vec::new()
        };
        if matches!(target, RawTarget::Stay) && actions.is_empty() {
            return self.err("expected state name or `{ action }` after `==>`");
        }
        Ok((target, actions))
    }

    /// `{ err("msg"); warn("msg"); }`
    fn parse_actions(&mut self) -> Result<Vec<Action>, MetalParseError> {
        self.expect_punct("{")?;
        let mut actions = Vec::new();
        while !self.eat_punct("}") {
            let func = self.expect_ident()?;
            self.expect_punct("(")?;
            let msg = match self.bump() {
                TokenKind::Str(s) => s,
                other => return self.err(format!("expected string literal, found `{other}`")),
            };
            // Optional extra arguments are allowed and ignored (the paper's
            // err() takes printf-style arguments; our messages interpolate
            // wildcard bindings with %name instead).
            while self.eat_punct(",") {
                // skip one balanced argument expression (tokens until , or ))
                let mut depth = 0usize;
                loop {
                    match self.peek() {
                        TokenKind::Punct("(") => {
                            depth += 1;
                            self.bump();
                        }
                        TokenKind::Punct(")") if depth == 0 => break,
                        TokenKind::Punct(")") => {
                            depth -= 1;
                            self.bump();
                        }
                        TokenKind::Punct(",") if depth == 0 => break,
                        TokenKind::Eof => return self.err("unterminated action argument"),
                        _ => {
                            self.bump();
                        }
                    }
                }
            }
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            match func.as_str() {
                "err" => actions.push(Action::Err(msg)),
                "warn" => actions.push(Action::Warn(msg)),
                other => {
                    return self.err(format!("unknown action `{other}` (supported: err, warn)"))
                }
            }
        }
        Ok(actions)
    }
}

/// Splits a leading raw `{ ... }` prologue off the source text, returning
/// `(prologue, rest)`. Brace counting ignores braces inside string and char
/// literals and comments.
fn split_prologue(src: &str) -> Result<(Option<String>, &str), MetalParseError> {
    let trimmed = src.trim_start();
    if !trimmed.starts_with('{') {
        return Ok((None, src));
    }
    let offset = src.len() - trimmed.len();
    let bytes = src.as_bytes();
    let mut depth = 0usize;
    let mut i = offset;
    let mut in_str = false;
    let mut in_chr = false;
    let mut in_line_comment = false;
    let mut in_block_comment = false;
    while i < bytes.len() {
        let c = bytes[i];
        if in_line_comment {
            if c == b'\n' {
                in_line_comment = false;
            }
        } else if in_block_comment {
            if c == b'*' && bytes.get(i + 1) == Some(&b'/') {
                in_block_comment = false;
                i += 1;
            }
        } else if in_str {
            if c == b'\\' {
                i += 1;
            } else if c == b'"' {
                in_str = false;
            }
        } else if in_chr {
            if c == b'\\' {
                i += 1;
            } else if c == b'\'' {
                in_chr = false;
            }
        } else {
            match c {
                b'"' => in_str = true,
                b'\'' => in_chr = true,
                b'/' if bytes.get(i + 1) == Some(&b'/') => in_line_comment = true,
                b'/' if bytes.get(i + 1) == Some(&b'*') => in_block_comment = true,
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        let prologue = src[offset + 1..i].trim().to_string();
                        return Ok((Some(prologue), &src[i + 1..]));
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    Err(MetalParseError {
        message: "unterminated prologue block".into(),
        span: Span::new(1, 1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG2: &str = r#"
        { #include "flash-includes.h" }
        sm wait_for_db {
            decl { scalar } addr, buf;
            start:
                { WAIT_FOR_DB_FULL(addr); } ==> stop
              | { MISCBUS_READ_DB(addr, buf); } ==>
                    { err("Buffer not synchronized"); }
            ;
        }
    "#;

    #[test]
    fn parses_figure_2() {
        let sm = MetalProgram::parse(FIG2).unwrap();
        assert_eq!(sm.name, "wait_for_db");
        assert_eq!(sm.wildcards.len(), 2);
        assert_eq!(sm.states.len(), 1);
        assert_eq!(sm.states[0].name, "start");
        assert_eq!(sm.states[0].rules.len(), 2);
        assert_eq!(sm.states[0].rules[0].target, RuleTarget::Stop);
        assert_eq!(
            sm.states[0].rules[1].actions,
            vec![Action::Err("Buffer not synchronized".into())]
        );
    }

    #[test]
    fn prologue_recorded() {
        let sm = MetalProgram::parse(FIG2).unwrap();
        assert!(sm.prologue.unwrap().contains("include"));
    }

    const FIG3: &str = r#"
        sm msglen_check {
            pat zero_assign =
                { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA } ;
            pat nonzero_assign =
                { HANDLER_GLOBALS(header.nh.len) = LEN_WORD }
              | { HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE } ;
            decl { unsigned } keep, swap, wait, dec, null, type;
            pat send_data =
                { PI_SEND(F_DATA, keep, swap, wait, dec, null) }
              | { IO_SEND(F_DATA, keep, swap, wait, dec, null) }
              | { NI_SEND(type, F_DATA, keep, wait, dec, null) } ;
            pat send_nodata =
                { PI_SEND(F_NODATA, keep, swap, wait, dec, null) }
              | { IO_SEND(F_NODATA, keep, swap, wait, dec, null) }
              | { NI_SEND(type, F_NODATA, keep, wait, dec, null) } ;
            all:
                zero_assign ==> zero_len
              | nonzero_assign ==> nonzero_len
            ;
            zero_len:
                send_data ==> { err("data send, zero len"); } ;
            nonzero_len:
                send_nodata ==> { err("nodata send, nonzero len"); } ;
        }
    "#;

    #[test]
    fn parses_figure_3() {
        let sm = MetalProgram::parse(FIG3).unwrap();
        assert_eq!(sm.name, "msglen_check");
        assert_eq!(sm.states.len(), 3);
        assert!(sm.all_state.is_some());
        // Figure 3 "starts in the special state all".
        assert_eq!(sm.states[sm.start_state().0].name, "all");
        // named patterns expanded: all-state rule 1 has 1 pattern, rules of
        // zero_len expanded send_data into 3 alternatives.
        let zero_len = &sm.states[sm.state_by_name("zero_len").unwrap().0];
        assert_eq!(zero_len.rules[0].patterns.len(), 3);
    }

    #[test]
    fn rejects_undeclared_state() {
        let err = MetalProgram::parse("sm x { start: { f(); } ==> nowhere ; }").unwrap_err();
        assert!(err.message.contains("undeclared state"));
    }

    #[test]
    fn rejects_undeclared_pattern() {
        let err = MetalProgram::parse("sm x { start: ghost ==> stop ; }").unwrap_err();
        assert!(err.message.contains("undeclared pattern"));
    }

    #[test]
    fn rejects_empty_program() {
        assert!(MetalProgram::parse("sm x { }").is_err());
    }

    #[test]
    fn rejects_unknown_action() {
        let err =
            MetalProgram::parse("sm x { start: { f(); } ==> { abort(\"m\"); } ; }").unwrap_err();
        assert!(err.message.contains("unknown action"));
    }

    #[test]
    fn rejects_bad_fragment() {
        let err = MetalProgram::parse("sm x { start: { f(+; } ==> stop ; }").unwrap_err();
        assert!(err.message.contains("pattern fragment"));
    }

    #[test]
    fn rule_without_arrow_stays() {
        let sm = MetalProgram::parse("sm x { start: { f(); } | { g(); } ==> stop ; }").unwrap();
        assert_eq!(sm.states[0].rules.len(), 2);
        assert_eq!(sm.states[0].rules[0].target, RuleTarget::Stay);
        assert_eq!(sm.states[0].rules[1].target, RuleTarget::Stop);
    }

    #[test]
    fn target_with_state_and_action() {
        let sm = MetalProgram::parse(
            "sm x { start: { f(); } ==> bad { warn(\"saw f\"); } ; bad: { g(); } ==> stop ; }",
        )
        .unwrap();
        let r = &sm.states[0].rules[0];
        assert_eq!(r.target, RuleTarget::Goto(StateId(1)));
        assert_eq!(r.actions, vec![Action::Warn("saw f".into())]);
    }

    #[test]
    fn expression_fragments_without_semicolon() {
        let sm = MetalProgram::parse("sm x { start: { a = b } ==> stop ; }").unwrap();
        assert!(matches!(
            sm.states[0].rules[0].patterns[0].kind,
            PatternKind::Expr(_)
        ));
    }

    #[test]
    fn statement_fragments_with_semicolon() {
        let sm = MetalProgram::parse("sm x { start: { f(); } ==> stop ; }").unwrap();
        assert!(matches!(
            sm.states[0].rules[0].patterns[0].kind,
            PatternKind::Stmt(_)
        ));
    }
}
