//! # mc-metal
//!
//! The **metal** DSL from the paper: a little language for writing
//! system-specific checkers as state machines whose transition triggers are
//! *patterns written in the base language* (C).
//!
//! A metal program declares wildcard variables (`decl { scalar } addr;`),
//! optional named patterns (`pat send_data = { PI_SEND(...) } | ...;`), and
//! states with rules:
//!
//! ```text
//! sm wait_for_db {
//!     decl { scalar } addr, buf;
//!     start:
//!         { WAIT_FOR_DB_FULL(addr); } ==> stop
//!       | { MISCBUS_READ_DB(addr, buf); } ==>
//!             { err("Buffer not synchronized"); }
//!     ;
//! }
//! ```
//!
//! [`MetalProgram::parse`] turns the text into a program;
//! [`MetalMachine`] runs it as an [`mc_cfg::PathMachine`] down every path of
//! a function's CFG, recording [`MetalReport`]s when `err(...)` actions
//! fire.
//!
//! # Example
//!
//! ```
//! use mc_ast::parse_translation_unit;
//! use mc_cfg::{run_machine, Cfg, Mode};
//! use mc_metal::{MetalMachine, MetalProgram};
//!
//! let sm = MetalProgram::parse(r#"
//!     sm wait_for_db {
//!         decl { scalar } addr, buf;
//!         start:
//!             { WAIT_FOR_DB_FULL(addr); } ==> stop
//!           | { MISCBUS_READ_DB(addr, buf); } ==> { err("Buffer not synchronized"); }
//!         ;
//!     }
//! "#)?;
//! let tu = parse_translation_unit(
//!     "void h(void) { MISCBUS_READ_DB(a, b); }", "h.c").unwrap();
//! let cfg = Cfg::build(tu.function("h").unwrap());
//! let mut machine = MetalMachine::new(&sm);
//! let start = machine.start_state();
//! run_machine(&cfg, &mut machine, start, Mode::StateSet);
//! assert_eq!(machine.reports.len(), 1);
//! # Ok::<(), mc_metal::MetalParseError>(())
//! ```

#![warn(missing_docs)]

mod compile;
mod engine;
mod lang;
mod matcher;
mod parse;

pub use compile::{
    compute_transfers_compiled, CandidatePlan, CompileDiag, CompileDiagKind, CompileError,
    CompiledMachine, CompiledProgram, MetalEngine,
};
pub use engine::{compute_transfers, MetalMachine, MetalReport};
pub use lang::{
    Action, MetalProgram, Pattern, PatternKind, Rule, RuleTarget, StateDef, StateId, TypeClass,
};
pub use matcher::{match_expr, match_stmt, Bindings};
pub use parse::MetalParseError;
