//! Execution of a metal program along CFG paths.
//!
//! [`MetalMachine`] adapts a parsed [`MetalProgram`] to the
//! [`mc_cfg::PathMachine`] interface so [`mc_cfg::run_machine`] can drive it
//! down every path of a function, exactly as xg++ applied metal extensions.

use crate::lang::*;
use crate::matcher::{match_expr, match_stmt, Bindings};
use mc_ast::{Expr, ExprKind, Initializer, Span, Stmt, StmtKind};
use mc_cfg::{PathEvent, PathMachine, PathStep, Witness};
use std::collections::HashSet;

/// An error or warning produced by a metal `err()`/`warn()` action.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MetalReport {
    /// Name of the state machine that fired.
    pub sm_name: String,
    /// The action message, with `%wildcard` references interpolated.
    pub message: String,
    /// Source location of the matched construct.
    pub span: Span,
    /// `true` for `err`, `false` for `warn`.
    pub is_error: bool,
    /// Name of the state the machine was in when the rule fired.
    pub state: String,
    /// The execution path that drove the machine here, entry-to-violation.
    /// The path of the *first* firing is kept when several paths reach the
    /// same `(message, span)` (dedup ignores the steps).
    pub steps: Vec<PathStep>,
}

/// A metal program bound to a report sink, ready to run over CFGs.
///
/// The machine also counts how many times any pattern matched
/// ([`MetalMachine::applications`]) — the "Applied" columns of the paper's
/// tables use this to show how often each check exercised the code.
#[derive(Debug)]
pub struct MetalMachine<'p> {
    prog: &'p MetalProgram,
    /// Reports produced so far (deduplicated by message and location).
    pub reports: Vec<MetalReport>,
    seen: HashSet<(String, Span)>,
    /// Number of rule firings (pattern matches), including ones with no
    /// action.
    pub applications: usize,
    /// When `false`, the required-identifier pre-filter is skipped and every
    /// pattern is structurally compared at every node (the "no pattern
    /// indexing" ablation arm).
    pub use_index: bool,
    /// Number of candidate nodes scanned (instrumentation for the dispatch
    /// benchmark; comparable with [`crate::CompiledMachine::candidates`]).
    pub candidates: u64,
    /// Number of full structural match attempts (pattern comparisons that
    /// survived the required-identifier pre-filter).
    pub attempts: u64,
}

impl<'p> MetalMachine<'p> {
    /// Creates a machine for `prog` with an empty report sink.
    pub fn new(prog: &'p MetalProgram) -> Self {
        MetalMachine {
            prog,
            reports: Vec::new(),
            seen: HashSet::new(),
            applications: 0,
            use_index: true,
            candidates: 0,
            attempts: 0,
        }
    }

    /// The program's start state, to pass to [`mc_cfg::run_machine`].
    pub fn start_state(&self) -> StateId {
        self.prog.start_state()
    }

    /// The underlying program.
    pub fn program(&self) -> &MetalProgram {
        self.prog
    }

    /// Errors only (excludes warnings).
    pub fn errors(&self) -> impl Iterator<Item = &MetalReport> {
        self.reports.iter().filter(|r| r.is_error)
    }

    fn fire(
        &mut self,
        rule: &Rule,
        state: StateId,
        bindings: &Bindings,
        span: Span,
        witness: &Witness<'_>,
    ) {
        self.applications += 1;
        for action in &rule.actions {
            let (msg, is_error) = match action {
                Action::Err(m) => (m, true),
                Action::Warn(m) => (m, false),
            };
            let message = interpolate(msg, bindings);
            if self.seen.insert((message.clone(), span)) {
                // Materialize only when a report is actually born — the
                // common no-violation step never walks the chain.
                self.reports.push(MetalReport {
                    sm_name: self.prog.name.clone(),
                    message,
                    span,
                    is_error,
                    state: self.prog.states[state.0].name.clone(),
                    steps: witness.steps(),
                });
            }
        }
    }

    /// Finds the first rule of `state` (then of `all`) whose pattern matches
    /// the candidate. Returns the rule and the bindings.
    fn find_rule(
        &mut self,
        state: StateId,
        cand: &Candidate<'_>,
        cand_idents: &HashSet<&str>,
    ) -> Option<(&'p Rule, Bindings)> {
        let prog = self.prog;
        let mut try_states: Vec<StateId> = vec![state];
        if let Some(all) = prog.all_state {
            if all != state {
                try_states.push(all);
            }
        }
        for sid in try_states {
            for rule in &prog.states[sid.0].rules {
                for pattern in &rule.patterns {
                    if self.use_index
                        && !pattern
                            .required_idents()
                            .iter()
                            .all(|id| cand_idents.contains(id.as_str()))
                    {
                        continue;
                    }
                    self.attempts += 1;
                    if let Some(b) = match_candidate(pattern, cand, prog) {
                        return Some((rule, b));
                    }
                }
            }
        }
        None
    }

    /// Scans the candidates of one event, firing rules and following
    /// transitions. Returns the successor states (empty = path pruned).
    fn scan(
        &mut self,
        state: StateId,
        cands: &[Candidate<'_>],
        witness: &Witness<'_>,
    ) -> Vec<StateId> {
        let mut cur = state;
        for cand in cands {
            self.candidates += 1;
            let idents = cand_idents(cand);
            if let Some((rule, bindings)) = self.find_rule(cur, cand, &idents) {
                let span = cand.span();
                // `find_rule` returned a rule borrowed from `self.prog`
                // (same lifetime as `'p`), so mutation here is fine.
                self.fire(rule, cur, &bindings, span, witness);
                match rule.target {
                    RuleTarget::Stay => {}
                    RuleTarget::Goto(s) => cur = s,
                    RuleTarget::Stop => return vec![],
                }
            }
        }
        vec![cur]
    }
}

/// A matchable unit extracted from a path event.
pub(crate) enum Candidate<'a> {
    /// A whole statement (declarations, returns).
    Stmt(&'a Stmt),
    /// A subexpression, in evaluation (post) order.
    Expr(&'a Expr),
    /// A synthesized statement (for `return` events), owned.
    Owned(Stmt),
}

impl Candidate<'_> {
    pub(crate) fn span(&self) -> Span {
        match self {
            Candidate::Stmt(s) => s.span,
            Candidate::Expr(e) => e.span,
            Candidate::Owned(s) => s.span,
        }
    }
}

fn cand_idents<'a>(cand: &'a Candidate<'_>) -> HashSet<&'a str> {
    let mut set = HashSet::new();
    fn collect<'a>(e: &'a Expr, set: &mut HashSet<&'a str>) {
        if let ExprKind::Ident(name) = &e.kind {
            set.insert(name.as_str());
        }
        match &e.kind {
            ExprKind::Call { callee, args } => {
                collect(callee, set);
                for a in args {
                    collect(a, set);
                }
            }
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                collect(lhs, set);
                collect(rhs, set);
            }
            ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => {
                collect(operand, set)
            }
            ExprKind::Ternary { cond, then, els } => {
                collect(cond, set);
                collect(then, set);
                collect(els, set);
            }
            ExprKind::Index { base, index } => {
                collect(base, set);
                collect(index, set);
            }
            ExprKind::Member { base, .. } => collect(base, set),
            ExprKind::Cast { expr, .. } => collect(expr, set),
            ExprKind::Comma(a, b) => {
                collect(a, set);
                collect(b, set);
            }
            _ => {}
        }
    }
    let stmt: Option<&Stmt> = match cand {
        Candidate::Expr(e) => {
            collect(e, &mut set);
            None
        }
        Candidate::Stmt(s) => Some(s),
        Candidate::Owned(s) => Some(s),
    };
    if let Some(s) = stmt {
        if let StmtKind::Expr(e) = &s.kind {
            collect(e, &mut set);
        } else if let StmtKind::Decl(d) = &s.kind {
            if let Some(Initializer::Expr(e)) = &d.init {
                collect(e, &mut set);
            }
        } else if let StmtKind::Return(Some(e)) = &s.kind {
            collect(e, &mut set);
        }
    }
    set
}

fn match_candidate(
    pattern: &Pattern,
    cand: &Candidate<'_>,
    prog: &MetalProgram,
) -> Option<Bindings> {
    match (cand, &pattern.kind) {
        (Candidate::Expr(e), PatternKind::Expr(p)) => match_expr(p, e, &prog.wildcards),
        // A statement pattern that is an expression statement also matches
        // bare expressions — `{ WAIT_FOR_DB_FULL(addr); }` must find the
        // macro wherever it is used, e.g. inside a condition.
        (Candidate::Expr(e), PatternKind::Stmt(ps)) => {
            if let StmtKind::Expr(p) = &ps.kind {
                match_expr(p, e, &prog.wildcards)
            } else {
                None
            }
        }
        (Candidate::Stmt(s), PatternKind::Stmt(p)) => match_stmt(p, s, &prog.wildcards),
        (Candidate::Owned(s), PatternKind::Stmt(p)) => match_stmt(p, s, &prog.wildcards),
        _ => None,
    }
}

/// Collects candidates for a statement event: post-order subexpressions,
/// plus the whole statement for declaration forms.
pub(crate) fn stmt_candidates<'a>(s: &'a Stmt, out: &mut Vec<Candidate<'a>>) {
    match &s.kind {
        StmtKind::Expr(e) => postorder(e, out),
        StmtKind::Decl(d) => {
            if let Some(Initializer::Expr(e)) = &d.init {
                postorder(e, out);
            }
            out.push(Candidate::Stmt(s));
        }
        _ => out.push(Candidate::Stmt(s)),
    }
}

/// Post-order (operands before operators) subexpression enumeration:
/// matches evaluation order, so a checker sees `g()` before `f(g())`.
pub(crate) fn postorder<'a>(e: &'a Expr, out: &mut Vec<Candidate<'a>>) {
    match &e.kind {
        ExprKind::Call { callee, args } => {
            postorder(callee, out);
            for a in args {
                postorder(a, out);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            postorder(lhs, out);
            postorder(rhs, out);
        }
        ExprKind::Assign { lhs, rhs, .. } => {
            // RHS evaluates first in C semantics that matter here.
            postorder(rhs, out);
            postorder(lhs, out);
        }
        ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => {
            postorder(operand, out)
        }
        ExprKind::Ternary { cond, then, els } => {
            postorder(cond, out);
            postorder(then, out);
            postorder(els, out);
        }
        ExprKind::Index { base, index } => {
            postorder(base, out);
            postorder(index, out);
        }
        ExprKind::Member { base, .. } => postorder(base, out),
        ExprKind::Cast { expr, .. } => postorder(expr, out),
        ExprKind::Comma(a, b) => {
            postorder(a, out);
            postorder(b, out);
        }
        _ => {}
    }
    out.push(Candidate::Expr(e));
}

pub(crate) fn interpolate(msg: &str, bindings: &Bindings) -> String {
    let mut out = msg.to_string();
    for (name, expr) in bindings {
        let needle = format!("%{name}");
        if out.contains(&needle) {
            out = out.replace(&needle, &mc_ast::print_expr(expr));
        }
    }
    out
}

impl PathMachine for MetalMachine<'_> {
    type State = StateId;

    fn step(
        &mut self,
        state: &StateId,
        event: &PathEvent<'_>,
        witness: &Witness<'_>,
    ) -> Vec<StateId> {
        let mut cands = Vec::new();
        match event {
            PathEvent::Stmt(s) => stmt_candidates(s, &mut cands),
            PathEvent::Branch { cond, .. } => postorder(cond, &mut cands),
            PathEvent::Case { value, .. } => {
                if let Some(v) = value {
                    postorder(v, &mut cands);
                }
            }
            PathEvent::Return { value, span } => {
                if let Some(v) = value {
                    postorder(v, &mut cands);
                }
                cands.push(Candidate::Owned(Stmt::new(
                    StmtKind::Return(value.cloned()),
                    *span,
                )));
            }
            PathEvent::Call { summary, .. } => {
                // Apply the callee's summarized state transfer for this
                // machine: from the current state, the callee can leave the
                // machine in any of the recorded end states. A machine or
                // state with no entry means the callee is opaque (the call
                // pattern itself was already offered to `scan` as part of
                // the enclosing statement, so macro-style patterns that
                // match the call expression keep working). An empty end set
                // means every path through the callee stops this machine.
                if let Some(per_state) = summary.transfers.get(&self.prog.name) {
                    let cur = &self.prog.states[state.0].name;
                    if let Some(ends) = per_state.get(cur) {
                        return ends
                            .iter()
                            .filter_map(|n| self.prog.state_by_name(n))
                            .collect();
                    }
                }
                return vec![*state];
            }
        }
        self.scan(*state, &cands, witness)
    }
}

/// Computes the state transfer of one function for `prog`: for each start
/// state, the set of states the machine can be in when the function
/// returns. This is the `transfers` entry a callee contributes to its
/// [`mc_cfg::FnSummary`] — the summary engine runs it bottom-up, passing
/// the already-summarized callees as `oracle` so transfers compose through
/// call chains.
///
/// Reports produced while exploring are discarded: the callee's own errors
/// are found when the callee itself is checked, and a summary application
/// at a call site must not duplicate them in the caller's context.
pub fn compute_transfers(
    prog: &MetalProgram,
    cfg: &mc_cfg::Cfg,
    traversal: mc_cfg::Traversal,
    oracle: Option<&dyn mc_cfg::SummaryLookup>,
) -> std::collections::BTreeMap<String, Vec<String>> {
    let mut transfers = std::collections::BTreeMap::new();
    for (si, st) in prog.states.iter().enumerate() {
        let mut m = mc_cfg::EndCollector::new(MetalMachine::new(prog));
        mc_cfg::run_traversal_with(cfg, &mut m, StateId(si), traversal, oracle);
        let mut ends: Vec<String> = m
            .ends
            .into_iter()
            .map(|s| prog.states[s.0].name.clone())
            .collect();
        ends.sort();
        ends.dedup();
        // Identity transfers are omitted: a missing entry already means
        // "the call leaves this state alone", and omitting them keeps
        // summaries small and call-site stepping cheap.
        if ends.len() == 1 && ends[0] == st.name {
            continue;
        }
        transfers.insert(st.name.clone(), ends);
    }
    transfers
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::parse_translation_unit;
    use mc_cfg::{run_machine, Cfg, Mode};

    const WAIT_SM: &str = r#"
        sm wait_for_db {
            decl { scalar } addr, buf;
            start:
                { WAIT_FOR_DB_FULL(addr); } ==> stop
              | { MISCBUS_READ_DB(addr, buf); } ==> { err("Buffer not synchronized"); }
            ;
        }
    "#;

    fn run(sm_src: &str, c_src: &str) -> Vec<MetalReport> {
        let prog = MetalProgram::parse(sm_src).unwrap();
        let tu = parse_translation_unit(c_src, "t.c").unwrap();
        let mut all = Vec::new();
        for f in tu.functions() {
            let cfg = Cfg::build(f);
            let mut m = MetalMachine::new(&prog);
            let init = m.start_state();
            run_machine(&cfg, &mut m, init, Mode::StateSet);
            all.extend(m.reports);
        }
        all
    }

    #[test]
    fn detects_read_before_wait() {
        let reports = run(WAIT_SM, "void h(void) { MISCBUS_READ_DB(a, b); }");
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].message, "Buffer not synchronized");
    }

    #[test]
    fn wait_then_read_is_clean() {
        let reports = run(
            WAIT_SM,
            "void h(void) { WAIT_FOR_DB_FULL(a); MISCBUS_READ_DB(a, b); }",
        );
        assert!(reports.is_empty());
    }

    #[test]
    fn one_unsynchronized_path_detected() {
        // wait only happens on the `then` arm; the else path reads raw.
        let reports = run(
            WAIT_SM,
            "void h(void) { if (x) { WAIT_FOR_DB_FULL(a); } MISCBUS_READ_DB(a, b); }",
        );
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn wait_inside_condition_counts() {
        let reports = run(
            WAIT_SM,
            "void h(void) { if (WAIT_FOR_DB_FULL(a)) { } MISCBUS_READ_DB(a, b); }",
        );
        assert!(reports.is_empty());
    }

    #[test]
    fn read_nested_in_assignment_detected() {
        let reports = run(WAIT_SM, "void h(void) { x = MISCBUS_READ_DB(a, b) + 1; }");
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn continues_checking_after_error() {
        // Rule has no transition, so a second read on the same path is a
        // second (distinct) error.
        let reports = run(
            WAIT_SM,
            "void h(void) { MISCBUS_READ_DB(a, b); MISCBUS_READ_DB(c, d); }",
        );
        assert_eq!(reports.len(), 2);
    }

    const MSGLEN_SM: &str = r#"
        sm msglen_check {
            decl { unsigned } keep, swap, wait, dec, null, type;
            pat zero_assign = { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA } ;
            pat nonzero_assign =
                { HANDLER_GLOBALS(header.nh.len) = LEN_WORD }
              | { HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE } ;
            pat send_data =
                { PI_SEND(F_DATA, keep, swap, wait, dec, null) }
              | { IO_SEND(F_DATA, keep, swap, wait, dec, null) }
              | { NI_SEND(type, F_DATA, keep, wait, dec, null) } ;
            pat send_nodata =
                { PI_SEND(F_NODATA, keep, swap, wait, dec, null) }
              | { IO_SEND(F_NODATA, keep, swap, wait, dec, null) }
              | { NI_SEND(type, F_NODATA, keep, wait, dec, null) } ;
            all:
                zero_assign ==> zero_len
              | nonzero_assign ==> nonzero_len
            ;
            zero_len:
                send_data ==> { err("data send, zero len"); } ;
            nonzero_len:
                send_nodata ==> { err("nodata send, nonzero len"); } ;
        }
    "#;

    #[test]
    fn msglen_zero_then_data_send_is_error() {
        let reports = run(
            MSGLEN_SM,
            r#"void h(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                PI_SEND(F_DATA, 1, 1, 0, 1, 0);
            }"#,
        );
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].message, "data send, zero len");
    }

    #[test]
    fn msglen_consistent_sends_clean() {
        let reports = run(
            MSGLEN_SM,
            r#"void h(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;
                NI_SEND(t, F_DATA, 1, 0, 1, 0);
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                NI_SEND(t, F_NODATA, 1, 0, 1, 0);
            }"#,
        );
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn msglen_nonzero_then_nodata_send_is_error() {
        let reports = run(
            MSGLEN_SM,
            r#"void h(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
                if (queue_full) {
                    IO_SEND(F_NODATA, 1, 1, 0, 1, 0);
                }
            }"#,
        );
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].message, "nodata send, nonzero len");
    }

    #[test]
    fn msglen_sends_before_any_assignment_ignored() {
        // The machine starts in `all`, which has no send rules.
        let reports = run(
            MSGLEN_SM,
            "void h(void) { PI_SEND(F_DATA, 1, 1, 0, 1, 0); }",
        );
        assert!(reports.is_empty());
    }

    #[test]
    fn msglen_length_reassignment_switches_state() {
        let reports = run(
            MSGLEN_SM,
            r#"void h(void) {
                HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
                PI_SEND(F_DATA, 1, 1, 0, 1, 0);
            }"#,
        );
        assert!(reports.is_empty());
    }

    #[test]
    fn path_sensitive_branch_states() {
        // len set to NODATA on one branch only; the data send is an error
        // only on that path.
        let reports = run(
            MSGLEN_SM,
            r#"void h(void) {
                if (flag) {
                    HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;
                } else {
                    HANDLER_GLOBALS(header.nh.len) = LEN_WORD;
                }
                PI_SEND(F_DATA, 1, 1, 0, 1, 0);
            }"#,
        );
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].message, "data send, zero len");
    }

    #[test]
    fn applications_counted() {
        let prog = MetalProgram::parse(WAIT_SM).unwrap();
        let tu = parse_translation_unit(
            "void h(void) { MISCBUS_READ_DB(a, b); MISCBUS_READ_DB(c, d); }",
            "t.c",
        )
        .unwrap();
        let cfg = Cfg::build(tu.function("h").unwrap());
        let mut m = MetalMachine::new(&prog);
        let init = m.start_state();
        run_machine(&cfg, &mut m, init, Mode::StateSet);
        assert_eq!(m.applications, 2);
    }

    #[test]
    fn interpolation_of_bindings() {
        let reports = run(
            r#"sm x {
                decl { scalar } addr;
                start: { use_buf(addr); } ==> { err("unsynchronized use of %addr"); } ;
            }"#,
            "void h(void) { use_buf(hdr.a); }",
        );
        assert_eq!(reports[0].message, "unsynchronized use of hdr.a");
    }

    #[test]
    fn exhaustive_and_state_set_agree() {
        let prog = MetalProgram::parse(MSGLEN_SM).unwrap();
        let src = r#"void h(void) {
            if (a) { HANDLER_GLOBALS(header.nh.len) = LEN_NODATA; }
            else { HANDLER_GLOBALS(header.nh.len) = LEN_WORD; }
            if (b) { PI_SEND(F_DATA, 1, 1, 0, 1, 0); }
            else { PI_SEND(F_NODATA, 1, 1, 0, 1, 0); }
        }"#;
        let tu = parse_translation_unit(src, "t.c").unwrap();
        let cfg = Cfg::build(tu.function("h").unwrap());

        let mut m1 = MetalMachine::new(&prog);
        let init = m1.start_state();
        run_machine(&cfg, &mut m1, init, Mode::StateSet);

        let mut m2 = MetalMachine::new(&prog);
        run_machine(&cfg, &mut m2, init, Mode::Exhaustive { max_paths: 10_000 });

        let mut r1: Vec<_> = m1.reports.iter().map(|r| (&r.message, r.span)).collect();
        let mut r2: Vec<_> = m2.reports.iter().map(|r| (&r.message, r.span)).collect();
        r1.sort();
        r2.sort();
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), 2); // both inconsistent combinations found
    }

    #[test]
    fn index_and_no_index_agree() {
        let prog = MetalProgram::parse(WAIT_SM).unwrap();
        let src = "void h(void) { x = y + 1; MISCBUS_READ_DB(a, b); }";
        let tu = parse_translation_unit(src, "t.c").unwrap();
        let cfg = Cfg::build(tu.function("h").unwrap());
        let mut with = MetalMachine::new(&prog);
        let init = with.start_state();
        run_machine(&cfg, &mut with, init, Mode::StateSet);
        let mut without = MetalMachine::new(&prog);
        without.use_index = false;
        run_machine(&cfg, &mut without, init, Mode::StateSet);
        assert_eq!(with.reports, without.reports);
    }
}
