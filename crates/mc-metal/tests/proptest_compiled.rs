//! Differential property test for the compiled metal engine: for random
//! metal programs over random loop-free bodies, the compiled dispatcher
//! (with and without a prebuilt candidate plan) must produce reports
//! byte-identical to the interpreter — same messages, same spans, same
//! witness paths, same order — and the same number of rule applications.
//!
//! This is the oracle that keeps `--metal-engine compiled` honest: the
//! interpreter is the semantics, the compiler is only allowed to be faster.

use mc_ast::parse_translation_unit;
use mc_cfg::{run_machine, Cfg, Mode};
use mc_metal::{CandidatePlan, CompiledMachine, CompiledProgram, MetalMachine, MetalProgram};
use proptest::prelude::*;

/// The pattern vocabulary random programs draw rules from. Each entry is a
/// metal pattern (using the shared `decl { scalar } a, b;`) paired with the
/// C-side statement the body generator emits to exercise it.
const VOCAB: &[(&str, &str)] = &[
    ("{ WAIT_FOR(a); }", "WAIT_FOR(x);"),
    ("{ READ_DB(a, b); }", "READ_DB(x, y);"),
    ("{ SEND_MSG(a); }", "SEND_MSG(x);"),
    ("{ b = ALLOC(a); }", "y = ALLOC(x);"),
    ("{ FREE(a); }", "FREE(x);"),
];

/// A transition target: another state, or an in-place err/warn action.
fn arb_target() -> BoxedStrategy<String> {
    const STATES: &[&str] = &["start", "mid", "stop"];
    prop_oneof![
        (0..STATES.len()).prop_map(|i| STATES[i].to_string()),
        Just("{ err(\"boom\"); }".to_string()),
        Just("{ warn(\"odd\"); }".to_string()),
    ]
    .boxed()
}

/// One `pattern ==> target` rule over the vocabulary.
fn arb_rule() -> impl Strategy<Value = String> {
    (0..VOCAB.len(), arb_target()).prop_map(|(i, t)| format!("{} ==> {}", VOCAB[i].0, t))
}

/// A whole random metal program: two ordinary states plus sometimes an
/// `all` state, each with 1-3 rules drawn from the vocabulary.
fn arb_program() -> impl Strategy<Value = String> {
    let state_block = || prop::collection::vec(arb_rule(), 1..4).boxed();
    (
        state_block(),
        state_block(),
        prop::option::of(state_block()),
    )
        .prop_map(|(start, mid, all)| {
            let mut sm = String::from("sm diffcheck {\n    decl { scalar } a, b;\n");
            if let Some(all) = all {
                sm.push_str(&format!(
                    "    all:\n        {}\n    ;\n",
                    all.join("\n      | ")
                ));
            }
            sm.push_str(&format!(
                "    start:\n        {}\n    ;\n",
                start.join("\n      | ")
            ));
            sm.push_str(&format!(
                "    mid:\n        {}\n    ;\n}}\n",
                mid.join("\n      | ")
            ));
            sm
        })
}

/// Loop-free bodies mixing vocabulary calls, plain arithmetic, and
/// branch/switch structure.
fn arb_body() -> impl Strategy<Value = String> {
    let mut leaves: Vec<_> = VOCAB
        .iter()
        .map(|(_, stmt)| Just(stmt.to_string()).boxed())
        .collect();
    leaves.push(Just("x = x + 1;".to_string()).boxed());
    leaves.push(Just("return;".to_string()).boxed());
    let leaf = prop::strategy::Union::new(leaves);
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(|v| v.join("\n")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("if (c) {{ {a} }} else {{ {b} }}")),
            inner.clone().prop_map(|a| format!("if (c) {{ {a} }}")),
            (inner.clone(), inner)
                .prop_map(|(a, b)| format!("switch (op) {{ case 1: {a} break; default: {b} }}")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn compiled_engine_matches_interpreter(
        (sm_src, body) in (arb_program(), arb_body())
    ) {
        let prog = MetalProgram::parse(&sm_src)
            .unwrap_or_else(|e| panic!("generator emitted unparsable SM: {e:?}\n{sm_src}"));
        let compiled = CompiledProgram::compile(&prog)
            .unwrap_or_else(|e| panic!("compile failed: {e:?}\n{sm_src}"));

        let src = format!("void f(void) {{ {body} }}");
        let tu = parse_translation_unit(&src, "p.c").unwrap();
        let cfg = Cfg::build(tu.function("f").unwrap());

        // Oracle: the interpreter.
        let mut interp = MetalMachine::new(&prog);
        let init = interp.start_state();
        run_machine(&cfg, &mut interp, init, Mode::StateSet);

        // Compiled dispatch without a candidate plan (pure bytecode path).
        let mut plain = CompiledMachine::new(&compiled);
        let cinit = plain.start_state();
        run_machine(&cfg, &mut plain, cinit, Mode::StateSet);

        // Compiled dispatch through a prebuilt candidate plan — the path
        // the driver actually takes.
        let plan = CandidatePlan::build(&compiled, &cfg);
        let mut planned = CompiledMachine::with_plan(&compiled, &plan);
        run_machine(&cfg, &mut planned, cinit, Mode::StateSet);

        prop_assert_eq!(&plain.reports, &interp.reports, "plain compiled diverged\n{}", &sm_src);
        prop_assert_eq!(&planned.reports, &interp.reports, "planned compiled diverged\n{}", &sm_src);
        prop_assert_eq!(plain.applications, interp.applications, "application counts diverged\n{}", &sm_src);
        prop_assert_eq!(planned.applications, interp.applications, "planned application counts diverged\n{}", &sm_src);
    }

    #[test]
    fn compiled_engine_matches_interpreter_exhaustive(
        (sm_src, body) in (arb_program(), arb_body())
    ) {
        let prog = MetalProgram::parse(&sm_src).unwrap();
        let compiled = CompiledProgram::compile(&prog).unwrap();

        let src = format!("void f(void) {{ {body} }}");
        let tu = parse_translation_unit(&src, "p.c").unwrap();
        let cfg = Cfg::build(tu.function("f").unwrap());

        let mode = Mode::Exhaustive { max_paths: 100_000 };
        let mut interp = MetalMachine::new(&prog);
        let init = interp.start_state();
        run_machine(&cfg, &mut interp, init, mode);

        let plan = CandidatePlan::build(&compiled, &cfg);
        let mut planned = CompiledMachine::with_plan(&compiled, &plan);
        let cinit = planned.start_state();
        run_machine(&cfg, &mut planned, cinit, mode);

        prop_assert_eq!(&planned.reports, &interp.reports, "{}", &sm_src);
        prop_assert_eq!(planned.applications, interp.applications, "{}", &sm_src);
    }
}
