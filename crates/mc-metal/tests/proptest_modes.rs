//! Property test: for loop-free functions, the state-set worklist and
//! exhaustive path enumeration produce exactly the same metal reports —
//! the correctness half of the DESIGN.md traversal ablation.

use mc_ast::parse_translation_unit;
use mc_cfg::{run_machine, Cfg, Mode};
use mc_metal::{MetalMachine, MetalProgram};
use proptest::prelude::*;

const SM: &str = r#"
    sm wait_for_db {
        decl { scalar } addr, buf;
        start:
            { WAIT_FOR_DB_FULL(addr); } ==> stop
          | { MISCBUS_READ_DB(addr, buf); } ==> { err("Buffer not synchronized"); }
        ;
    }
"#;

/// Loop-free bodies mixing reads, waits, and branches.
fn arb_body() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("WAIT_FOR_DB_FULL(a);".to_string()),
        Just("x = MISCBUS_READ_DB(a, 0);".to_string()),
        Just("x = x + 1;".to_string()),
        Just("return;".to_string()),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(|v| v.join("\n")),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("if (c) {{ {a} }} else {{ {b} }}")),
            inner.clone().prop_map(|a| format!("if (c) {{ {a} }}")),
            (inner.clone(), inner)
                .prop_map(|(a, b)| format!("switch (op) {{ case 1: {a} break; default: {b} }}")),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn modes_agree_on_loop_free_functions(body in arb_body()) {
        let prog = MetalProgram::parse(SM).unwrap();
        let src = format!("void f(void) {{ {body} }}");
        let tu = parse_translation_unit(&src, "p.c").unwrap();
        let cfg = Cfg::build(tu.function("f").unwrap());

        let mut a = MetalMachine::new(&prog);
        let init = a.start_state();
        run_machine(&cfg, &mut a, init, Mode::StateSet);

        let mut b = MetalMachine::new(&prog);
        run_machine(&cfg, &mut b, init, Mode::Exhaustive { max_paths: 1_000_000 });

        let mut ra: Vec<_> = a.reports.iter().map(|r| (r.span, r.message.clone())).collect();
        let mut rb: Vec<_> = b.reports.iter().map(|r| (r.span, r.message.clone())).collect();
        ra.sort();
        ra.dedup();
        rb.sort();
        rb.dedup();
        prop_assert_eq!(ra, rb);
    }

    #[test]
    fn index_prefilter_never_changes_reports(body in arb_body()) {
        let prog = MetalProgram::parse(SM).unwrap();
        let src = format!("void f(void) {{ {body} }}");
        let tu = parse_translation_unit(&src, "p.c").unwrap();
        let cfg = Cfg::build(tu.function("f").unwrap());

        let mut with = MetalMachine::new(&prog);
        let init = with.start_state();
        run_machine(&cfg, &mut with, init, Mode::StateSet);

        let mut without = MetalMachine::new(&prog);
        without.use_index = false;
        run_machine(&cfg, &mut without, init, Mode::StateSet);

        prop_assert_eq!(with.reports, without.reports);
    }
}
