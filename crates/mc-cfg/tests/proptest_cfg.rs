//! Property tests on CFG construction: structural invariants hold for
//! arbitrary loop-free and loopy statement trees.

use mc_ast::parse_translation_unit;
use mc_cfg::{run_machine, Cfg, Mode, PathEvent, PathMachine, Terminator, Witness};
use proptest::prelude::*;

/// Generates a random statement-body source text. `depth` bounds nesting.
fn arb_body() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("x = x + 1;".to_string()),
        Just("f(x);".to_string()),
        Just("return;".to_string()),
        Just("y = g(x, 2);".to_string()),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            // sequence
            prop::collection::vec(inner.clone(), 1..4).prop_map(|v| v.join("\n")),
            // if / if-else
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| format!("if (c) {{ {a} }} else {{ {b} }}")),
            inner.clone().prop_map(|a| format!("if (c) {{ {a} }}")),
            // loops
            inner.clone().prop_map(|a| format!("while (c) {{ {a} }}")),
            inner
                .clone()
                .prop_map(|a| format!("for (i = 0; i < 4; i++) {{ {a} }}")),
            // switch
            (inner.clone(), inner)
                .prop_map(|(a, b)| format!("switch (op) {{ case 1: {a} break; default: {b} }}")),
        ]
    })
}

/// Counts events seen per traversal, to compare modes.
#[derive(Default)]
struct EventCounter {
    stmts: usize,
    returns: usize,
}

impl PathMachine for EventCounter {
    type State = ();
    fn step(&mut self, _: &(), event: &PathEvent<'_>, _: &Witness<'_>) -> Vec<()> {
        match event {
            PathEvent::Stmt(_) => self.stmts += 1,
            PathEvent::Return { .. } => {
                self.returns += 1;
                return vec![];
            }
            _ => {}
        }
        vec![()]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cfg_structural_invariants(body in arb_body()) {
        let src = format!("void f(void) {{ {body} }}");
        let tu = parse_translation_unit(&src, "p.c").unwrap();
        let cfg = Cfg::build(tu.function("f").unwrap());

        // Entry is block 0 and in range.
        prop_assert_eq!(cfg.entry.0, 0);
        // Every successor id is a valid block.
        for (_, block) in cfg.iter() {
            for s in block.term.successors() {
                prop_assert!(s.0 < cfg.blocks.len());
            }
        }
        // At least one exit exists (void functions always fall off the end
        // or return).
        prop_assert!(!cfg.exits().is_empty());
    }

    #[test]
    fn path_stats_sane(body in arb_body()) {
        let src = format!("void f(void) {{ {body} }}");
        let tu = parse_translation_unit(&src, "p.c").unwrap();
        let cfg = Cfg::build(tu.function("f").unwrap());
        let stats = cfg.path_stats();
        prop_assert!(stats.paths >= 1);
        prop_assert!(stats.max_len as u128 * stats.paths as u128 >= stats.total_len as u128);
        prop_assert!(stats.avg_len() <= stats.max_len as f64 + 1e-9);
    }

    #[test]
    fn state_set_terminates_and_visits(body in arb_body()) {
        let src = format!("void f(void) {{ {body} }}");
        let tu = parse_translation_unit(&src, "p.c").unwrap();
        let cfg = Cfg::build(tu.function("f").unwrap());
        let mut m = EventCounter::default();
        run_machine(&cfg, &mut m, (), Mode::StateSet);
        // Every return terminator is visited exactly once in state-set
        // mode with a unit state.
        let return_blocks = cfg
            .iter()
            .filter(|(_, b)| matches!(b.term, Terminator::Return { .. }))
            .count();
        prop_assert!(m.returns <= return_blocks);
        prop_assert!(m.returns >= 1);
    }

    #[test]
    fn exhaustive_never_exceeds_budget(body in arb_body()) {
        let src = format!("void f(void) {{ {body} }}");
        let tu = parse_translation_unit(&src, "p.c").unwrap();
        let cfg = Cfg::build(tu.function("f").unwrap());
        let mut m = EventCounter::default();
        run_machine(&cfg, &mut m, (), Mode::Exhaustive { max_paths: 64 });
        prop_assert!(m.returns <= 64);
    }
}
