//! Witness paths: the execution trace that drove a state machine into an
//! error state.
//!
//! The paper stresses that metal reports were triaged by reading the *path*
//! that reaches the violation, not just its location. Both traversal modes
//! therefore record, per in-flight state, a chain of `(span, event)` steps.
//! Paths share long prefixes (every fork copies the history up to the
//! branch), so the chains are stored as hash-consed parent-pointer nodes in
//! a [`WitnessArena`]: extending a path is one interning lookup, two states
//! with the same history share one node, and the StateSet worklist keeps
//! carrying a cheap `Option<WitnessId>` next to each `(block, state, facts)`
//! key — the dedup key itself is unchanged, so the first witness to reach a
//! deduplicated state is the one that is kept.
//!
//! A machine only pays for materialization when a violation actually fires:
//! [`Witness::steps`] walks the parent chain once and reverses it into
//! entry-to-violation order.

use crate::hash::FastMap;
use mc_ast::Span;
use mc_json::{FromJson, Json, JsonError, ToJson};

/// One step of a diagnostic's witness path, in execution order.
///
/// `file` is empty while the step lives inside a single-function traversal
/// (the function's file is implied); the driver fills it in when the step
/// is attached to a [`Report`]-level diagnostic, and interprocedural
/// summary steps carry their own file from the start.
///
/// [`Report`]: https://docs.rs/mc-driver
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathStep {
    /// File the step is in (may be empty: "same file as the report").
    pub file: String,
    /// Location of the step.
    pub span: Span,
    /// What happened there (`"branch taken"`, `` "call `free_buf`" ``, …).
    pub note: String,
}

impl PathStep {
    /// Creates a step with an empty file (same file as the report).
    pub fn new(span: Span, note: impl Into<String>) -> PathStep {
        PathStep {
            file: String::new(),
            span,
            note: note.into(),
        }
    }
}

/// The transition event recorded at one witness node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// An ordinary statement was executed.
    Stmt,
    /// A branch condition was evaluated; `true` means the then-edge.
    Branch(bool),
    /// A switch dispatched to a labeled case.
    Case,
    /// A switch dispatched to its default / fallthrough edge.
    CaseDefault,
    /// The function returned.
    Return,
    /// A summarized callee was applied at a call site.
    Call(String),
}

impl StepKind {
    /// Human-readable rendering used when a witness is materialized.
    pub fn note(&self) -> String {
        match self {
            StepKind::Stmt => "statement".to_string(),
            StepKind::Branch(true) => "branch taken".to_string(),
            StepKind::Branch(false) => "branch not taken".to_string(),
            StepKind::Case => "switch case".to_string(),
            StepKind::CaseDefault => "switch default".to_string(),
            StepKind::Return => "return".to_string(),
            StepKind::Call(name) => format!("call `{name}`"),
        }
    }
}

impl ToJson for PathStep {
    fn to_json(&self) -> Json {
        mc_json::object(vec![
            ("file", self.file.to_json()),
            ("span", self.span.to_json()),
            ("note", self.note.to_json()),
        ])
    }
}

impl FromJson for PathStep {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(PathStep {
            file: mc_json::field_or_default(v, "file")?,
            span: mc_json::field(v, "span")?,
            note: mc_json::field(v, "note")?,
        })
    }
}

/// Handle to one hash-consed witness node in a [`WitnessArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WitnessId(u32);

/// Hash-consed parent-pointer storage for witness chains.
///
/// Cost model: arena size is bounded by the number of *distinct* `(parent,
/// span, event)` extensions, not by the number of paths. StateSet traversal
/// visits each `(block, state, facts)` key once, so the arena grows linearly
/// with visited keys; Exhaustive traversal re-walks shared suffixes but the
/// interning table collapses identical re-extensions (the 50k-conditional
/// stress function stays linear instead of quadratic).
#[derive(Debug)]
pub struct WitnessArena {
    /// `(parent, span, kind)` per node, indexed by [`WitnessId`].
    nodes: Vec<(Option<WitnessId>, Span, StepKind)>,
    interned: FastMap<(Option<WitnessId>, Span, StepKind), WitnessId>,
    /// Whether [`WitnessArena::extend`] dedups identical extensions.
    ///
    /// Interning is what keeps the Exhaustive traversal linear (it re-walks
    /// shared path suffixes, and the table collapses the re-extensions).
    /// The StateSet traversal visits each `(block, state, facts)` key once,
    /// so every extension is new with high probability and the interning
    /// probe is a pure per-event hash tax: an append-only arena produces
    /// witnesses with byte-identical *contents* (materialization walks
    /// parent chains, never compares ids) while growing at most linearly
    /// with events — which is exactly what the probe table cost anyway.
    intern: bool,
}

impl Default for WitnessArena {
    fn default() -> WitnessArena {
        WitnessArena {
            nodes: Vec::new(),
            interned: FastMap::default(),
            intern: true,
        }
    }
}

impl WitnessArena {
    /// Creates an empty arena.
    pub fn new() -> WitnessArena {
        WitnessArena::default()
    }

    /// Creates an empty interning arena sized for roughly `nodes`
    /// extensions, so the hot per-event interning probe doesn't pay the
    /// doubling rehashes while a traversal warms up.
    pub fn with_capacity(nodes: usize) -> WitnessArena {
        WitnessArena {
            nodes: Vec::with_capacity(nodes),
            interned: FastMap::with_capacity_and_hasher(nodes, Default::default()),
            intern: true,
        }
    }

    /// Creates an append-only arena sized for roughly `nodes` extensions:
    /// no interning table, every extension is a fresh node. For traversals
    /// that never re-extend the same parent (StateSet), this trades nothing
    /// for one hash-map probe per event.
    pub fn append_only(nodes: usize) -> WitnessArena {
        WitnessArena {
            nodes: Vec::with_capacity(nodes),
            interned: FastMap::default(),
            intern: false,
        }
    }

    /// Extends `parent` by one step, reusing an existing node when the same
    /// extension was recorded before (interning arenas only; append-only
    /// arenas always record a fresh node with identical contents).
    pub fn extend(&mut self, parent: Option<WitnessId>, span: Span, kind: StepKind) -> WitnessId {
        let next = WitnessId(u32::try_from(self.nodes.len()).expect("witness arena overflow"));
        if !self.intern {
            self.nodes.push((parent, span, kind));
            return next;
        }
        // Most extensions are new nodes, so the map is probed through the
        // entry API: one hash covers both the lookup and the insert.
        match self.interned.entry((parent, span, kind)) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => {
                self.nodes.push(e.key().clone());
                e.insert(next);
                next
            }
        }
    }

    /// Number of distinct nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no node was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A borrowing handle for the chain ending at `tip`.
    pub fn witness(&self, tip: Option<WitnessId>) -> Witness<'_> {
        Witness { arena: self, tip }
    }

    /// Materializes the chain ending at `tip` into execution order.
    pub fn steps(&self, tip: Option<WitnessId>) -> Vec<PathStep> {
        let mut out = Vec::new();
        let mut cur = tip;
        while let Some(id) = cur {
            let (parent, span, kind) = &self.nodes[id.0 as usize];
            out.push(PathStep::new(*span, kind.note()));
            cur = *parent;
        }
        out.reverse();
        out
    }
}

/// The witness handed to [`PathMachine::step`]: the path that led to the
/// event being stepped, including the event itself as the final step.
///
/// Materialization is lazy — machines that don't fire pay only for the
/// pointer copy.
///
/// [`PathMachine::step`]: crate::PathMachine::step
#[derive(Debug, Clone, Copy)]
pub struct Witness<'a> {
    arena: &'a WitnessArena,
    tip: Option<WitnessId>,
}

impl Witness<'_> {
    /// The steps from function entry to (and including) the current event.
    pub fn steps(&self) -> Vec<PathStep> {
        self.arena.steps(self.tip)
    }

    /// Whether no step was recorded (only possible before the first event).
    pub fn is_empty(&self) -> bool {
        self.tip.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_materialize_in_execution_order() {
        let mut arena = WitnessArena::new();
        let a = arena.extend(None, Span::new(1, 1), StepKind::Stmt);
        let b = arena.extend(Some(a), Span::new(2, 3), StepKind::Branch(true));
        let c = arena.extend(Some(b), Span::new(3, 5), StepKind::Return);
        let steps = arena.steps(Some(c));
        assert_eq!(steps.len(), 3);
        assert_eq!(steps[0].span, Span::new(1, 1));
        assert_eq!(steps[0].note, "statement");
        assert_eq!(steps[1].note, "branch taken");
        assert_eq!(steps[2].note, "return");
        assert!(steps.iter().all(|s| s.file.is_empty()));
    }

    #[test]
    fn identical_extensions_are_shared() {
        let mut arena = WitnessArena::new();
        let a = arena.extend(None, Span::new(1, 1), StepKind::Stmt);
        let b1 = arena.extend(Some(a), Span::new(2, 1), StepKind::Branch(false));
        let b2 = arena.extend(Some(a), Span::new(2, 1), StepKind::Branch(false));
        assert_eq!(b1, b2);
        assert_eq!(arena.len(), 2);
        // A different event at the same location is a distinct node.
        let c = arena.extend(Some(a), Span::new(2, 1), StepKind::Branch(true));
        assert_ne!(b1, c);
        assert_eq!(arena.len(), 3);
    }

    #[test]
    fn empty_witness_has_no_steps() {
        let arena = WitnessArena::new();
        let w = arena.witness(None);
        assert!(w.is_empty());
        assert!(w.steps().is_empty());
    }

    #[test]
    fn call_steps_name_the_callee() {
        let mut arena = WitnessArena::new();
        let a = arena.extend(None, Span::new(4, 2), StepKind::Call("free_buf".into()));
        let steps = arena.steps(Some(a));
        assert_eq!(steps[0].note, "call `free_buf`");
    }
}
