//! # mc-cfg
//!
//! Control-flow graphs over [`mc_ast`] functions, plus the two services the
//! rest of the workspace needs from them:
//!
//! 1. **Path statistics** ([`PathStats`]) — the number of unique
//!    entry-to-exit paths and their lengths, reproducing the methodology of
//!    Table 1 of the paper ("the number of unique exit paths from the
//!    beginning of the function to all returns").
//! 2. **Path-sensitive traversal** ([`run_machine`]) — the engine that
//!    applies a checker state machine "down every path", with a choice
//!    between exhaustive path enumeration (what the paper describes) and a
//!    state-set worklist that merges identical checker states at join
//!    points (same reports, polynomial time). The ablation between the two
//!    is one of the benchmarks.
//! 3. **Path-feasibility pruning** ([`feasibility`], [`run_traversal`]) —
//!    a predicate-tracking domain that refutes branch edges contradicting
//!    facts accumulated along the path, killing the paper's dominant
//!    false-positive class (unpruned correlated branches).
//! 4. **Function summaries** ([`FnSummary`], [`summarize_counts`],
//!    [`run_traversal_with`]) — a per-function abstraction of what a call
//!    can do to checker state (state-machine transfers, counter
//!    contributions, fact clobbers), generalizing the paper's one-off §7
//!    emit-and-link lane pass into a layer any checker can opt into.
//!
//! # Example
//!
//! ```
//! use mc_ast::parse_translation_unit;
//! use mc_cfg::Cfg;
//!
//! let tu = parse_translation_unit(
//!     "void h(void) { if (x) { f(); } else { g(); } k(); }", "h.c").unwrap();
//! let cfg = Cfg::build(tu.function("h").unwrap());
//! let stats = cfg.path_stats();
//! assert_eq!(stats.paths, 2);
//! ```

#![warn(missing_docs)]

mod build;
pub mod feasibility;
mod hash;
mod machine;
mod stats;
mod summary;
mod witness;

pub use build::{Block, BlockId, Cfg, Node, Terminator};
pub use feasibility::FactSet;
pub use machine::{
    feasibility_stats, run_machine, run_traversal, run_traversal_seeded, run_traversal_with,
    seed_facts, EndCollector, Mode, PathEvent, PathMachine, Traversal, TraversalStats,
};
pub use stats::PathStats;
pub use summary::{
    collect_calls, collect_clobbers, summarize_counts, tarjan_sccs, CountSummary, CycleWarning,
    FnSummary, Resolved, SummaryLookup,
};
pub use witness::{PathStep, StepKind, Witness, WitnessArena, WitnessId};
