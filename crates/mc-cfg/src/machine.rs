//! Path-sensitive execution of checker state machines over a CFG.
//!
//! This is the engine behind "metal programs ... are applied down every path
//! in each function". A checker implements [`PathMachine`]: given a state
//! and a [`PathEvent`] it returns the successor states (possibly several —
//! metal patterns may fork — or none, which prunes the path, as the `stop`
//! state does).
//!
//! Two traversal [`Mode`]s are provided:
//!
//! * [`Mode::Exhaustive`] — literally walk every path (bounded by a path
//!   budget and by taking each back edge at most once per path). This is
//!   what the paper describes.
//! * [`Mode::StateSet`] — a worklist over `(block, state)` pairs that merges
//!   identical checker states at join points. For a finite-state checker
//!   this reports exactly the same violations in polynomial time; the
//!   `scaling` benchmark quantifies the difference.

use crate::build::{BlockId, Cfg, Terminator};
use crate::feasibility::{const_of, Const, FactSet};
use crate::summary::{calls_in_expr, calls_in_stmt, FnSummary, SummaryLookup};
use crate::witness::{StepKind, Witness, WitnessArena, WitnessId};
use mc_ast::{Expr, Span, Stmt};
use std::collections::HashSet;
use std::hash::Hash;

/// An observable event along an execution path.
#[derive(Debug, Clone, Copy)]
pub enum PathEvent<'a> {
    /// An atomic statement (expression statement or declaration).
    Stmt(&'a Stmt),
    /// A conditional branch on `cond`; `taken` tells which arm this path
    /// follows.
    Branch {
        /// The branch condition.
        cond: &'a Expr,
        /// `true` on the then-edge, `false` on the else-edge.
        taken: bool,
    },
    /// Entry into a switch arm.
    Case {
        /// The switched expression.
        scrutinee: &'a Expr,
        /// The case label value (`None` for `default` or for the implicit
        /// no-match fallthrough edge).
        value: Option<&'a Expr>,
    },
    /// Function exit via `return` (or the implicit end-of-body return).
    Return {
        /// Returned value, if any.
        value: Option<&'a Expr>,
        /// Location of the return.
        span: Span,
    },
    /// A call to a function whose summary is known. Fired only when the
    /// traversal runs with a summary oracle ([`run_traversal_with`]) *and*
    /// the oracle resolves the callee — without an oracle, calls stay
    /// invisible and machines behave exactly as before summaries existed.
    ///
    /// Call events fire after the [`PathEvent::Stmt`] containing the call
    /// (in evaluation order for multiple calls in one statement), and for
    /// calls inside a terminator expression (branch condition, switch
    /// scrutinee, return value) before the corresponding branch/case/return
    /// events.
    Call {
        /// Callee name.
        name: &'a str,
        /// Location of the call expression.
        span: Span,
        /// The callee's summary, as resolved by the oracle.
        summary: &'a FnSummary,
    },
}

/// A path-sensitive state machine to run over a CFG.
pub trait PathMachine {
    /// Checker state. Must be finite-ish and hashable so the state-set mode
    /// can merge; metal SM states are.
    type State: Clone + Eq + Hash;

    /// Consumes one event in `state`; returns successor states. Returning
    /// an empty vector prunes this path (metal's `stop` state). Returning
    /// more than one state forks the path analysis.
    ///
    /// `witness` is the execution path that led here, ending with the event
    /// being stepped. Machines that fire a violation materialize it
    /// ([`Witness::steps`]) into the diagnostic; everyone else ignores it
    /// for free.
    ///
    /// Side effects (error reports) are recorded on `&mut self`.
    fn step(
        &mut self,
        state: &Self::State,
        event: &PathEvent<'_>,
        witness: &Witness<'_>,
    ) -> Vec<Self::State>;

    /// Buffer-reusing form of [`PathMachine::step`]: pushes the successor
    /// states onto `out` instead of returning a fresh vector. The state-set
    /// traversal calls this from its hot loop with a reused buffer; the
    /// default forwards to [`PathMachine::step`], so existing machines keep
    /// their exact behavior, while allocation-sensitive machines (the
    /// compiled metal engine) override it to step without allocating.
    fn step_into(
        &mut self,
        state: &Self::State,
        event: &PathEvent<'_>,
        witness: &Witness<'_>,
        out: &mut Vec<Self::State>,
    ) {
        out.extend(self.step(state, event, witness));
    }
}

/// Traversal strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Merge identical states at join points (polynomial, default).
    StateSet,
    /// Walk each path separately, visiting each back edge at most once per
    /// path and exploring at most the given number of paths.
    Exhaustive {
        /// Upper bound on explored paths; exploration stops silently when
        /// the budget is exhausted (matching xg++'s bounded analysis).
        max_paths: usize,
    },
}

/// Traversal settings: a [`Mode`] plus whether infeasible edges are pruned
/// by the [`crate::feasibility`] analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traversal {
    /// Path enumeration strategy.
    pub mode: Mode,
    /// When `true`, branch/switch edges whose condition contradicts the
    /// facts accumulated along the path are not followed.
    pub prune: bool,
}

impl Traversal {
    /// A pruning traversal in the given mode (the driver default).
    pub fn new(mode: Mode) -> Traversal {
        Traversal { mode, prune: true }
    }

    /// A traversal that walks every syntactic path, feasible or not —
    /// the paper's original behavior.
    pub fn without_pruning(mode: Mode) -> Traversal {
        Traversal { mode, prune: false }
    }

    /// A stable token identifying these settings, for content-addressed
    /// cache keys: traversal mode and pruning both change checker output,
    /// so results computed under different settings must never alias.
    pub fn cache_token(&self) -> String {
        let mode = match self.mode {
            Mode::StateSet => "state-set".to_string(),
            Mode::Exhaustive { max_paths } => format!("exhaustive:{max_paths}"),
        };
        format!("{mode}+{}", if self.prune { "prune" } else { "noprune" })
    }
}

impl Default for Traversal {
    fn default() -> Traversal {
        Traversal::new(Mode::StateSet)
    }
}

/// Wraps a [`PathMachine`] and records the post-step states at every
/// [`PathEvent::Return`] — the states the wrapped machine actually exits the
/// function in.
///
/// This is the collection half of summary-transfer computation: both the
/// interpreted and the compiled metal engines run one `EndCollector` per
/// start state to learn what a function does to checker state, so the
/// summary layer stays agnostic of which engine dispatched the steps.
#[derive(Debug)]
pub struct EndCollector<M: PathMachine> {
    /// The machine being observed.
    pub inner: M,
    /// Every state observed immediately after stepping a return event.
    pub ends: std::collections::HashSet<M::State>,
}

impl<M: PathMachine> EndCollector<M> {
    /// Wraps `inner` with an empty end-state set.
    pub fn new(inner: M) -> EndCollector<M> {
        EndCollector {
            inner,
            ends: std::collections::HashSet::new(),
        }
    }
}

impl<M: PathMachine> PathMachine for EndCollector<M> {
    type State = M::State;

    fn step(
        &mut self,
        state: &Self::State,
        event: &PathEvent<'_>,
        witness: &Witness<'_>,
    ) -> Vec<Self::State> {
        let out = self.inner.step(state, event, witness);
        if matches!(event, PathEvent::Return { .. }) {
            self.ends.extend(out.iter().cloned());
        }
        out
    }

    fn step_into(
        &mut self,
        state: &Self::State,
        event: &PathEvent<'_>,
        witness: &Witness<'_>,
        out: &mut Vec<Self::State>,
    ) {
        let before = out.len();
        self.inner.step_into(state, event, witness, out);
        if matches!(event, PathEvent::Return { .. }) {
            self.ends.extend(out[before..].iter().cloned());
        }
    }
}

/// What a traversal observed about path feasibility.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Number of distinct CFG edges refuted as infeasible (counted once per
    /// edge no matter how many paths reached it).
    pub refuted_edges: usize,
}

/// Runs `machine` over `cfg` starting from `init` in the given mode,
/// walking every syntactic path without feasibility pruning.
pub fn run_machine<M: PathMachine>(cfg: &Cfg, machine: &mut M, init: M::State, mode: Mode) {
    run_traversal(cfg, machine, init, Traversal::without_pruning(mode));
}

/// Runs `machine` over `cfg` starting from `init` with the given traversal
/// settings, returning feasibility statistics.
pub fn run_traversal<M: PathMachine>(
    cfg: &Cfg,
    machine: &mut M,
    init: M::State,
    traversal: Traversal,
) -> TraversalStats {
    run_traversal_with(cfg, machine, init, traversal, None)
}

/// Like [`run_traversal`], but consults `oracle` at call sites: a call whose
/// callee the oracle resolves fires a [`PathEvent::Call`] carrying the
/// summary (after applying the summary's clobber set to the feasibility
/// facts). With `oracle` of `None` this is byte-for-byte [`run_traversal`].
pub fn run_traversal_with<M: PathMachine>(
    cfg: &Cfg,
    machine: &mut M,
    init: M::State,
    traversal: Traversal,
    oracle: Option<&dyn SummaryLookup>,
) -> TraversalStats {
    let init_facts = initial_facts(cfg, traversal.prune);
    run_traversal_seeded(cfg, machine, init, traversal, oracle, init_facts)
}

/// Like [`run_traversal_with`], but starts from a precomputed [`seed_facts`]
/// result instead of re-walking the function. Callers running several
/// machines over the same CFG compute the seed once and pass clones — with
/// no facts established yet a clone only bumps the escape set's refcount.
pub fn run_traversal_seeded<M: PathMachine>(
    cfg: &Cfg,
    machine: &mut M,
    init: M::State,
    traversal: Traversal,
    oracle: Option<&dyn SummaryLookup>,
    init_facts: FactSet,
) -> TraversalStats {
    let mut refuted: FastSet<(BlockId, usize)> = FastSet::default();
    // A single-state machine visits each event about once, so the node
    // count is the right order of magnitude for the arena; wide state sets
    // merely grow it once more. StateSet visits each key once and never
    // re-extends, so it skips the interning table entirely; Exhaustive
    // re-walks shared suffixes and needs interning to stay linear.
    let events: usize = cfg.blocks.iter().map(|b| b.nodes.len() + 1).sum();
    let mut arena = match traversal.mode {
        Mode::StateSet => WitnessArena::append_only(events),
        Mode::Exhaustive { .. } => WitnessArena::with_capacity(events),
    };
    match traversal.mode {
        Mode::StateSet => run_state_set(
            cfg,
            machine,
            init,
            init_facts,
            traversal.prune,
            &mut refuted,
            &mut arena,
            oracle,
        ),
        Mode::Exhaustive { max_paths } => {
            let mut budget = max_paths;
            let mut back_counts = vec![0u8; cfg.blocks.len()];
            run_exhaustive(
                cfg,
                machine,
                cfg.entry,
                vec![init],
                init_facts,
                traversal.prune,
                &mut refuted,
                &mut back_counts,
                &mut budget,
                &mut arena,
                oracle,
            );
        }
    }
    TraversalStats {
        refuted_edges: refuted.len(),
    }
}

/// Steps every state through the resolved calls of one statement or
/// terminator expression, in evaluation order. Each resolved call first
/// drops the facts its summary clobbers, then fires a [`PathEvent::Call`].
/// Unresolved calls are skipped entirely (no event), so machines written
/// before summaries existed keep their exact behavior.
fn fire_calls<M: PathMachine>(
    machine: &mut M,
    states: Vec<M::State>,
    calls: &[(&str, Span)],
    oracle: &dyn SummaryLookup,
    mut facts: Option<&mut FactSet>,
    arena: &mut WitnessArena,
    mut wid: Option<WitnessId>,
) -> (Vec<M::State>, Option<WitnessId>) {
    let mut states = states;
    let mut next: Vec<M::State> = Vec::new();
    for (name, span) in calls {
        let Some(summary) = oracle.lookup(name) else {
            continue;
        };
        if let Some(f) = facts.as_deref_mut() {
            for key in &summary.clobbers {
                f.invalidate_key(key);
            }
        }
        let ev = PathEvent::Call {
            name,
            span: *span,
            summary,
        };
        wid = Some(arena.extend(wid, *span, StepKind::Call(name.to_string())));
        let witness = arena.witness(wid);
        next.clear();
        for s in &states {
            machine.step_into(s, &ev, &witness, &mut next);
        }
        std::mem::swap(&mut states, &mut next);
        dedup_in_place(&mut states);
        if states.is_empty() {
            break;
        }
    }
    (states, wid)
}

/// The calls inside a terminator's expression, in evaluation order —
/// empty without an oracle so no work happens on the common path.
fn terminator_calls<'a>(
    term: &'a Terminator,
    oracle: Option<&dyn SummaryLookup>,
) -> Vec<(&'a str, Span)> {
    let mut calls = Vec::new();
    if oracle.is_none() {
        return calls;
    }
    match term {
        Terminator::Jump(_) => {}
        Terminator::Branch { cond, .. } => calls_in_expr(cond, &mut calls),
        Terminator::Switch { scrutinee, .. } => calls_in_expr(scrutinee, &mut calls),
        Terminator::Return { value, .. } => {
            if let Some(v) = value {
                calls_in_expr(v, &mut calls);
            }
        }
    }
    calls
}

/// Counts how many CFG edges of `cfg` the feasibility analysis refutes,
/// independent of any checker. The driver uses this as the `pruned_paths`
/// evidence on reports: a function with refuted edges is exactly the shape
/// where unpruned traversals manufacture correlated-branch false positives.
pub fn feasibility_stats(cfg: &Cfg) -> TraversalStats {
    /// A stateless machine that just rides along every edge.
    struct Unit;
    impl PathMachine for Unit {
        type State = ();
        fn step(&mut self, _: &(), _: &PathEvent<'_>, _: &Witness<'_>) -> Vec<()> {
            vec![()]
        }
    }
    run_traversal(cfg, &mut Unit, (), Traversal::new(Mode::StateSet))
}

/// Feeds the events of one block to the machine, expanding the state set.
/// Returns the states alive at the terminator. When `facts` is provided,
/// statements with side effects invalidate the feasibility facts they
/// clobber.
#[allow(clippy::too_many_arguments)]
fn flow_block<M: PathMachine>(
    cfg: &Cfg,
    machine: &mut M,
    block: BlockId,
    states: &mut Vec<M::State>,
    scratch: &mut Vec<M::State>,
    mut facts: Option<&mut FactSet>,
    arena: &mut WitnessArena,
    mut wid: Option<WitnessId>,
    oracle: Option<&dyn SummaryLookup>,
) -> Option<WitnessId> {
    for node in &cfg.block(block).nodes {
        // With no facts on the path, invalidation cannot drop anything, and
        // the escape registration it would perform is already covered by the
        // function-wide seed in `initial_facts` — so the AST walk is skipped.
        if let Some(f) = facts.as_deref_mut() {
            if !f.is_empty() {
                f.invalidate_stmt(&node.stmt);
            }
        }
        wid = Some(arena.extend(wid, node.stmt.span, StepKind::Stmt));
        let witness = arena.witness(wid);
        scratch.clear();
        for s in states.iter() {
            machine.step_into(s, &PathEvent::Stmt(&node.stmt), &witness, scratch);
        }
        std::mem::swap(states, scratch);
        dedup_in_place(states);
        if states.is_empty() {
            break;
        }
        if let Some(oracle) = oracle {
            let mut calls = Vec::new();
            calls_in_stmt(&node.stmt, &mut calls);
            if !calls.is_empty() {
                let (next, next_wid) = fire_calls(
                    machine,
                    std::mem::take(states),
                    &calls,
                    oracle,
                    facts.as_deref_mut(),
                    arena,
                    wid,
                );
                *states = next;
                wid = next_wid;
                if states.is_empty() {
                    break;
                }
            }
        }
    }
    wid
}

/// The starting fact set for a pruning traversal: empty facts, but with the
/// escape set seeded from every `&lvalue` in the function. A store through
/// an untracked lvalue (`*p = …`) must clobber a variable's facts even when
/// its address was taken before the fact was established or in a sibling
/// branch, so the seed covers the whole function, not just the current path.
/// See [`run_traversal_seeded`] for why a caller would precompute it.
pub fn seed_facts(cfg: &Cfg, prune: bool) -> FactSet {
    initial_facts(cfg, prune)
}

fn initial_facts(cfg: &Cfg, prune: bool) -> FactSet {
    if !prune {
        return FactSet::new();
    }
    // The scan happened once in `Cfg::build`; starting a traversal only
    // bumps the shared escape set's refcount.
    FactSet::from_escapes(cfg.escapes.clone())
}

/// The labelled constants of a switch, for default-edge exclusion facts.
fn switch_consts(targets: &[(Option<Expr>, BlockId)]) -> Vec<Const> {
    targets
        .iter()
        .filter_map(|(v, _)| v.as_ref().and_then(const_of))
        .collect()
}

use crate::hash::FastSet;

/// In-place form of [`dedup`]: keeps the first occurrence of every state, in
/// order, like `dedup`, but without consuming the vector. State sets of zero
/// or one element (the overwhelmingly common case — most statements carry a
/// single checker state) return immediately, and small sets use a linear
/// scan, so the per-statement hash-set allocation of `dedup` is only paid on
/// genuinely wide state sets.
fn dedup_in_place<S: Eq + Hash + Clone>(v: &mut Vec<S>) {
    if v.len() <= 1 {
        return;
    }
    if v.len() <= 8 {
        let mut i = 1;
        while i < v.len() {
            if v[..i].contains(&v[i]) {
                v.remove(i);
            } else {
                i += 1;
            }
        }
        return;
    }
    let mut seen = FastSet::with_capacity_and_hasher(v.len(), Default::default());
    v.retain(|s| seen.insert(s.clone()));
}

fn dedup<S: Eq + Hash + Clone>(v: Vec<S>) -> Vec<S> {
    // Membership is checked before inserting so only the states that are
    // kept get cloned — metal states carry owned strings, and this runs
    // once per block per state set.
    let mut seen = HashSet::with_capacity(v.len());
    v.into_iter()
        .filter(|s| {
            if seen.contains(s) {
                false
            } else {
                seen.insert(s.clone());
                true
            }
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_state_set<M: PathMachine>(
    cfg: &Cfg,
    machine: &mut M,
    init: M::State,
    init_facts: FactSet,
    prune: bool,
    refuted: &mut FastSet<(BlockId, usize)>,
    arena: &mut WitnessArena,
    oracle: Option<&dyn SummaryLookup>,
) {
    // The fact set is part of the visited key: identical checker states
    // with incompatible facts stay distinct (the sound join — merging them
    // would let facts from one path suppress the other). Without pruning
    // every item carries the empty set and this degenerates to the classic
    // `(block, state)` worklist.
    //
    // The witness id rides along *outside* the key: the first witness to
    // reach a `(block, state, facts)` key is the one whose extension gets
    // explored, and later arrivals are dropped with their histories.
    // Sized for the common one-key-per-block shape so the table doesn't
    // rehash while a single-state machine walks a large function.
    let mut visited: FastSet<(BlockId, M::State, FactSet)> =
        FastSet::with_capacity_and_hasher(cfg.blocks.len(), Default::default());
    type Item<S> = (BlockId, S, FactSet, Option<WitnessId>);
    let mut worklist: Vec<Item<M::State>> = vec![(cfg.entry, init, init_facts, None)];
    // Live-state and successor scratch buffers, reused across all items.
    let mut states: Vec<M::State> = Vec::new();
    let mut scratch: Vec<M::State> = Vec::new();
    let mut succ: Vec<M::State> = Vec::new();
    while let Some((block, state, facts, wid)) = worklist.pop() {
        if !visited.insert((block, state.clone(), facts.clone())) {
            continue;
        }
        let mut facts = facts;
        states.clear();
        states.push(state);
        let mut wid = flow_block(
            cfg,
            machine,
            block,
            &mut states,
            &mut scratch,
            prune.then_some(&mut facts),
            arena,
            wid,
            oracle,
        );
        if states.is_empty() {
            continue;
        }
        // Calls inside the terminator's expression run before the branch
        // outcome / case match / return, so their events fire here.
        let term_calls = terminator_calls(&cfg.block(block).term, oracle);
        if !term_calls.is_empty() {
            let (next, next_wid) = fire_calls(
                machine,
                std::mem::take(&mut states),
                &term_calls,
                oracle.expect("term_calls nonempty implies oracle"),
                prune.then_some(&mut facts),
                arena,
                wid,
            );
            states = next;
            wid = next_wid;
            if states.is_empty() {
                continue;
            }
        }
        match &cfg.block(block).term {
            Terminator::Jump(t) => {
                for s in states.drain(..) {
                    worklist.push((*t, s, facts.clone(), wid));
                }
            }
            Terminator::Branch {
                cond,
                then_to,
                else_to,
            } => {
                // The condition is evaluated on every path through this
                // block; its side effects (`n--`, embedded assignments)
                // clobber facts before the branch outcome is assumed.
                if prune && !facts.is_empty() {
                    facts.invalidate_expr(cond);
                }
                let mut arm_facts: [Option<FactSet>; 2] = [None, None];
                for (arm, taken) in [true, false].into_iter().enumerate() {
                    arm_facts[arm] = if !prune {
                        Some(facts.clone())
                    } else {
                        let f = facts.assume(cond, taken);
                        if f.is_none() {
                            refuted.insert((block, arm));
                        }
                        f
                    };
                }
                let arm_wids: [Option<WitnessId>; 2] = [
                    Some(arena.extend(wid, cond.span, StepKind::Branch(true))),
                    Some(arena.extend(wid, cond.span, StepKind::Branch(false))),
                ];
                for s in states.drain(..) {
                    for (arm, &taken) in [true, false].iter().enumerate() {
                        let Some(f) = &arm_facts[arm] else { continue };
                        let target = if taken { then_to } else { else_to };
                        let witness = arena.witness(arm_wids[arm]);
                        succ.clear();
                        machine.step_into(
                            &s,
                            &PathEvent::Branch { cond, taken },
                            &witness,
                            &mut succ,
                        );
                        for ns in succ.drain(..) {
                            worklist.push((*target, ns, f.clone(), arm_wids[arm]));
                        }
                    }
                }
            }
            Terminator::Switch {
                scrutinee,
                targets,
                fallthrough,
            } => {
                // Scrutinee side effects apply before any case is matched.
                if prune && !facts.is_empty() {
                    facts.invalidate_expr(scrutinee);
                }
                let has_default = targets.iter().any(|(v, _)| v.is_none());
                let consts = switch_consts(targets);
                let edge_facts = |value: Option<&Expr>,
                                  arm: usize,
                                  refuted: &mut FastSet<(BlockId, usize)>|
                 -> Option<FactSet> {
                    if !prune {
                        return Some(facts.clone());
                    }
                    match facts.assume_case(scrutinee, value, &consts) {
                        Some(f) => Some(f),
                        None => {
                            refuted.insert((block, arm));
                            None
                        }
                    }
                };
                let case_facts: Vec<Option<FactSet>> = targets
                    .iter()
                    .enumerate()
                    .map(|(arm, (value, _))| edge_facts(value.as_ref(), arm, refuted))
                    .collect();
                let fall_facts = if has_default {
                    None
                } else {
                    edge_facts(None, targets.len(), refuted)
                };
                let case_wids: Vec<Option<WitnessId>> = targets
                    .iter()
                    .map(|(value, _)| {
                        let kind = if value.is_some() {
                            StepKind::Case
                        } else {
                            StepKind::CaseDefault
                        };
                        Some(arena.extend(wid, scrutinee.span, kind))
                    })
                    .collect();
                let fall_wid = Some(arena.extend(wid, scrutinee.span, StepKind::CaseDefault));
                for s in states.drain(..) {
                    for (((value, target), f), cw) in
                        targets.iter().zip(&case_facts).zip(&case_wids)
                    {
                        let Some(f) = f else { continue };
                        let ev = PathEvent::Case {
                            scrutinee,
                            value: value.as_ref(),
                        };
                        let witness = arena.witness(*cw);
                        succ.clear();
                        machine.step_into(&s, &ev, &witness, &mut succ);
                        for ns in succ.drain(..) {
                            worklist.push((*target, ns, f.clone(), *cw));
                        }
                    }
                    if let Some(f) = &fall_facts {
                        let ev = PathEvent::Case {
                            scrutinee,
                            value: None,
                        };
                        let witness = arena.witness(fall_wid);
                        succ.clear();
                        machine.step_into(&s, &ev, &witness, &mut succ);
                        for ns in succ.drain(..) {
                            worklist.push((*fallthrough, ns, f.clone(), fall_wid));
                        }
                    }
                }
            }
            Terminator::Return { value, span } => {
                let ret_wid = Some(arena.extend(wid, *span, StepKind::Return));
                let witness = arena.witness(ret_wid);
                for s in states.drain(..) {
                    // Return ends the path: successor states are discarded.
                    succ.clear();
                    machine.step_into(
                        &s,
                        &PathEvent::Return {
                            value: value.as_ref(),
                            span: *span,
                        },
                        &witness,
                        &mut succ,
                    );
                }
            }
        }
    }
}

/// One entry of the explicit DFS stack in [`run_exhaustive`].
///
/// `Enter` visits a block with the states alive on this path; `Exit` runs
/// after the whole subtree below the block finished and releases its
/// per-path revisit slot. The recursion this replaces overflowed the thread
/// stack on functions whose CFG forms a long block chain (thousands of
/// sequential conditionals); the explicit stack grows on the heap instead.
enum Frame<S> {
    Enter {
        block: BlockId,
        states: Vec<S>,
        facts: FactSet,
        wid: Option<WitnessId>,
    },
    Exit {
        block: BlockId,
    },
}

#[allow(clippy::too_many_arguments)]
fn run_exhaustive<M: PathMachine>(
    cfg: &Cfg,
    machine: &mut M,
    entry: BlockId,
    init: Vec<M::State>,
    init_facts: FactSet,
    prune: bool,
    refuted: &mut FastSet<(BlockId, usize)>,
    back_counts: &mut [u8],
    budget: &mut usize,
    arena: &mut WitnessArena,
    oracle: Option<&dyn SummaryLookup>,
) {
    let mut stack: Vec<Frame<M::State>> = vec![Frame::Enter {
        block: entry,
        states: init,
        facts: init_facts,
        wid: None,
    }];
    // Stepping scratch buffer, reused across every block.
    let mut scratch: Vec<M::State> = Vec::new();
    while let Some(frame) = stack.pop() {
        let (block, states, mut facts, wid) = match frame {
            Frame::Exit { block } => {
                back_counts[block.0] -= 1;
                continue;
            }
            Frame::Enter {
                block,
                states,
                facts,
                wid,
            } => (block, states, facts, wid),
        };
        if *budget == 0 {
            continue;
        }
        // Per-path revisit limit: each block may appear at most twice on one
        // path (enough for a loop body to execute once and be re-examined at
        // the head). The revisit slot is held until this block's `Exit`
        // frame, i.e. exactly while the block is on the current path.
        if back_counts[block.0] >= 2 {
            *budget = budget.saturating_sub(1);
            continue;
        }
        back_counts[block.0] += 1;

        let mut states = states;
        let mut wid = flow_block(
            cfg,
            machine,
            block,
            &mut states,
            &mut scratch,
            prune.then_some(&mut facts),
            arena,
            wid,
            oracle,
        );
        if states.is_empty() {
            back_counts[block.0] -= 1;
            continue;
        }
        // Terminator-expression calls fire before the terminator events,
        // mirroring run_state_set.
        let term_calls = terminator_calls(&cfg.block(block).term, oracle);
        if !term_calls.is_empty() {
            let (next, next_wid) = fire_calls(
                machine,
                states,
                &term_calls,
                oracle.expect("term_calls nonempty implies oracle"),
                prune.then_some(&mut facts),
                arena,
                wid,
            );
            states = next;
            wid = next_wid;
            if states.is_empty() {
                back_counts[block.0] -= 1;
                continue;
            }
        }
        // The `Exit` frame goes below the children so it pops after the
        // whole subtree; children are pushed in reverse so they pop in
        // the original left-to-right order.
        stack.push(Frame::Exit { block });
        match &cfg.block(block).term {
            Terminator::Jump(t) => {
                stack.push(Frame::Enter {
                    block: *t,
                    states,
                    facts,
                    wid,
                });
            }
            Terminator::Branch {
                cond,
                then_to,
                else_to,
            } => {
                // Condition side effects clobber facts on every arm.
                if prune && !facts.is_empty() {
                    facts.invalidate_expr(cond);
                }
                let mut children = Vec::new();
                for (arm, (taken, target)) in [(true, *then_to), (false, *else_to)]
                    .into_iter()
                    .enumerate()
                {
                    let next_facts = if prune {
                        match facts.assume(cond, taken) {
                            Some(f) => f,
                            None => {
                                refuted.insert((block, arm));
                                continue;
                            }
                        }
                    } else {
                        facts.clone()
                    };
                    let arm_wid = Some(arena.extend(wid, cond.span, StepKind::Branch(taken)));
                    let witness = arena.witness(arm_wid);
                    let mut next = Vec::new();
                    for s in &states {
                        next.extend(machine.step(s, &PathEvent::Branch { cond, taken }, &witness));
                    }
                    if !next.is_empty() {
                        children.push(Frame::Enter {
                            block: target,
                            states: dedup(next),
                            facts: next_facts,
                            wid: arm_wid,
                        });
                    }
                }
                stack.extend(children.into_iter().rev());
            }
            Terminator::Switch {
                scrutinee,
                targets,
                fallthrough,
            } => {
                // Scrutinee side effects apply before any case is matched.
                if prune && !facts.is_empty() {
                    facts.invalidate_expr(scrutinee);
                }
                let has_default = targets.iter().any(|(v, _)| v.is_none());
                let consts = switch_consts(targets);
                let mut edges: Vec<(Option<&Expr>, BlockId)> =
                    targets.iter().map(|(v, t)| (v.as_ref(), *t)).collect();
                if !has_default {
                    edges.push((None, *fallthrough));
                }
                let mut children = Vec::new();
                for (arm, (value, target)) in edges.into_iter().enumerate() {
                    let next_facts = if prune {
                        match facts.assume_case(scrutinee, value, &consts) {
                            Some(f) => f,
                            None => {
                                refuted.insert((block, arm));
                                continue;
                            }
                        }
                    } else {
                        facts.clone()
                    };
                    let kind = if value.is_some() {
                        StepKind::Case
                    } else {
                        StepKind::CaseDefault
                    };
                    let case_wid = Some(arena.extend(wid, scrutinee.span, kind));
                    let witness = arena.witness(case_wid);
                    let mut next = Vec::new();
                    for s in &states {
                        next.extend(machine.step(
                            s,
                            &PathEvent::Case { scrutinee, value },
                            &witness,
                        ));
                    }
                    if !next.is_empty() {
                        children.push(Frame::Enter {
                            block: target,
                            states: dedup(next),
                            facts: next_facts,
                            wid: case_wid,
                        });
                    }
                }
                stack.extend(children.into_iter().rev());
            }
            Terminator::Return { value, span } => {
                let ret_wid = Some(arena.extend(wid, *span, StepKind::Return));
                let witness = arena.witness(ret_wid);
                for s in &states {
                    let _ = machine.step(
                        s,
                        &PathEvent::Return {
                            value: value.as_ref(),
                            span: *span,
                        },
                        &witness,
                    );
                }
                *budget = budget.saturating_sub(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Cfg;
    use mc_ast::parse_translation_unit;

    /// A machine that records the callee names it sees, in order per path.
    struct Tracer {
        visits: Vec<String>,
        returns: usize,
    }

    impl PathMachine for Tracer {
        type State = u32; // depth counter, to exercise state forking

        fn step(&mut self, state: &u32, event: &PathEvent<'_>, _: &Witness<'_>) -> Vec<u32> {
            match event {
                PathEvent::Stmt(s) => {
                    if let mc_ast::StmtKind::Expr(e) = &s.kind {
                        if let Some((name, _)) = e.as_call() {
                            self.visits.push(name.to_string());
                        }
                    }
                    vec![*state]
                }
                PathEvent::Return { .. } => {
                    self.returns += 1;
                    vec![]
                }
                _ => vec![*state],
            }
        }
    }

    fn cfg_of(body: &str) -> Cfg {
        let src = format!("void f(void) {{ {body} }}");
        let tu = parse_translation_unit(&src, "t.c").unwrap();
        Cfg::build(tu.function("f").unwrap())
    }

    #[test]
    fn exhaustive_visits_both_arms() {
        let cfg = cfg_of("if (x) { a(); } else { b(); } c();");
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_machine(&cfg, &mut m, 0, Mode::Exhaustive { max_paths: 100 });
        assert_eq!(m.returns, 2);
        assert!(m.visits.contains(&"a".to_string()));
        assert!(m.visits.contains(&"b".to_string()));
        // c() is seen on both paths
        assert_eq!(m.visits.iter().filter(|v| *v == "c").count(), 2);
    }

    #[test]
    fn state_set_merges_join_states() {
        let cfg = cfg_of("if (x) { a(); } else { b(); } c();");
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_machine(&cfg, &mut m, 0, Mode::StateSet);
        // After the join, both paths carry state 0, so c() is seen once.
        assert_eq!(m.visits.iter().filter(|v| *v == "c").count(), 1);
        assert_eq!(m.returns, 1);
    }

    #[test]
    fn loops_terminate_in_both_modes() {
        let cfg = cfg_of("while (x) { a(); } b();");
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_machine(&cfg, &mut m, 0, Mode::StateSet);
        assert!(m.visits.contains(&"a".to_string()));
        let mut m2 = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_machine(&cfg, &mut m2, 0, Mode::Exhaustive { max_paths: 1000 });
        assert!(m2.returns >= 1);
    }

    #[test]
    fn pruning_stops_path() {
        /// Stops at the first call to `stop_here`.
        struct Pruner {
            after: usize,
        }
        impl PathMachine for Pruner {
            type State = ();
            fn step(&mut self, _: &(), event: &PathEvent<'_>, _: &Witness<'_>) -> Vec<()> {
                match event {
                    PathEvent::Stmt(s) => {
                        if let mc_ast::StmtKind::Expr(e) = &s.kind {
                            if let Some(("stop_here", _)) = e.as_call() {
                                return vec![];
                            }
                            if let Some(("after", _)) = e.as_call() {
                                self.after += 1;
                            }
                        }
                        vec![()]
                    }
                    _ => vec![()],
                }
            }
        }
        let cfg = cfg_of("stop_here(); after();");
        let mut m = Pruner { after: 0 };
        run_machine(&cfg, &mut m, (), Mode::StateSet);
        assert_eq!(m.after, 0);
    }

    #[test]
    fn exhaustive_budget_caps_explosion() {
        // 2^20 paths would hang; the budget keeps it bounded.
        let body = "if (a) x(); ".repeat(20) + "z();";
        let cfg = cfg_of(&body);
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_machine(&cfg, &mut m, 0, Mode::Exhaustive { max_paths: 500 });
        assert!(m.returns <= 500);
        assert!(m.returns > 0);
    }

    #[test]
    fn exhaustive_handles_very_long_functions() {
        // A chain of 50k sequential conditionals produces a CFG whose
        // longest path is ~150k blocks. The recursive traversal this
        // replaced overflowed the thread stack here; the explicit stack
        // must walk it to completion.
        let body = "if (c) { a(); } ".repeat(50_000) + "z();";
        let cfg = cfg_of(&body);
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_machine(&cfg, &mut m, 0, Mode::Exhaustive { max_paths: 8 });
        assert!(m.returns >= 1);
        assert!(m.visits.contains(&"z".to_string()));
    }

    #[test]
    fn dedup_clones_only_kept_states() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CLONES: AtomicUsize = AtomicUsize::new(0);
        #[derive(PartialEq, Eq, Hash)]
        struct S(u32);
        impl Clone for S {
            fn clone(&self) -> S {
                CLONES.fetch_add(1, Ordering::Relaxed);
                S(self.0)
            }
        }
        let out = dedup(vec![S(1), S(2), S(1), S(2), S(1)]);
        assert_eq!(out.len(), 2);
        // One clone per *kept* state; duplicates are dropped without cloning.
        assert_eq!(CLONES.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn switch_cases_all_visited() {
        let cfg =
            cfg_of("switch (op) { case 1: a(); break; case 2: b(); break; default: c(); } d();");
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_machine(&cfg, &mut m, 0, Mode::StateSet);
        for callee in ["a", "b", "c", "d"] {
            assert!(m.visits.contains(&callee.to_string()), "missing {callee}");
        }
    }

    #[test]
    fn pruning_drops_correlated_branch_paths() {
        // The canonical paper FP shape: `gMode` cannot be both true and
        // false, so only 2 of the 4 syntactic paths are feasible. Both
        // modes must agree.
        let body = "if (gMode) { a(); } mid(); if (!gMode) { b(); } end();";
        for mode in [Mode::StateSet, Mode::Exhaustive { max_paths: 100 }] {
            let cfg = cfg_of(body);
            let mut m = Tracer {
                visits: vec![],
                returns: 0,
            };
            let stats = run_traversal(&cfg, &mut m, 0, Traversal::new(mode));
            // a-then-b and neither-a-nor-b are infeasible; every feasible
            // path sees exactly one of a/b.
            let a = m.visits.iter().filter(|v| *v == "a").count();
            let b = m.visits.iter().filter(|v| *v == "b").count();
            assert_eq!((a, b), (1, 1), "{mode:?}");
            assert!(stats.refuted_edges >= 2, "{mode:?}: {stats:?}");
            assert!(m.visits.contains(&"end".to_string()));
        }
    }

    #[test]
    fn no_pruning_keeps_all_syntactic_paths() {
        let body = "if (gMode) { a(); } if (!gMode) { b(); } end();";
        let cfg = cfg_of(body);
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        let stats = run_traversal(
            &cfg,
            &mut m,
            0,
            Traversal::without_pruning(Mode::Exhaustive { max_paths: 100 }),
        );
        assert_eq!(m.returns, 4);
        assert_eq!(stats.refuted_edges, 0);
    }

    #[test]
    fn pruning_respects_assignment_between_branches() {
        // The guard is recomputed between the two tests, so no edge may be
        // pruned: all 4 paths are feasible.
        let body = "if (gMode) { a(); } gMode = next(); if (!gMode) { b(); } end();";
        let cfg = cfg_of(body);
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        let stats = run_traversal(
            &cfg,
            &mut m,
            0,
            Traversal::new(Mode::Exhaustive { max_paths: 100 }),
        );
        assert_eq!(m.returns, 4);
        assert_eq!(stats.refuted_edges, 0);
    }

    #[test]
    fn switch_arms_prune_each_other() {
        // Inside `case 1:` a nested test of the same scrutinee against a
        // different label is infeasible.
        let body =
            "switch (op) { case 1: if (op == 2) { dead(); } a(); break; default: d(); } end();";
        let cfg = cfg_of(body);
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_traversal(&cfg, &mut m, 0, Traversal::new(Mode::StateSet));
        assert!(!m.visits.contains(&"dead".to_string()));
        assert!(m.visits.contains(&"a".to_string()));
        assert!(m.visits.contains(&"d".to_string()));
    }

    #[test]
    fn state_set_keeps_incompatible_facts_distinct() {
        // After the first branch the checker state is identical on both
        // arms, but the fact sets differ; a naive merge would then explore
        // the second branch once and miss that each arm is forced. The
        // tracer's return count proves both fact variants survived: exactly
        // the 2 feasible paths return.
        let body = "if (gMode) { a(); } else { b(); } mid(); if (gMode) { c(); } else { d(); }";
        let cfg = cfg_of(body);
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_traversal(&cfg, &mut m, 0, Traversal::new(Mode::StateSet));
        assert!(m.visits.contains(&"c".to_string()));
        assert!(m.visits.contains(&"d".to_string()));
        // mid() is seen twice: the two fact sets do not merge.
        assert_eq!(m.visits.iter().filter(|v| *v == "mid").count(), 2);
    }

    #[test]
    fn condition_side_effects_invalidate_facts() {
        // `n--` in the loop condition rewrites `n`, so the later `n != 3`
        // test must not be refuted by the stale `n == 3` fact. Both modes.
        let body = "if (n == 3) { while (n--) { a(); } if (n != 3) { b(); } } end();";
        for mode in [Mode::StateSet, Mode::Exhaustive { max_paths: 100 }] {
            let cfg = cfg_of(body);
            let mut m = Tracer {
                visits: vec![],
                returns: 0,
            };
            let stats = run_traversal(&cfg, &mut m, 0, Traversal::new(mode));
            assert!(m.visits.contains(&"b".to_string()), "{mode:?}");
            assert_eq!(stats.refuted_edges, 0, "{mode:?}");
        }
    }

    #[test]
    fn switch_scrutinee_side_effects_invalidate_facts() {
        // `op++` in the scrutinee clobbers the `op == 1` fact, so the later
        // `op != 1` test stays feasible.
        let body = "if (op == 1) { switch (op++) { case 2: a(); break; default: d(); } \
                    if (op != 1) { b(); } } end();";
        for mode in [Mode::StateSet, Mode::Exhaustive { max_paths: 100 }] {
            let cfg = cfg_of(body);
            let mut m = Tracer {
                visits: vec![],
                returns: 0,
            };
            let stats = run_traversal(&cfg, &mut m, 0, Traversal::new(mode));
            assert!(m.visits.contains(&"b".to_string()), "{mode:?}");
            assert_eq!(stats.refuted_edges, 0, "{mode:?}");
        }
    }

    #[test]
    fn aliased_store_invalidates_facts() {
        // The escape of `&gMode` happens in a sibling branch, before the
        // fact is established; the `*p = …` store must still clobber it.
        let body = "if (c) { p = &gMode; } if (gMode) { a(); } *p = next(); \
                    if (!gMode) { b(); } end();";
        for mode in [Mode::StateSet, Mode::Exhaustive { max_paths: 100 }] {
            let cfg = cfg_of(body);
            let mut m = Tracer {
                visits: vec![],
                returns: 0,
            };
            let stats = run_traversal(&cfg, &mut m, 0, Traversal::new(mode));
            assert!(m.visits.contains(&"a".to_string()), "{mode:?}");
            assert!(m.visits.contains(&"b".to_string()), "{mode:?}");
            assert_eq!(stats.refuted_edges, 0, "{mode:?}");
        }
    }

    #[test]
    fn feasibility_stats_counts_refutable_edges() {
        let cfg = cfg_of("if (gMode) { a(); } if (!gMode) { b(); } end();");
        assert_eq!(feasibility_stats(&cfg).refuted_edges, 2);
        let cfg = cfg_of("if (gOpClass & 1) { a(); } end();");
        assert_eq!(feasibility_stats(&cfg).refuted_edges, 0);
    }

    #[test]
    fn run_machine_never_prunes() {
        let cfg = cfg_of("if (gMode) { a(); } if (!gMode) { b(); } end();");
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_machine(&cfg, &mut m, 0, Mode::Exhaustive { max_paths: 100 });
        assert_eq!(m.returns, 4);
    }

    #[test]
    fn branch_events_expose_conditions() {
        struct CondSpy {
            conds: Vec<(String, bool)>,
        }
        impl PathMachine for CondSpy {
            type State = ();
            fn step(&mut self, _: &(), event: &PathEvent<'_>, _: &Witness<'_>) -> Vec<()> {
                if let PathEvent::Branch { cond, taken } = event {
                    self.conds.push((mc_ast::print_expr(cond), *taken));
                }
                vec![()]
            }
        }
        let cfg = cfg_of("if (x > 1) a();");
        let mut m = CondSpy { conds: vec![] };
        run_machine(&cfg, &mut m, (), Mode::StateSet);
        assert!(m.conds.contains(&("x > 1".to_string(), true)));
        assert!(m.conds.contains(&("x > 1".to_string(), false)));
    }
}
