//! Path-sensitive execution of checker state machines over a CFG.
//!
//! This is the engine behind "metal programs ... are applied down every path
//! in each function". A checker implements [`PathMachine`]: given a state
//! and a [`PathEvent`] it returns the successor states (possibly several —
//! metal patterns may fork — or none, which prunes the path, as the `stop`
//! state does).
//!
//! Two traversal [`Mode`]s are provided:
//!
//! * [`Mode::Exhaustive`] — literally walk every path (bounded by a path
//!   budget and by taking each back edge at most once per path). This is
//!   what the paper describes.
//! * [`Mode::StateSet`] — a worklist over `(block, state)` pairs that merges
//!   identical checker states at join points. For a finite-state checker
//!   this reports exactly the same violations in polynomial time; the
//!   `scaling` benchmark quantifies the difference.

use crate::build::{BlockId, Cfg, Terminator};
use mc_ast::{Expr, Span, Stmt};
use std::collections::HashSet;
use std::hash::Hash;

/// An observable event along an execution path.
#[derive(Debug, Clone, Copy)]
pub enum PathEvent<'a> {
    /// An atomic statement (expression statement or declaration).
    Stmt(&'a Stmt),
    /// A conditional branch on `cond`; `taken` tells which arm this path
    /// follows.
    Branch {
        /// The branch condition.
        cond: &'a Expr,
        /// `true` on the then-edge, `false` on the else-edge.
        taken: bool,
    },
    /// Entry into a switch arm.
    Case {
        /// The switched expression.
        scrutinee: &'a Expr,
        /// The case label value (`None` for `default` or for the implicit
        /// no-match fallthrough edge).
        value: Option<&'a Expr>,
    },
    /// Function exit via `return` (or the implicit end-of-body return).
    Return {
        /// Returned value, if any.
        value: Option<&'a Expr>,
        /// Location of the return.
        span: Span,
    },
}

/// A path-sensitive state machine to run over a CFG.
pub trait PathMachine {
    /// Checker state. Must be finite-ish and hashable so the state-set mode
    /// can merge; metal SM states are.
    type State: Clone + Eq + Hash;

    /// Consumes one event in `state`; returns successor states. Returning
    /// an empty vector prunes this path (metal's `stop` state). Returning
    /// more than one state forks the path analysis.
    ///
    /// Side effects (error reports) are recorded on `&mut self`.
    fn step(&mut self, state: &Self::State, event: &PathEvent<'_>) -> Vec<Self::State>;
}

/// Traversal strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Merge identical states at join points (polynomial, default).
    StateSet,
    /// Walk each path separately, visiting each back edge at most once per
    /// path and exploring at most the given number of paths.
    Exhaustive {
        /// Upper bound on explored paths; exploration stops silently when
        /// the budget is exhausted (matching xg++'s bounded analysis).
        max_paths: usize,
    },
}

/// Runs `machine` over `cfg` starting from `init` in the given mode.
pub fn run_machine<M: PathMachine>(cfg: &Cfg, machine: &mut M, init: M::State, mode: Mode) {
    match mode {
        Mode::StateSet => run_state_set(cfg, machine, init),
        Mode::Exhaustive { max_paths } => {
            let mut budget = max_paths;
            let mut back_counts = vec![0u8; cfg.blocks.len()];
            run_exhaustive(
                cfg,
                machine,
                cfg.entry,
                vec![init],
                &mut back_counts,
                &mut budget,
            );
        }
    }
}

/// Feeds the events of one block to the machine, expanding the state set.
/// Returns the states alive at the terminator.
fn flow_block<M: PathMachine>(
    cfg: &Cfg,
    machine: &mut M,
    block: BlockId,
    states: Vec<M::State>,
) -> Vec<M::State> {
    let mut states = states;
    for node in &cfg.block(block).nodes {
        let mut next = Vec::new();
        for s in &states {
            next.extend(machine.step(s, &PathEvent::Stmt(&node.stmt)));
        }
        states = dedup(next);
        if states.is_empty() {
            break;
        }
    }
    states
}

fn dedup<S: Eq + Hash + Clone>(v: Vec<S>) -> Vec<S> {
    // Membership is checked before inserting so only the states that are
    // kept get cloned — metal states carry owned strings, and this runs
    // once per block per state set.
    let mut seen = HashSet::with_capacity(v.len());
    v.into_iter()
        .filter(|s| {
            if seen.contains(s) {
                false
            } else {
                seen.insert(s.clone());
                true
            }
        })
        .collect()
}

fn run_state_set<M: PathMachine>(cfg: &Cfg, machine: &mut M, init: M::State) {
    let mut visited: HashSet<(BlockId, M::State)> = HashSet::new();
    let mut worklist: Vec<(BlockId, M::State)> = vec![(cfg.entry, init)];
    while let Some((block, state)) = worklist.pop() {
        if !visited.insert((block, state.clone())) {
            continue;
        }
        let states = flow_block(cfg, machine, block, vec![state]);
        if states.is_empty() {
            continue;
        }
        match &cfg.block(block).term {
            Terminator::Jump(t) => {
                for s in states {
                    worklist.push((*t, s));
                }
            }
            Terminator::Branch {
                cond,
                then_to,
                else_to,
            } => {
                for s in states {
                    for ns in machine.step(&s, &PathEvent::Branch { cond, taken: true }) {
                        worklist.push((*then_to, ns));
                    }
                    for ns in machine.step(&s, &PathEvent::Branch { cond, taken: false }) {
                        worklist.push((*else_to, ns));
                    }
                }
            }
            Terminator::Switch {
                scrutinee,
                targets,
                fallthrough,
            } => {
                let has_default = targets.iter().any(|(v, _)| v.is_none());
                for s in states {
                    for (value, target) in targets {
                        let ev = PathEvent::Case {
                            scrutinee,
                            value: value.as_ref(),
                        };
                        for ns in machine.step(&s, &ev) {
                            worklist.push((*target, ns));
                        }
                    }
                    if !has_default {
                        let ev = PathEvent::Case {
                            scrutinee,
                            value: None,
                        };
                        for ns in machine.step(&s, &ev) {
                            worklist.push((*fallthrough, ns));
                        }
                    }
                }
            }
            Terminator::Return { value, span } => {
                for s in states {
                    let _ = machine.step(
                        &s,
                        &PathEvent::Return {
                            value: value.as_ref(),
                            span: *span,
                        },
                    );
                }
            }
        }
    }
}

/// One entry of the explicit DFS stack in [`run_exhaustive`].
///
/// `Enter` visits a block with the states alive on this path; `Exit` runs
/// after the whole subtree below the block finished and releases its
/// per-path revisit slot. The recursion this replaces overflowed the thread
/// stack on functions whose CFG forms a long block chain (thousands of
/// sequential conditionals); the explicit stack grows on the heap instead.
enum Frame<S> {
    Enter { block: BlockId, states: Vec<S> },
    Exit { block: BlockId },
}

fn run_exhaustive<M: PathMachine>(
    cfg: &Cfg,
    machine: &mut M,
    entry: BlockId,
    init: Vec<M::State>,
    back_counts: &mut [u8],
    budget: &mut usize,
) {
    let mut stack: Vec<Frame<M::State>> = vec![Frame::Enter {
        block: entry,
        states: init,
    }];
    while let Some(frame) = stack.pop() {
        let (block, states) = match frame {
            Frame::Exit { block } => {
                back_counts[block.0] -= 1;
                continue;
            }
            Frame::Enter { block, states } => (block, states),
        };
        if *budget == 0 {
            continue;
        }
        // Per-path revisit limit: each block may appear at most twice on one
        // path (enough for a loop body to execute once and be re-examined at
        // the head). The revisit slot is held until this block's `Exit`
        // frame, i.e. exactly while the block is on the current path.
        if back_counts[block.0] >= 2 {
            *budget = budget.saturating_sub(1);
            continue;
        }
        back_counts[block.0] += 1;

        let states = flow_block(cfg, machine, block, states);
        if states.is_empty() {
            back_counts[block.0] -= 1;
            continue;
        }
        // The `Exit` frame goes below the children so it pops after the
        // whole subtree; children are pushed in reverse so they pop in
        // the original left-to-right order.
        stack.push(Frame::Exit { block });
        match &cfg.block(block).term {
            Terminator::Jump(t) => {
                stack.push(Frame::Enter { block: *t, states });
            }
            Terminator::Branch {
                cond,
                then_to,
                else_to,
            } => {
                let mut then_states = Vec::new();
                let mut else_states = Vec::new();
                for s in &states {
                    then_states.extend(machine.step(s, &PathEvent::Branch { cond, taken: true }));
                    else_states.extend(machine.step(s, &PathEvent::Branch { cond, taken: false }));
                }
                if !else_states.is_empty() {
                    stack.push(Frame::Enter {
                        block: *else_to,
                        states: dedup(else_states),
                    });
                }
                if !then_states.is_empty() {
                    stack.push(Frame::Enter {
                        block: *then_to,
                        states: dedup(then_states),
                    });
                }
            }
            Terminator::Switch {
                scrutinee,
                targets,
                fallthrough,
            } => {
                let has_default = targets.iter().any(|(v, _)| v.is_none());
                let mut children = Vec::new();
                for (value, target) in targets {
                    let mut next = Vec::new();
                    for s in &states {
                        next.extend(machine.step(
                            s,
                            &PathEvent::Case {
                                scrutinee,
                                value: value.as_ref(),
                            },
                        ));
                    }
                    if !next.is_empty() {
                        children.push(Frame::Enter {
                            block: *target,
                            states: dedup(next),
                        });
                    }
                }
                if !has_default {
                    let mut next = Vec::new();
                    for s in &states {
                        next.extend(machine.step(
                            s,
                            &PathEvent::Case {
                                scrutinee,
                                value: None,
                            },
                        ));
                    }
                    if !next.is_empty() {
                        children.push(Frame::Enter {
                            block: *fallthrough,
                            states: dedup(next),
                        });
                    }
                }
                stack.extend(children.into_iter().rev());
            }
            Terminator::Return { value, span } => {
                for s in &states {
                    let _ = machine.step(
                        s,
                        &PathEvent::Return {
                            value: value.as_ref(),
                            span: *span,
                        },
                    );
                }
                *budget = budget.saturating_sub(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Cfg;
    use mc_ast::parse_translation_unit;

    /// A machine that records the callee names it sees, in order per path.
    struct Tracer {
        visits: Vec<String>,
        returns: usize,
    }

    impl PathMachine for Tracer {
        type State = u32; // depth counter, to exercise state forking

        fn step(&mut self, state: &u32, event: &PathEvent<'_>) -> Vec<u32> {
            match event {
                PathEvent::Stmt(s) => {
                    if let mc_ast::StmtKind::Expr(e) = &s.kind {
                        if let Some((name, _)) = e.as_call() {
                            self.visits.push(name.to_string());
                        }
                    }
                    vec![*state]
                }
                PathEvent::Return { .. } => {
                    self.returns += 1;
                    vec![]
                }
                _ => vec![*state],
            }
        }
    }

    fn cfg_of(body: &str) -> Cfg {
        let src = format!("void f(void) {{ {body} }}");
        let tu = parse_translation_unit(&src, "t.c").unwrap();
        Cfg::build(tu.function("f").unwrap())
    }

    #[test]
    fn exhaustive_visits_both_arms() {
        let cfg = cfg_of("if (x) { a(); } else { b(); } c();");
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_machine(&cfg, &mut m, 0, Mode::Exhaustive { max_paths: 100 });
        assert_eq!(m.returns, 2);
        assert!(m.visits.contains(&"a".to_string()));
        assert!(m.visits.contains(&"b".to_string()));
        // c() is seen on both paths
        assert_eq!(m.visits.iter().filter(|v| *v == "c").count(), 2);
    }

    #[test]
    fn state_set_merges_join_states() {
        let cfg = cfg_of("if (x) { a(); } else { b(); } c();");
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_machine(&cfg, &mut m, 0, Mode::StateSet);
        // After the join, both paths carry state 0, so c() is seen once.
        assert_eq!(m.visits.iter().filter(|v| *v == "c").count(), 1);
        assert_eq!(m.returns, 1);
    }

    #[test]
    fn loops_terminate_in_both_modes() {
        let cfg = cfg_of("while (x) { a(); } b();");
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_machine(&cfg, &mut m, 0, Mode::StateSet);
        assert!(m.visits.contains(&"a".to_string()));
        let mut m2 = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_machine(&cfg, &mut m2, 0, Mode::Exhaustive { max_paths: 1000 });
        assert!(m2.returns >= 1);
    }

    #[test]
    fn pruning_stops_path() {
        /// Stops at the first call to `stop_here`.
        struct Pruner {
            after: usize,
        }
        impl PathMachine for Pruner {
            type State = ();
            fn step(&mut self, _: &(), event: &PathEvent<'_>) -> Vec<()> {
                match event {
                    PathEvent::Stmt(s) => {
                        if let mc_ast::StmtKind::Expr(e) = &s.kind {
                            if let Some(("stop_here", _)) = e.as_call() {
                                return vec![];
                            }
                            if let Some(("after", _)) = e.as_call() {
                                self.after += 1;
                            }
                        }
                        vec![()]
                    }
                    _ => vec![()],
                }
            }
        }
        let cfg = cfg_of("stop_here(); after();");
        let mut m = Pruner { after: 0 };
        run_machine(&cfg, &mut m, (), Mode::StateSet);
        assert_eq!(m.after, 0);
    }

    #[test]
    fn exhaustive_budget_caps_explosion() {
        // 2^20 paths would hang; the budget keeps it bounded.
        let body = "if (a) x(); ".repeat(20) + "z();";
        let cfg = cfg_of(&body);
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_machine(&cfg, &mut m, 0, Mode::Exhaustive { max_paths: 500 });
        assert!(m.returns <= 500);
        assert!(m.returns > 0);
    }

    #[test]
    fn exhaustive_handles_very_long_functions() {
        // A chain of 50k sequential conditionals produces a CFG whose
        // longest path is ~150k blocks. The recursive traversal this
        // replaced overflowed the thread stack here; the explicit stack
        // must walk it to completion.
        let body = "if (c) { a(); } ".repeat(50_000) + "z();";
        let cfg = cfg_of(&body);
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_machine(&cfg, &mut m, 0, Mode::Exhaustive { max_paths: 8 });
        assert!(m.returns >= 1);
        assert!(m.visits.contains(&"z".to_string()));
    }

    #[test]
    fn dedup_clones_only_kept_states() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CLONES: AtomicUsize = AtomicUsize::new(0);
        #[derive(PartialEq, Eq, Hash)]
        struct S(u32);
        impl Clone for S {
            fn clone(&self) -> S {
                CLONES.fetch_add(1, Ordering::Relaxed);
                S(self.0)
            }
        }
        let out = dedup(vec![S(1), S(2), S(1), S(2), S(1)]);
        assert_eq!(out.len(), 2);
        // One clone per *kept* state; duplicates are dropped without cloning.
        assert_eq!(CLONES.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn switch_cases_all_visited() {
        let cfg =
            cfg_of("switch (op) { case 1: a(); break; case 2: b(); break; default: c(); } d();");
        let mut m = Tracer {
            visits: vec![],
            returns: 0,
        };
        run_machine(&cfg, &mut m, 0, Mode::StateSet);
        for callee in ["a", "b", "c", "d"] {
            assert!(m.visits.contains(&callee.to_string()), "missing {callee}");
        }
    }

    #[test]
    fn branch_events_expose_conditions() {
        struct CondSpy {
            conds: Vec<(String, bool)>,
        }
        impl PathMachine for CondSpy {
            type State = ();
            fn step(&mut self, _: &(), event: &PathEvent<'_>) -> Vec<()> {
                if let PathEvent::Branch { cond, taken } = event {
                    self.conds.push((mc_ast::print_expr(cond), *taken));
                }
                vec![()]
            }
        }
        let cfg = cfg_of("if (x > 1) a();");
        let mut m = CondSpy { conds: vec![] };
        run_machine(&cfg, &mut m, (), Mode::StateSet);
        assert!(m.conds.contains(&("x > 1".to_string(), true)));
        assert!(m.conds.contains(&("x > 1".to_string(), false)));
    }
}
