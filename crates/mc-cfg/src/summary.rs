//! Per-function summaries: what a call can do to checker state.
//!
//! xg++ handled the one inter-procedural check (lane counting) with a
//! bespoke emit-and-link pass; every other checker treated calls as opaque.
//! This module generalizes that machinery into a reusable summary
//! abstraction:
//!
//! * [`FnSummary`] — everything the framework knows about calling one
//!   function: the state transitions it can trigger in each checker state
//!   machine (`transfers`), the per-key counter contributions it makes
//!   along its worst path (`counters`, with back `traces`), the global
//!   facts it may clobber (`clobbers`), and any cycle warnings found while
//!   summarizing it.
//! * [`summarize_counts`] — the §7 counter analysis over one function's
//!   CFG, resolving callees through a [`Resolved`] lookup instead of
//!   recursing itself. The driver computes summaries bottom-up over the
//!   call graph, so callee summaries exist by the time a caller is
//!   summarized; members of a call-graph cycle see each other as
//!   [`Resolved::Recursive`] and inherit the paper's fixed-point rule:
//!   count-free cycles are ignored, cycles with counts warn.
//! * [`SummaryLookup`] — the oracle the traversal engine consults at call
//!   sites (see [`crate::run_traversal_with`]); a hit fires a
//!   [`crate::PathEvent::Call`] so path machines can apply the callee's
//!   transfers instead of stepping over the call blindly.

use crate::build::Cfg;
use crate::witness::PathStep;
use mc_ast::{Expr, ExprKind, Function, Initializer, Span, Stmt, StmtKind};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// A warning produced during summarization when a cycle contributes counts
/// (the paper: "If there were sends, then it warns of a possible error").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleWarning {
    /// Function at which the cycle was detected.
    pub function: String,
    /// Keys whose counts occur inside the cycle.
    pub keys: Vec<String>,
    /// Human-readable description of the cycle.
    pub description: String,
}

/// The summary of one function: everything a checker may assume about a
/// call to it without looking at its body.
///
/// Summaries are computed bottom-up over the call graph by the driver's
/// summary engine, cached per call-graph component, and applied at call
/// sites by the traversal engine ([`crate::run_traversal_with`]) and by
/// whole-program passes (the lane checker reads `counters` directly).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FnSummary {
    /// Function name (the link key).
    pub function: String,
    /// Defining file.
    pub file: String,
    /// Names this function's body calls, sorted and deduplicated.
    pub calls: Vec<String>,
    /// Per key: the maximum summed count along any inter-procedural path
    /// through this function (e.g. `"lane2" -> 1`: one send on lane 2).
    pub counters: BTreeMap<String, i64>,
    /// Per key: the back trace for the maximizing path, as structured
    /// steps (one per contributing event or call). Steps carry their own
    /// file, so a caller splicing a callee's trace into a diagnostic keeps
    /// every location exact.
    pub traces: BTreeMap<String, Vec<PathStep>>,
    /// Per checker state machine (outer key is the machine name): for each
    /// start state name, the sorted set of state names the machine can be
    /// in when the callee returns. A missing machine or state entry means
    /// the callee is opaque to that machine in that state (the call leaves
    /// the state unchanged); a present-but-*empty* end set means every
    /// path through the callee stops the machine, pruning the caller path.
    pub transfers: BTreeMap<String, BTreeMap<String, Vec<String>>>,
    /// Feasibility-fact keys (globals and their member chains) the callee
    /// may write, sorted. Applied by the traversal engine to drop stale
    /// facts at call sites.
    pub clobbers: Vec<String>,
    /// Cycle warnings found while summarizing this function's counters.
    pub warnings: Vec<CycleWarning>,
}

/// What a callee name resolves to while summarizing a caller.
#[derive(Debug, Clone, Copy)]
pub enum Resolved<'a> {
    /// The callee's summary was already computed (it is "below" the caller
    /// in bottom-up order).
    Summary(&'a FnSummary),
    /// The callee is defined but not summarized yet: it is in the same
    /// call-graph cycle as the caller. The fixed-point rule applies.
    Recursive,
    /// No definition is known (library macro, external routine). Mirrors
    /// xg++, which could only see code it compiled: contributes nothing.
    Unknown,
}

/// The oracle the traversal engine consults at call sites.
///
/// Returning `Some` fires a [`crate::PathEvent::Call`] carrying the
/// summary; returning `None` leaves the call opaque (no event at all), so
/// an engine run without an oracle behaves exactly as before summaries
/// existed.
pub trait SummaryLookup {
    /// The summary of `callee`, if one is known.
    fn lookup(&self, callee: &str) -> Option<&FnSummary>;
}

/// The counter half of one function's summary, as returned by
/// [`summarize_counts`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CountSummary {
    /// Per key: maximum summed count along any path (callee maxima
    /// included).
    pub counters: BTreeMap<String, i64>,
    /// Per key: back trace for the maximizing path, as structured steps.
    pub traces: BTreeMap<String, Vec<PathStep>>,
    /// Cycles with counts found in this function (in-function loops and
    /// recursion through this function).
    pub warnings: Vec<CycleWarning>,
}

/// One event observed while scanning a block's expressions in evaluation
/// order.
enum CountEvent {
    /// `annotate` matched: `amount` is added to `key`'s per-path total.
    Count {
        key: String,
        amount: i64,
        span: Span,
    },
    /// A call expression (collected automatically when `annotate` declined
    /// the expression).
    Call { callee: String, span: Span },
}

/// Computes the per-key maximum path counts of one function (the §7 lane
/// analysis, generalized).
///
/// `annotate` is the client hook: it is offered every expression of the
/// function (post-order, in block order) and may return a `(key, amount)`
/// contribution — e.g. "one send on lane 2". Calls are handled
/// automatically: `resolve` maps each callee name to its already-computed
/// summary ([`Resolved::Summary`], whose `counters` are added where the
/// call occurs, chaining its `traces` into the back trace), to
/// [`Resolved::Recursive`] (same call-graph cycle — the fixed-point rule:
/// ignored if this function is count-free, warned about otherwise), or to
/// [`Resolved::Unknown`] (contributes nothing).
///
/// Branches take the maximum over arms, not the sum; in-function cycles
/// follow the same fixed-point rule as recursion, with the cycle body
/// counted once.
pub fn summarize_counts<'s>(
    file: &str,
    cfg: &Cfg,
    annotate: &mut dyn FnMut(&Expr) -> Option<(String, i64)>,
    resolve: &dyn Fn(&str) -> Resolved<'s>,
) -> CountSummary {
    let n = cfg.blocks.len();
    let adj = block_adjacency(cfg);
    let mut weight: Vec<BTreeMap<String, i64>> = vec![BTreeMap::new(); n];
    let mut block_trace: Vec<BTreeMap<String, Vec<PathStep>>> = vec![BTreeMap::new(); n];
    let mut recursive_callees: Vec<String> = Vec::new();

    for (bi, block) in cfg.blocks.iter().enumerate() {
        let mut events: Vec<CountEvent> = Vec::new();
        for_each_block_expr(block, &mut |e| {
            collect_count_events(e, annotate, &mut events)
        });
        for ev in events {
            match ev {
                CountEvent::Count { key, amount, span } => {
                    *weight[bi].entry(key.clone()).or_insert(0) += amount;
                    let step = PathStep {
                        file: file.to_string(),
                        span,
                        note: format!("{key} in {}", cfg.name),
                    };
                    block_trace[bi].entry(key).or_default().push(step);
                }
                CountEvent::Call { callee, span } => match resolve(&callee) {
                    Resolved::Recursive => recursive_callees.push(callee),
                    Resolved::Unknown => {}
                    Resolved::Summary(sub) => {
                        for (key, amount) in &sub.counters {
                            if *amount != 0 {
                                *weight[bi].entry(key.clone()).or_insert(0) += amount;
                                let t = block_trace[bi].entry(key.clone()).or_default();
                                t.push(PathStep {
                                    file: file.to_string(),
                                    span,
                                    note: format!("call `{callee}` from {}", cfg.name),
                                });
                                // Splice the callee's own maximizing trace
                                // in after the call step: the diagnostic
                                // path reads straight down the call chain.
                                if let Some(sub_t) = sub.traces.get(key) {
                                    t.extend(sub_t.iter().cloned());
                                }
                            }
                        }
                    }
                },
            }
        }
    }

    // In-function cycles: a block inside a non-trivial SCC whose weight is
    // non-zero is a cycle with progress.
    let sccs = tarjan_sccs(&adj);
    let mut cyclic_keys: Vec<String> = Vec::new();
    for scc in &sccs {
        let non_trivial = scc.len() > 1 || adj[scc[0]].contains(&scc[0]);
        if !non_trivial {
            continue;
        }
        for &b in scc {
            for (key, amount) in &weight[b] {
                if *amount > 0 {
                    cyclic_keys.push(key.clone());
                }
            }
        }
    }
    if !recursive_callees.is_empty() {
        // Recursion whose body contains counts is also progress.
        let has_counts = weight.iter().any(|w| w.values().any(|v| *v > 0));
        if has_counts {
            cyclic_keys.push("<recursion>".to_string());
        }
    }
    let mut warnings = Vec::new();
    if !cyclic_keys.is_empty() {
        cyclic_keys.sort();
        cyclic_keys.dedup();
        warnings.push(CycleWarning {
            function: cfg.name.clone(),
            keys: cyclic_keys,
            description: format!(
                "cycle with side effects in `{}`: counts inside a loop or recursion \
                 cannot be bounded statically",
                cfg.name
            ),
        });
    }

    // Longest-path DP per key over the back-edge-free DAG.
    let order = topo_order(&adj, cfg.entry.0);
    let keys: HashSet<String> = weight.iter().flat_map(|w| w.keys().cloned()).collect();
    let mut out = CountSummary {
        warnings,
        ..CountSummary::default()
    };
    for key in keys {
        let mut best: Vec<i64> = vec![i64::MIN; n];
        let mut choice: Vec<Option<usize>> = vec![None; n];
        // Process in reverse topological order (successors first).
        for &b in order.iter().rev() {
            let own = weight[b].get(&key).copied().unwrap_or(0);
            let mut m = 0i64;
            let mut ch = None;
            for &s in &adj[b] {
                if best[s] != i64::MIN && best[s] > m {
                    m = best[s];
                    ch = Some(s);
                }
            }
            best[b] = own + m;
            choice[b] = ch;
        }
        let total = if best[cfg.entry.0] == i64::MIN {
            0
        } else {
            best[cfg.entry.0]
        };
        // Build the trace along the chosen chain.
        let mut trace = Vec::new();
        let mut cur = Some(cfg.entry.0);
        while let Some(b) = cur {
            if let Some(t) = block_trace[b].get(&key) {
                trace.extend(t.iter().cloned());
            }
            cur = choice[b];
        }
        out.counters.insert(key.clone(), total);
        out.traces.insert(key, trace);
    }
    out
}

/// Successor indices of every block.
fn block_adjacency(cfg: &Cfg) -> Vec<Vec<usize>> {
    cfg.blocks
        .iter()
        .map(|b| b.term.successors().into_iter().map(|s| s.0).collect())
        .collect()
}

/// Offers every expression of `block` — statements first, then the
/// terminator's expression — to `f`, in evaluation order.
fn for_each_block_expr(block: &crate::build::Block, f: &mut dyn FnMut(&Expr)) {
    use crate::build::Terminator;
    for node in &block.nodes {
        match &node.stmt.kind {
            StmtKind::Expr(e) => f(e),
            StmtKind::Decl(d) => {
                if let Some(Initializer::Expr(e)) = &d.init {
                    f(e);
                }
            }
            _ => {}
        }
    }
    match &block.term {
        Terminator::Branch { cond, .. } => f(cond),
        Terminator::Switch { scrutinee, .. } => f(scrutinee),
        Terminator::Return { value: Some(v), .. } => f(v),
        _ => {}
    }
}

/// Walks `e` post-order, recording client count events and call events.
fn collect_count_events(
    e: &Expr,
    annotate: &mut dyn FnMut(&Expr) -> Option<(String, i64)>,
    out: &mut Vec<CountEvent>,
) {
    for_each_child(e, &mut |c| collect_count_events(c, annotate, out));
    if let Some((key, amount)) = annotate(e) {
        out.push(CountEvent::Count {
            key,
            amount,
            span: e.span,
        });
    } else if let Some((name, _)) = e.as_call() {
        out.push(CountEvent::Call {
            callee: name.to_string(),
            span: e.span,
        });
    }
}

/// Visits the direct sub-expressions of `e` in evaluation order.
fn for_each_child<'a>(e: &'a Expr, f: &mut dyn FnMut(&'a Expr)) {
    match &e.kind {
        ExprKind::Call { callee, args } => {
            f(callee);
            for a in args {
                f(a);
            }
        }
        ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => f(operand),
        ExprKind::Ternary { cond, then, els } => {
            f(cond);
            f(then);
            f(els);
        }
        ExprKind::Index { base, index } => {
            f(base);
            f(index);
        }
        ExprKind::Member { base, .. } => f(base),
        ExprKind::Cast { expr, .. } => f(expr),
        ExprKind::Comma(a, b) => {
            f(a);
            f(b);
        }
        _ => {}
    }
}

/// Collects `(callee, span)` for every call in `e`, post-order (arguments
/// before the call itself — the order the callee bodies actually run).
pub(crate) fn calls_in_expr<'a>(e: &'a Expr, out: &mut Vec<(&'a str, Span)>) {
    for_each_child(e, &mut |c| calls_in_expr(c, out));
    if let Some((name, _)) = e.as_call() {
        out.push((name, e.span));
    }
}

/// Collects the calls of one atomic statement in evaluation order.
pub(crate) fn calls_in_stmt<'a>(stmt: &'a Stmt, out: &mut Vec<(&'a str, Span)>) {
    match &stmt.kind {
        StmtKind::Expr(e) => calls_in_expr(e, out),
        StmtKind::Decl(d) => {
            if let Some(Initializer::Expr(e)) = &d.init {
                calls_in_expr(e, out);
            }
        }
        _ => {}
    }
}

/// Sorted, deduplicated callee names of a whole function.
pub fn collect_calls(func: &Function) -> Vec<String> {
    struct Calls(BTreeSet<String>);
    impl mc_ast::Visitor for Calls {
        fn visit_expr(&mut self, e: &Expr) {
            if let Some((name, _)) = e.as_call() {
                self.0.insert(name.to_string());
            }
        }
    }
    let mut v = Calls(BTreeSet::new());
    mc_ast::walk_function(&mut v, func);
    v.0.into_iter().collect()
}

/// The feasibility-fact keys `func` may write through non-local lvalues:
/// assignments and increments whose target's root variable is neither a
/// parameter nor a local declaration. Sorted and deduplicated — the
/// `clobbers` field of the function's summary.
pub fn collect_clobbers(func: &Function) -> Vec<String> {
    struct Scan {
        locals: HashSet<String>,
        writes: BTreeSet<String>,
    }
    impl mc_ast::Visitor for Scan {
        fn visit_stmt(&mut self, stmt: &Stmt) {
            if let StmtKind::Decl(d) = &stmt.kind {
                self.locals.insert(d.name.clone());
            }
        }
        fn visit_expr(&mut self, e: &Expr) {
            let target = match &e.kind {
                ExprKind::Assign { lhs, .. } => Some(lhs.as_ref()),
                ExprKind::Unary {
                    op: mc_ast::UnaryOp::PreInc | mc_ast::UnaryOp::PreDec,
                    operand,
                } => Some(operand.as_ref()),
                ExprKind::Postfix { operand, .. } => Some(operand.as_ref()),
                _ => None,
            };
            if let Some(key) = target.and_then(crate::feasibility::key_of) {
                self.writes.insert(key);
            }
        }
    }
    let mut scan = Scan {
        locals: func.params.iter().map(|p| p.name.clone()).collect(),
        writes: BTreeSet::new(),
    };
    mc_ast::walk_function(&mut scan, func);
    scan.writes
        .into_iter()
        .filter(|key| {
            let root = key
                .split("->")
                .next()
                .and_then(|k| k.split('.').next())
                .unwrap_or(key);
            !scan.locals.contains(root)
        })
        .collect()
}

/// Topological-ish order of blocks reachable from `entry` (back edges
/// ignored by virtue of post-order DFS with a visited set).
fn topo_order(adj: &[Vec<usize>], entry: usize) -> Vec<usize> {
    let mut post = Vec::new();
    if adj.is_empty() {
        return post;
    }
    let mut visited = vec![false; adj.len()];
    let mut stack: Vec<(usize, usize)> = vec![(entry, 0)];
    visited[entry] = true;
    while let Some(&mut (u, ref mut i)) = stack.last_mut() {
        if *i < adj[u].len() {
            let v = adj[u][*i];
            *i += 1;
            if !visited[v] {
                visited[v] = true;
                stack.push((v, 0));
            }
        } else {
            post.push(u);
            stack.pop();
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::parse_translation_unit;

    /// Annotates NI_SEND(lane, ...) calls as one count on "lane<k>".
    fn lane_annotate(e: &Expr) -> Option<(String, i64)> {
        let (name, args) = e.as_call()?;
        if name != "NI_SEND" {
            return None;
        }
        let lane = match &args.first()?.kind {
            ExprKind::IntLit(v, _) => *v,
            _ => 0,
        };
        Some((format!("lane{lane}"), 1))
    }

    /// Summarizes every function of `src` bottom-up in source order (the
    /// test sources define callees before callers), mimicking the driver's
    /// engine: summarized names resolve to their summary, defined-but-
    /// unfinished names resolve to `Recursive`, everything else `Unknown`.
    fn summarize_all(src: &str) -> BTreeMap<String, CountSummary> {
        let tu = parse_translation_unit(src, "p.c").unwrap();
        let defined: HashSet<String> = tu.functions().map(|f| f.name.clone()).collect();
        let mut store: BTreeMap<String, FnSummary> = BTreeMap::new();
        let mut out = BTreeMap::new();
        for f in tu.functions() {
            let cfg = Cfg::build(f);
            let s = summarize_counts("p.c", &cfg, &mut lane_annotate, &|callee| {
                if let Some(fs) = store.get(callee) {
                    Resolved::Summary(fs)
                } else if defined.contains(callee) {
                    Resolved::Recursive
                } else {
                    Resolved::Unknown
                }
            });
            store.insert(
                f.name.clone(),
                FnSummary {
                    function: f.name.clone(),
                    file: "p.c".into(),
                    counters: s.counters.clone(),
                    traces: s.traces.clone(),
                    ..FnSummary::default()
                },
            );
            out.insert(f.name.clone(), s);
        }
        out
    }

    #[test]
    fn annotated_counts_and_calls_recorded() {
        let src = "void h(void) { NI_SEND(2, x); helper(); }";
        let s = &summarize_all(src)["h"];
        assert_eq!(s.counters["lane2"], 1);
        let tu = parse_translation_unit(src, "p.c").unwrap();
        let calls = collect_calls(tu.functions().next().unwrap());
        assert!(calls.contains(&"helper".to_string()));
    }

    #[test]
    fn summarize_straight_line() {
        let s =
            &summarize_all("void h(void) { NI_SEND(1, x); NI_SEND(1, y); NI_SEND(2, z); }")["h"];
        assert_eq!(s.counters["lane1"], 2);
        assert_eq!(s.counters["lane2"], 1);
        assert!(s.warnings.is_empty());
    }

    #[test]
    fn summarize_takes_max_over_branches() {
        let s = &summarize_all(
            "void h(void) { if (c) { NI_SEND(1, x); NI_SEND(1, y); } else { NI_SEND(1, z); } }",
        )["h"];
        assert_eq!(s.counters["lane1"], 2);
    }

    #[test]
    fn summarize_crosses_calls() {
        let s = &summarize_all(
            "void helper(void) { NI_SEND(3, a); }\n\
             void h(void) { helper(); NI_SEND(3, b); }",
        )["h"];
        assert_eq!(s.counters["lane3"], 2);
        // Back trace mentions the call and the callee's send.
        let t = &s.traces["lane3"];
        assert!(t.iter().any(|l| l.note.contains("call `helper`")), "{t:?}");
        assert!(t.iter().any(|l| l.note.contains("in helper")), "{t:?}");
        // Every step carries an exact location: file plus line:col.
        assert!(
            t.iter().all(|l| l.file == "p.c" && l.span.col >= 1),
            "{t:?}"
        );
    }

    #[test]
    fn summaries_chain_through_two_levels() {
        let s = &summarize_all(
            "void leaf(void) { NI_SEND(1, a); }\n\
             void mid(void) { leaf(); NI_SEND(1, b); }\n\
             void top(void) { mid(); NI_SEND(1, c); }",
        )["top"];
        assert_eq!(s.counters["lane1"], 3);
        // The chained trace reaches all the way down.
        let t = &s.traces["lane1"];
        assert!(t.iter().any(|l| l.note.contains("call `mid`")), "{t:?}");
        assert!(t.iter().any(|l| l.note.contains("in leaf")), "{t:?}");
    }

    #[test]
    fn unknown_callees_contribute_nothing() {
        let s = &summarize_all("void h(void) { mystery(); NI_SEND(1, a); }")["h"];
        assert_eq!(s.counters["lane1"], 1);
        assert!(s.warnings.is_empty());
    }

    #[test]
    fn sendless_loop_is_fixed_point() {
        let s = &summarize_all("void h(void) { while (x) { spin(); } NI_SEND(1, a); }")["h"];
        assert_eq!(s.counters["lane1"], 1);
        assert!(s.warnings.is_empty(), "sendless cycles must not warn");
    }

    #[test]
    fn loop_with_counts_warns() {
        let s = &summarize_all("void h(void) { while (x) { NI_SEND(1, a); } }")["h"];
        assert_eq!(s.warnings.len(), 1);
        assert_eq!(s.warnings[0].function, "h");
        assert_eq!(s.warnings[0].keys, vec!["lane1".to_string()]);
        // Fixed point: the loop body is counted once, not unboundedly.
        assert_eq!(s.counters["lane1"], 1);
    }

    #[test]
    fn sendless_recursion_is_fixed_point() {
        let all = summarize_all(
            "void r(void) { if (x) { r(); } }\n\
             void h(void) { r(); NI_SEND(1, a); }",
        );
        assert!(all["r"].warnings.is_empty(), "{:?}", all["r"].warnings);
        assert_eq!(all["h"].counters["lane1"], 1);
        assert!(all["h"].warnings.is_empty());
    }

    #[test]
    fn recursion_with_counts_warns() {
        let all = summarize_all("void r(void) { NI_SEND(1, a); if (x) { r(); } }");
        assert!(!all["r"].warnings.is_empty());
        assert!(all["r"].warnings[0].keys.iter().any(|k| k == "<recursion>"));
    }

    #[test]
    fn trace_steps_carry_file_line_and_col() {
        let s = &summarize_all("void h(void) {\n  NI_SEND(1, a);\n}")["h"];
        let t = &s.traces["lane1"];
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].file, "p.c");
        assert_eq!(t[0].span.line, 2);
        assert!(t[0].span.col >= 1, "{t:?}");
        assert_eq!(t[0].note, "lane1 in h");
    }

    #[test]
    fn clobbers_skip_locals_and_params() {
        let tu = parse_translation_unit(
            "void f(int p) { int loc; loc = 1; p = 2; gGlobal = 3; gOther->len = 4; }",
            "p.c",
        )
        .unwrap();
        let c = collect_clobbers(tu.functions().next().unwrap());
        assert!(c.contains(&"gGlobal".to_string()), "{c:?}");
        assert!(!c.iter().any(|k| k.starts_with("loc")), "{c:?}");
        assert!(!c.iter().any(|k| k.starts_with('p')), "{c:?}");
    }
}

/// Tarjan's strongly-connected components over an adjacency list,
/// iteratively (call-graph chains can be deep). SCCs are returned in
/// reverse topological order of the condensation: every SCC appears after
/// all SCCs it can reach — exactly the callees-first order the summary
/// engine wants.
pub fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut indices: Vec<Option<usize>> = vec![None; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut index = 0usize;
    // Explicit DFS frames: (node, next child index).
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for start in 0..n {
        if indices[start].is_some() {
            continue;
        }
        frames.push((start, 0));
        indices[start] = Some(index);
        low[start] = index;
        index += 1;
        stack.push(start);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if indices[w].is_none() {
                    indices[w] = Some(index);
                    low[w] = index;
                    index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(indices[w].expect("indexed"));
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == indices[v].expect("indexed") {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("stack non-empty");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}
