//! Word-at-a-time multiply-xor hasher for the traversal's interior tables
//! (witness interning, visited keys, state dedup), in the style of rustc's
//! FxHash. These tables never face adversarial keys, and SipHash's
//! per-insert setup is measurable at hundreds of thousands of inserts per
//! corpus pass.

use std::collections::{HashMap, HashSet};
use std::hash::BuildHasherDefault;

#[derive(Default)]
pub(crate) struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
    }
}

impl std::hash::Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }
    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

pub(crate) type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;
pub(crate) type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;
