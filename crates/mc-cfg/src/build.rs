//! CFG construction from an AST function body.

use mc_ast::{Expr, Function, Span, Stmt, StmtKind};
use std::collections::HashMap;

/// Index of a basic block within its [`Cfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

/// An atomic, straight-line unit of execution inside a block: an expression
/// statement, a declaration, or an empty statement. Checker state machines
/// observe these in path order.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The statement (always one of the atomic kinds).
    pub stmt: Stmt,
}

/// How a block ends.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional edge.
    Jump(BlockId),
    /// Two-way branch on `cond`.
    Branch {
        /// Branch condition (observed by checkers as a path event).
        cond: Expr,
        /// Successor when the condition is true.
        then_to: BlockId,
        /// Successor when the condition is false.
        else_to: BlockId,
    },
    /// Multi-way branch from a `switch`.
    Switch {
        /// The switched expression.
        scrutinee: Expr,
        /// `(case value, target)` pairs; `None` value is `default`.
        targets: Vec<(Option<Expr>, BlockId)>,
        /// Where control flows when no case matches and there is no
        /// `default` (the block after the switch).
        fallthrough: BlockId,
    },
    /// Function return. The paper's path counting treats every `return` as
    /// a distinct exit.
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Location of the `return` (or of the closing brace for the
        /// implicit return at the end of a `void` function).
        span: Span,
    },
}

impl Terminator {
    /// All successor block ids, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                then_to, else_to, ..
            } => vec![*then_to, *else_to],
            Terminator::Switch {
                targets,
                fallthrough,
                ..
            } => {
                let mut v: Vec<BlockId> = targets.iter().map(|(_, t)| *t).collect();
                if !targets.iter().any(|(val, _)| val.is_none()) {
                    v.push(*fallthrough);
                }
                v
            }
            Terminator::Return { .. } => vec![],
        }
    }
}

/// A basic block: a run of atomic nodes ending in a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Straight-line statements, in execution order.
    pub nodes: Vec<Node>,
    /// How the block ends.
    pub term: Terminator,
}

/// A control-flow graph for one function.
#[derive(Debug, Clone, PartialEq)]
pub struct Cfg {
    /// The function's name (for diagnostics).
    pub name: String,
    /// All blocks; `blocks[entry.0]` is the entry block.
    pub blocks: Vec<Block>,
    /// Entry block id (always `BlockId(0)`).
    pub entry: BlockId,
    /// Keys of every address-taken lvalue in the function, scanned once at
    /// build time; pruning traversals seed their escape set from it.
    pub(crate) escapes: std::sync::Arc<std::collections::BTreeSet<String>>,
}

impl Cfg {
    /// Builds the CFG of `func`.
    ///
    /// `goto` targets that do not exist in the function body jump to the
    /// synthetic exit instead of failing: protocol code sometimes contains
    /// dead labels, and a checker must degrade gracefully rather than refuse
    /// the whole file.
    pub fn build(func: &Function) -> Cfg {
        let mut b = Builder::new(func.name.clone());
        let entry = b.new_block();
        let last = b.lower_stmts(&func.body, entry, &Frames::default());
        // Implicit return at the end of the body.
        if let Some(last) = last {
            b.set_term(
                last,
                Terminator::Return {
                    value: None,
                    span: func.span,
                },
            );
        }
        b.patch_gotos();
        b.finish()
    }

    /// The block with the given id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0]
    }

    /// Iterates over `(id, block)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i), b))
    }

    /// Ids of blocks ending in `return`.
    pub fn exits(&self) -> Vec<BlockId> {
        self.iter()
            .filter(|(_, b)| matches!(b.term, Terminator::Return { .. }))
            .map(|(id, _)| id)
            .collect()
    }
}

/// Loop/label context during lowering.
#[derive(Debug, Clone, Default)]
struct Frames {
    /// Where `break` goes.
    break_to: Option<BlockId>,
    /// Where `continue` goes.
    continue_to: Option<BlockId>,
}

struct Builder {
    name: String,
    blocks: Vec<BlockState>,
    labels: HashMap<String, BlockId>,
    pending_gotos: Vec<(BlockId, String)>,
}

enum BlockState {
    Open(Vec<Node>),
    Done(Block),
}

impl Builder {
    fn new(name: String) -> Self {
        Builder {
            name,
            blocks: Vec::new(),
            labels: HashMap::new(),
            pending_gotos: Vec::new(),
        }
    }

    fn new_block(&mut self) -> BlockId {
        self.blocks.push(BlockState::Open(Vec::new()));
        BlockId(self.blocks.len() - 1)
    }

    fn push_node(&mut self, id: BlockId, stmt: Stmt) {
        match &mut self.blocks[id.0] {
            BlockState::Open(nodes) => nodes.push(Node { stmt }),
            BlockState::Done(_) => {
                // Unreachable code after a terminator (e.g. statements after
                // `return`): attach to a fresh dangling block so checkers can
                // still inspect it if they want; we simply drop it, matching
                // compiler behavior of ignoring unreachable code.
            }
        }
    }

    fn set_term(&mut self, id: BlockId, term: Terminator) {
        if let BlockState::Open(nodes) = &mut self.blocks[id.0] {
            let nodes = std::mem::take(nodes);
            self.blocks[id.0] = BlockState::Done(Block { nodes, term });
        }
    }

    fn is_open(&self, id: BlockId) -> bool {
        matches!(self.blocks[id.0], BlockState::Open(_))
    }

    /// Lowers a statement list starting in `cur`; returns the id of the
    /// block control falls out of, or `None` if all paths terminated.
    fn lower_stmts(
        &mut self,
        stmts: &[Stmt],
        mut cur: BlockId,
        frames: &Frames,
    ) -> Option<BlockId> {
        for s in stmts {
            match self.lower_stmt(s, cur, frames) {
                Some(next) => cur = next,
                None => return None,
            }
        }
        Some(cur)
    }

    fn lower_stmt(&mut self, s: &Stmt, cur: BlockId, frames: &Frames) -> Option<BlockId> {
        if !self.is_open(cur) {
            return None;
        }
        match &s.kind {
            StmtKind::Expr(_) | StmtKind::Decl(_) | StmtKind::Empty => {
                self.push_node(cur, s.clone());
                Some(cur)
            }
            StmtKind::Block(body) => self.lower_stmts(body, cur, frames),
            StmtKind::If { cond, then, els } => {
                let then_b = self.new_block();
                let join = self.new_block();
                let else_b = if els.is_some() {
                    self.new_block()
                } else {
                    join
                };
                self.set_term(
                    cur,
                    Terminator::Branch {
                        cond: cond.clone(),
                        then_to: then_b,
                        else_to: else_b,
                    },
                );
                if let Some(end) = self.lower_stmt(then, then_b, frames) {
                    self.set_term(end, Terminator::Jump(join));
                }
                if let Some(els) = els {
                    if let Some(end) = self.lower_stmt(els, else_b, frames) {
                        self.set_term(end, Terminator::Jump(join));
                    }
                }
                Some(join)
            }
            StmtKind::While { cond, body } => {
                let head = self.new_block();
                let body_b = self.new_block();
                let after = self.new_block();
                self.set_term(cur, Terminator::Jump(head));
                self.set_term(
                    head,
                    Terminator::Branch {
                        cond: cond.clone(),
                        then_to: body_b,
                        else_to: after,
                    },
                );
                let inner = Frames {
                    break_to: Some(after),
                    continue_to: Some(head),
                };
                if let Some(end) = self.lower_stmt(body, body_b, &inner) {
                    self.set_term(end, Terminator::Jump(head));
                }
                Some(after)
            }
            StmtKind::DoWhile { body, cond } => {
                let body_b = self.new_block();
                let head = self.new_block(); // condition check
                let after = self.new_block();
                self.set_term(cur, Terminator::Jump(body_b));
                let inner = Frames {
                    break_to: Some(after),
                    continue_to: Some(head),
                };
                if let Some(end) = self.lower_stmt(body, body_b, &inner) {
                    self.set_term(end, Terminator::Jump(head));
                }
                self.set_term(
                    head,
                    Terminator::Branch {
                        cond: cond.clone(),
                        then_to: body_b,
                        else_to: after,
                    },
                );
                Some(after)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let mut cur = cur;
                if let Some(init) = init {
                    cur = self.lower_stmt(init, cur, frames)?;
                }
                let head = self.new_block();
                let body_b = self.new_block();
                let step_b = self.new_block();
                let after = self.new_block();
                self.set_term(cur, Terminator::Jump(head));
                match cond {
                    Some(c) => self.set_term(
                        head,
                        Terminator::Branch {
                            cond: c.clone(),
                            then_to: body_b,
                            else_to: after,
                        },
                    ),
                    None => self.set_term(head, Terminator::Jump(body_b)),
                }
                let inner = Frames {
                    break_to: Some(after),
                    continue_to: Some(step_b),
                };
                if let Some(end) = self.lower_stmt(body, body_b, &inner) {
                    self.set_term(end, Terminator::Jump(step_b));
                }
                if let Some(step) = step {
                    self.push_node(step_b, Stmt::new(StmtKind::Expr(step.clone()), step.span));
                }
                self.set_term(step_b, Terminator::Jump(head));
                Some(after)
            }
            StmtKind::Switch { scrutinee, cases } => {
                let after = self.new_block();
                // One block per case arm; fallthrough chains arm i -> i+1.
                let arm_blocks: Vec<BlockId> = cases.iter().map(|_| self.new_block()).collect();
                let mut targets = Vec::new();
                for (case, block) in cases.iter().zip(&arm_blocks) {
                    targets.push((case.value.clone(), *block));
                }
                self.set_term(
                    cur,
                    Terminator::Switch {
                        scrutinee: scrutinee.clone(),
                        targets,
                        fallthrough: after,
                    },
                );
                let inner = Frames {
                    break_to: Some(after),
                    continue_to: frames.continue_to,
                };
                for (i, case) in cases.iter().enumerate() {
                    if let Some(end) = self.lower_stmts(&case.body, arm_blocks[i], &inner) {
                        // Fall through to the next arm, or out of the switch.
                        let next = arm_blocks.get(i + 1).copied().unwrap_or(after);
                        self.set_term(end, Terminator::Jump(next));
                    }
                }
                Some(after)
            }
            StmtKind::Break => {
                let target = frames.break_to;
                match target {
                    Some(t) => self.set_term(cur, Terminator::Jump(t)),
                    None => self.set_term(
                        cur,
                        Terminator::Return {
                            value: None,
                            span: s.span,
                        },
                    ),
                }
                None
            }
            StmtKind::Continue => {
                let target = frames.continue_to;
                match target {
                    Some(t) => self.set_term(cur, Terminator::Jump(t)),
                    None => self.set_term(
                        cur,
                        Terminator::Return {
                            value: None,
                            span: s.span,
                        },
                    ),
                }
                None
            }
            StmtKind::Return(value) => {
                self.set_term(
                    cur,
                    Terminator::Return {
                        value: value.clone(),
                        span: s.span,
                    },
                );
                None
            }
            StmtKind::Label(name, inner) => {
                let labeled = self.new_block();
                self.set_term(cur, Terminator::Jump(labeled));
                self.labels.insert(name.clone(), labeled);
                self.lower_stmt(inner, labeled, frames)
            }
            StmtKind::Goto(label) => {
                self.pending_gotos.push((cur, label.clone()));
                // Terminator patched later; mark as return placeholder so
                // the block is closed.
                self.set_term(
                    cur,
                    Terminator::Return {
                        value: None,
                        span: s.span,
                    },
                );
                None
            }
        }
    }

    fn patch_gotos(&mut self) {
        let gotos = std::mem::take(&mut self.pending_gotos);
        for (block, label) in gotos {
            if let Some(&target) = self.labels.get(&label) {
                if let BlockState::Done(b) = &mut self.blocks[block.0] {
                    b.term = Terminator::Jump(target);
                }
            }
            // Unknown label: leave the placeholder return (degrade
            // gracefully; see `Cfg::build` docs).
        }
    }

    fn finish(mut self) -> Cfg {
        // Close any still-open blocks (possible for unreachable joins) with
        // an implicit return.
        for i in 0..self.blocks.len() {
            if self.is_open(BlockId(i)) {
                self.set_term(
                    BlockId(i),
                    Terminator::Return {
                        value: None,
                        span: Span::default(),
                    },
                );
            }
        }
        let blocks = self
            .blocks
            .into_iter()
            .map(|b| match b {
                BlockState::Done(b) => b,
                BlockState::Open(_) => unreachable!("all blocks closed above"),
            })
            .collect();
        let mut cfg = Cfg {
            name: self.name,
            blocks,
            entry: BlockId(0),
            escapes: Default::default(),
        };
        // One function-wide scan for address-taken lvalues; every pruning
        // traversal starts from this set (see `FactSet::seed_escapes_stmt`
        // for why the seed covers the whole function, not just a path).
        let mut seed = crate::FactSet::new();
        for block in &cfg.blocks {
            for node in &block.nodes {
                seed.seed_escapes_stmt(&node.stmt);
            }
            match &block.term {
                Terminator::Jump(_) => {}
                Terminator::Branch { cond, .. } => seed.seed_escapes_expr(cond),
                Terminator::Switch { scrutinee, .. } => seed.seed_escapes_expr(scrutinee),
                Terminator::Return { value, .. } => {
                    if let Some(v) = value {
                        seed.seed_escapes_expr(v);
                    }
                }
            }
        }
        cfg.escapes = seed.into_escapes();
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::parse_translation_unit;

    fn cfg_of(body: &str) -> Cfg {
        let src = format!("void f(void) {{ {body} }}");
        let tu = parse_translation_unit(&src, "t.c").unwrap();
        Cfg::build(tu.function("f").unwrap())
    }

    #[test]
    fn straight_line_single_block_exit() {
        let cfg = cfg_of("a(); b(); c();");
        assert_eq!(cfg.exits().len(), 1);
        let entry = cfg.block(cfg.entry);
        assert_eq!(entry.nodes.len(), 3);
        assert!(matches!(entry.term, Terminator::Return { .. }));
    }

    #[test]
    fn if_produces_diamond() {
        let cfg = cfg_of("if (x) { a(); } else { b(); } c();");
        let entry = cfg.block(cfg.entry);
        match &entry.term {
            Terminator::Branch {
                then_to, else_to, ..
            } => {
                assert_ne!(then_to, else_to);
            }
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn if_without_else_branches_to_join() {
        let cfg = cfg_of("if (x) a(); b();");
        let entry = cfg.block(cfg.entry);
        match &entry.term {
            Terminator::Branch {
                then_to, else_to, ..
            } => {
                // else edge goes straight to the join block
                let join = cfg.block(*else_to);
                assert_eq!(join.nodes.len(), 1); // b();
                let then_block = cfg.block(*then_to);
                assert_eq!(then_block.nodes.len(), 1); // a();
            }
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn while_loop_has_back_edge() {
        let cfg = cfg_of("while (x) { a(); } b();");
        // find the head block (branch)
        let heads: Vec<_> = cfg
            .iter()
            .filter(|(_, b)| matches!(b.term, Terminator::Branch { .. }))
            .collect();
        assert_eq!(heads.len(), 1);
        let (head_id, head) = heads[0];
        if let Terminator::Branch { then_to, .. } = &head.term {
            // loop body jumps back to head
            let body = cfg.block(*then_to);
            assert_eq!(body.term, Terminator::Jump(head_id));
        }
    }

    #[test]
    fn do_while_executes_body_first() {
        let cfg = cfg_of("do { a(); } while (x); b();");
        // entry jumps into the body, not the condition
        let entry = cfg.block(cfg.entry);
        if let Terminator::Jump(t) = entry.term {
            assert_eq!(cfg.block(t).nodes.len(), 1); // a();
        } else {
            panic!("expected jump");
        }
    }

    #[test]
    fn for_loop_structure() {
        let cfg = cfg_of("for (i = 0; i < 4; i++) { a(); } b();");
        // entry contains init
        assert_eq!(cfg.block(cfg.entry).nodes.len(), 1);
        let branches = cfg
            .iter()
            .filter(|(_, b)| matches!(b.term, Terminator::Branch { .. }))
            .count();
        assert_eq!(branches, 1);
    }

    #[test]
    fn early_return_creates_two_exits() {
        let cfg = cfg_of("if (x) { return; } a();");
        assert_eq!(cfg.exits().len(), 2);
    }

    #[test]
    fn break_leaves_loop() {
        let cfg = cfg_of("while (1) { if (x) break; a(); } b();");
        // The break block must jump to the after-loop block containing b().
        let after_blocks: Vec<_> = cfg
            .iter()
            .filter(|(_, b)| {
                b.nodes
                    .iter()
                    .any(|n| mc_ast::print_stmt(&n.stmt).contains("b()"))
            })
            .collect();
        assert_eq!(after_blocks.len(), 1);
    }

    #[test]
    fn continue_goes_to_step_in_for() {
        let cfg = cfg_of("for (i = 0; i < 4; i++) { if (x) continue; a(); }");
        // Some block must jump to the step block (which contains i++).
        let step_blocks: Vec<_> = cfg
            .iter()
            .filter(|(_, b)| {
                b.nodes
                    .iter()
                    .any(|n| mc_ast::print_stmt(&n.stmt).contains("i++"))
            })
            .map(|(id, _)| id)
            .collect();
        assert_eq!(step_blocks.len(), 1);
        let step = step_blocks[0];
        let jumpers = cfg
            .iter()
            .filter(|(_, b)| b.term.successors().contains(&step))
            .count();
        assert!(jumpers >= 2, "body end and continue should both reach step");
    }

    #[test]
    fn switch_targets_and_fallthrough() {
        let cfg = cfg_of("switch (op) { case 1: a(); break; case 2: b(); default: c(); } d();");
        let (_, sw) = cfg
            .iter()
            .find(|(_, b)| matches!(b.term, Terminator::Switch { .. }))
            .unwrap();
        if let Terminator::Switch { targets, .. } = &sw.term {
            assert_eq!(targets.len(), 3);
            // case 2 falls through to default: block of case2 jumps to block of default
            let case2 = targets[1].1;
            let default_b = targets[2].1;
            assert_eq!(cfg.block(case2).term, Terminator::Jump(default_b));
        }
    }

    #[test]
    fn switch_without_default_can_skip() {
        let cfg = cfg_of("switch (op) { case 1: a(); break; } d();");
        let (_, sw) = cfg
            .iter()
            .find(|(_, b)| matches!(b.term, Terminator::Switch { .. }))
            .unwrap();
        // successors include the fallthrough
        assert_eq!(sw.term.successors().len(), 2);
    }

    #[test]
    fn goto_jumps_to_label() {
        let cfg = cfg_of("retry: a(); if (x) goto retry; b();");
        // Some block's terminator jumps back to the labeled block.
        let labeled: Vec<_> = cfg
            .iter()
            .filter(|(_, b)| {
                b.nodes
                    .iter()
                    .any(|n| mc_ast::print_stmt(&n.stmt).contains("a()"))
            })
            .map(|(id, _)| id)
            .collect();
        assert_eq!(labeled.len(), 1);
        let target = labeled[0];
        let jumpers = cfg
            .iter()
            .filter(|(_, b)| matches!(b.term, Terminator::Jump(t) if t == target))
            .count();
        assert!(jumpers >= 2, "entry and goto both jump to label block");
    }

    #[test]
    fn unreachable_code_after_return_is_dropped() {
        let cfg = cfg_of("return; a();");
        let total_nodes: usize = cfg.blocks.iter().map(|b| b.nodes.len()).sum();
        assert_eq!(total_nodes, 0);
    }

    #[test]
    fn nested_loops_break_binds_to_inner() {
        let cfg = cfg_of("while (x) { while (y) { if (z) break; a(); } b(); } c();");
        // b() must be reachable from the inner break: find block with b()
        let has_b = cfg.iter().any(|(_, blk)| {
            blk.nodes
                .iter()
                .any(|n| mc_ast::print_stmt(&n.stmt).contains("b()"))
        });
        assert!(has_b);
    }
}
