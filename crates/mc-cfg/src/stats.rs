//! Path statistics, reproducing the methodology of Table 1.
//!
//! The paper measures, per protocol, "the number of unique exit paths from
//! the beginning of the function to all returns" plus the average and
//! maximum path length (as lines of code). Loops make the literal path count
//! infinite, so — as any static counting must — we count paths in the DAG
//! obtained by ignoring back edges (each loop contributes its body once).

use crate::build::{BlockId, Cfg, Terminator};
use std::collections::HashSet;

/// Path statistics for one function or an aggregate of functions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PathStats {
    /// Number of unique entry-to-return paths (back edges ignored),
    /// saturating at `u64::MAX`.
    pub paths: u64,
    /// Total statement count summed over all paths (for computing the
    /// average; saturating).
    pub total_len: u64,
    /// Longest path, in statements.
    pub max_len: u64,
}

impl PathStats {
    /// Average path length in statements (0 when there are no paths).
    pub fn avg_len(&self) -> f64 {
        if self.paths == 0 {
            0.0
        } else {
            self.total_len as f64 / self.paths as f64
        }
    }

    /// Merges statistics of another function into an aggregate.
    pub fn merge(&mut self, other: &PathStats) {
        self.paths = self.paths.saturating_add(other.paths);
        self.total_len = self.total_len.saturating_add(other.total_len);
        self.max_len = self.max_len.max(other.max_len);
    }
}

impl Cfg {
    /// Computes [`PathStats`] for this function.
    pub fn path_stats(&self) -> PathStats {
        let back_edges = self.back_edges();
        let order = self.reverse_topo(&back_edges);

        let n = self.blocks.len();
        let mut count = vec![0u64; n];
        let mut total = vec![0u64; n];
        let mut max = vec![0u64; n];

        for &id in &order {
            let block = self.block(id);
            // Count the block's own statements plus one for the branching
            // construct itself (mirrors counting source lines).
            let own_len = block.nodes.len() as u64
                + match block.term {
                    Terminator::Branch { .. } | Terminator::Switch { .. } => 1,
                    _ => 0,
                };
            match &block.term {
                Terminator::Return { .. } => {
                    count[id.0] = 1;
                    total[id.0] = own_len;
                    max[id.0] = own_len;
                }
                term => {
                    let mut c = 0u64;
                    let mut t = 0u64;
                    let mut m = 0u64;
                    let mut any = false;
                    for s in term.successors() {
                        if back_edges.contains(&(id, s)) {
                            // A back edge ends the (acyclic) path: the loop
                            // body contributes one pass.
                            c = c.saturating_add(1);
                            t = t.saturating_add(own_len);
                            any = true;
                        } else {
                            c = c.saturating_add(count[s.0]);
                            t = t
                                .saturating_add(total[s.0])
                                .saturating_add(own_len.saturating_mul(count[s.0]));
                            m = m.max(max[s.0]);
                            any = any || count[s.0] > 0;
                        }
                    }
                    count[id.0] = c;
                    total[id.0] = t;
                    max[id.0] = if any { own_len + m } else { 0 };
                }
            }
        }

        PathStats {
            paths: count[self.entry.0],
            total_len: total[self.entry.0],
            max_len: max[self.entry.0],
        }
    }

    /// Edges that close a cycle in a DFS from the entry.
    pub fn back_edges(&self) -> HashSet<(BlockId, BlockId)> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; self.blocks.len()];
        let mut back = HashSet::new();
        // Iterative DFS with explicit edge stack.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        color[self.entry.0] = Color::Gray;
        while let Some(&mut (u, ref mut i)) = stack.last_mut() {
            let succs = self.block(u).term.successors();
            if *i < succs.len() {
                let v = succs[*i];
                *i += 1;
                match color[v.0] {
                    Color::White => {
                        color[v.0] = Color::Gray;
                        stack.push((v, 0));
                    }
                    Color::Gray => {
                        back.insert((u, v));
                    }
                    Color::Black => {}
                }
            } else {
                color[u.0] = Color::Black;
                stack.pop();
            }
        }
        back
    }

    /// Blocks in reverse topological order of the back-edge-free DAG
    /// (successors before predecessors). Unreachable blocks are omitted.
    fn reverse_topo(&self, back_edges: &HashSet<(BlockId, BlockId)>) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut order = Vec::new();
        // Iterative post-order DFS.
        let mut stack: Vec<(BlockId, usize)> = vec![(self.entry, 0)];
        visited[self.entry.0] = true;
        while let Some(&mut (u, ref mut i)) = stack.last_mut() {
            let succs: Vec<BlockId> = self
                .block(u)
                .term
                .successors()
                .into_iter()
                .filter(|s| !back_edges.contains(&(u, *s)))
                .collect();
            if *i < succs.len() {
                let v = succs[*i];
                *i += 1;
                if !visited[v.0] {
                    visited[v.0] = true;
                    stack.push((v, 0));
                }
            } else {
                order.push(u);
                stack.pop();
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::parse_translation_unit;

    fn stats_of(body: &str) -> PathStats {
        let src = format!("void f(void) {{ {body} }}");
        let tu = parse_translation_unit(&src, "t.c").unwrap();
        Cfg::build(tu.function("f").unwrap()).path_stats()
    }

    #[test]
    fn straight_line_is_one_path() {
        let s = stats_of("a(); b(); c();");
        assert_eq!(s.paths, 1);
        assert_eq!(s.max_len, 3);
        assert_eq!(s.total_len, 3);
    }

    #[test]
    fn if_else_is_two_paths() {
        let s = stats_of("if (x) { a(); } else { b(); } c();");
        assert_eq!(s.paths, 2);
    }

    #[test]
    fn sequential_ifs_multiply() {
        // The paper explicitly notes this: two if-else branches on the same
        // condition count as four paths, because paths are not pruned for
        // feasibility.
        let s = stats_of("if (x) { a(); } else { b(); } if (x) { c(); } else { d(); }");
        assert_eq!(s.paths, 4);
    }

    #[test]
    fn early_returns_are_separate_paths() {
        let s = stats_of("if (x) { return; } if (y) { return; } a();");
        assert_eq!(s.paths, 3);
    }

    #[test]
    fn loop_counts_body_once() {
        let s = stats_of("while (x) { a(); } b();");
        // Two paths: skip the loop; run body once then exit.
        assert_eq!(s.paths, 2);
    }

    #[test]
    fn switch_paths() {
        let s =
            stats_of("switch (op) { case 1: a(); break; case 2: b(); break; default: c(); } d();");
        assert_eq!(s.paths, 3);
    }

    #[test]
    fn switch_without_default_adds_skip_path() {
        let s = stats_of("switch (op) { case 1: a(); break; } d();");
        assert_eq!(s.paths, 2);
    }

    #[test]
    fn max_len_takes_longest() {
        let s = stats_of("if (x) { a(); b(); c(); } else { d(); } e();");
        // longest path: branch(1) + 3 + e(1) = 5
        assert_eq!(s.max_len, 5);
        assert_eq!(s.paths, 2);
        assert_eq!(s.avg_len(), (5.0 + 3.0) / 2.0);
    }

    #[test]
    fn merge_aggregates() {
        let mut a = stats_of("a();");
        let b = stats_of("if (x) { b(); } else { c(); }");
        a.merge(&b);
        assert_eq!(a.paths, 3);
    }

    #[test]
    fn infinite_loop_still_counts_body_pass() {
        let s = stats_of("while (1) { a(); }");
        // One path falls out of the condition immediately (the static count
        // cannot prune `while (1)`), one runs the body once and ends at the
        // back edge.
        assert_eq!(s.paths, 2);
    }

    #[test]
    fn goto_cycle_does_not_hang() {
        let s = stats_of("retry: a(); if (x) goto retry; b();");
        assert!(s.paths >= 1);
    }
}
