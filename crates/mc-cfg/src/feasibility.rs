//! Intraprocedural path-feasibility facts.
//!
//! The paper attributes most of its false positives to "unpruned correlated
//! branches": xg++ walks every syntactic path, including ones the code can
//! never execute (`if (gMode) free(); ...; if (!gMode) free();` has no real
//! double-free). This module implements the pruning pass the paper lacked:
//! a [`FactSet`] accumulates what each branch condition implies about simple
//! lvalues along one path, and [`FactSet::assume`] refuses edges whose
//! condition contradicts the accumulated facts.
//!
//! The domain is deliberately small — truthiness, `lvalue ==/!= constant`,
//! and integer bounds from comparisons against literals — because that is
//! exactly the shape of the correlated guards in FLASH handler code (mode
//! flags, opcode tests, length-field selections). Conditions outside the
//! domain (function calls, bit tests) contribute no facts, so data-dependent
//! branches are never pruned: the analysis only ever removes paths it can
//! positively refute.

use mc_ast::{
    walk_expr, walk_stmt, BinaryOp, Expr, ExprKind, Initializer, Stmt, StmtKind, UnaryOp, Visitor,
};
use std::collections::BTreeSet;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A constant a tracked lvalue may be compared against: an integer literal
/// or a manifest-constant identifier (`OPC_UPGRADE`, `LEN_NODATA`, …).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    /// Integer (or character) literal value.
    Int(i64),
    /// Symbolic manifest constant, kept by name.
    Sym(String),
}

/// Everything known about one lvalue on the current path.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
struct VarFacts {
    /// Known truthiness (`Some(false)` means the value is zero).
    truth: Option<bool>,
    /// Known exact value.
    eq: Option<Const>,
    /// Values the lvalue is known *not* to hold.
    ne: BTreeSet<Const>,
    /// Inclusive lower bound from literal comparisons.
    lo: Option<i64>,
    /// Inclusive upper bound from literal comparisons.
    hi: Option<i64>,
}

impl VarFacts {
    fn is_vacuous(&self) -> bool {
        self.truth.is_none()
            && self.eq.is_none()
            && self.ne.is_empty()
            && self.lo.is_none()
            && self.hi.is_none()
    }
}

/// The facts accumulated along one path, keyed by printed lvalue.
///
/// Kept as a sorted vector so it can serve as part of a traversal's visited
/// key: two paths with the same checker state but incompatible facts hash
/// differently and are explored separately (the "sound join" of state-set
/// mode — states are only merged when their fact sets are identical).
#[derive(Debug, Clone, Default)]
pub struct FactSet {
    facts: Vec<(String, VarFacts)>,
    /// Keys whose address is taken somewhere in the function (seeded by
    /// [`FactSet::seed_escapes_stmt`] / [`FactSet::seed_escapes_expr`] before
    /// the traversal starts, and extended at `&x` sites along the path). A
    /// store through an lvalue we cannot track (`*p = …`, `buf[i] = …`) may
    /// alias any of these, so it clobbers their facts.
    ///
    /// Behind an [`Arc`] because the seed covers the whole function up
    /// front, so in practice every fact set cloned along a traversal shares
    /// one escape set; copy-on-write keeps the per-path clone O(facts)
    /// instead of O(function).
    escaped: Arc<BTreeSet<String>>,
}

impl PartialEq for FactSet {
    fn eq(&self, other: &FactSet) -> bool {
        self.facts == other.facts
            && (Arc::ptr_eq(&self.escaped, &other.escaped) || self.escaped == other.escaped)
    }
}

impl Eq for FactSet {}

/// Hashes the per-path facts only. The escape set is deliberately left out:
/// it is (nearly always) shared by every path of one traversal, so hashing
/// it would cost O(function) per visited-set insert while discriminating
/// nothing. Equal fact sets have equal `facts`, so the `Hash`/`Eq` contract
/// holds.
impl Hash for FactSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.facts.hash(state);
    }
}

impl FactSet {
    /// The empty fact set (nothing known; every edge feasible).
    pub fn new() -> FactSet {
        FactSet::default()
    }

    /// Returns `true` if nothing is known on this path.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    fn get(&self, key: &str) -> Option<&VarFacts> {
        self.facts
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.facts[i].1)
    }

    fn entry(&mut self, key: &str) -> &mut VarFacts {
        match self.facts.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(i) => &mut self.facts[i].1,
            Err(i) => {
                self.facts.insert(i, (key.to_string(), VarFacts::default()));
                &mut self.facts[i].1
            }
        }
    }

    fn drop_key(&mut self, key: &str) {
        // An assignment to `x` also invalidates facts about `x.f` / `x->f`.
        self.facts.retain(|(k, _)| {
            !(k == key
                || k.strip_prefix(key)
                    .is_some_and(|rest| rest.starts_with('.') || rest.starts_with("->")))
        });
    }

    /// Drops every fact about `key` (and its member chains). The traversal
    /// engine calls this with a callee's summarized clobber set when a call
    /// site resolves — the principled counterpart to
    /// [`FactSet::invalidate_expr`]'s policy of leaving *unknown* calls
    /// alone.
    pub fn invalidate_key(&mut self, key: &str) {
        self.drop_key(key);
    }

    /// Returns the facts after assuming `cond` evaluated to `taken`, or
    /// `None` if that assumption contradicts facts already on the path
    /// (the edge is infeasible).
    pub fn assume(&self, cond: &Expr, taken: bool) -> Option<FactSet> {
        let mut next = self.clone();
        if next.assume_into(cond, taken) {
            Some(next)
        } else {
            None
        }
    }

    /// In-place version of [`FactSet::assume`]; returns `false` on
    /// contradiction (the set is then partially updated and must be
    /// discarded).
    fn assume_into(&mut self, cond: &Expr, taken: bool) -> bool {
        match &cond.kind {
            ExprKind::Unary {
                op: UnaryOp::Not,
                operand,
            } => self.assume_into(operand, !taken),
            ExprKind::Cast { expr, .. } => self.assume_into(expr, taken),
            ExprKind::Comma(_, rhs) => self.assume_into(rhs, taken),
            ExprKind::IntLit(v, _) => (*v != 0) == taken,
            ExprKind::Binary {
                op: BinaryOp::LogAnd,
                lhs,
                rhs,
            } => {
                // `a && b` taken means both held; not-taken tells us nothing
                // about either conjunct alone.
                !taken || (self.assume_into(lhs, true) && self.assume_into(rhs, true))
            }
            ExprKind::Binary {
                op: BinaryOp::LogOr,
                lhs,
                rhs,
            } => taken || (self.assume_into(lhs, false) && self.assume_into(rhs, false)),
            ExprKind::Binary {
                op: op @ (BinaryOp::Eq | BinaryOp::Ne),
                lhs,
                rhs,
            } => {
                let eq_holds = (*op == BinaryOp::Eq) == taken;
                match (key_of(lhs), const_of(rhs), key_of(rhs), const_of(lhs)) {
                    (Some(k), Some(c), _, _) | (_, _, Some(k), Some(c)) => {
                        if eq_holds {
                            self.assume_eq(&k, c)
                        } else {
                            self.assume_ne(&k, c)
                        }
                    }
                    _ => true,
                }
            }
            ExprKind::Binary {
                op: op @ (BinaryOp::Lt | BinaryOp::Gt | BinaryOp::Le | BinaryOp::Ge),
                lhs,
                rhs,
            } => {
                // Normalize to `key <rel> literal`, flipping the relation if
                // the literal is on the left or the edge is the else-edge.
                let (key, lit, mut op) = match (key_of(lhs), int_of(rhs), key_of(rhs), int_of(lhs))
                {
                    (Some(k), Some(v), _, _) => (k, v, *op),
                    (_, _, Some(k), Some(v)) => (k, v, flip(*op)),
                    _ => return true,
                };
                if !taken {
                    op = negate(op);
                }
                // `lit - 1` / `lit + 1` can overflow for i64::MIN/MAX
                // literals; treat that as "no fact" rather than recording a
                // wrapped (inverted) bound that could refute feasible edges.
                let (lo, hi) = match op {
                    BinaryOp::Lt => match lit.checked_sub(1) {
                        Some(h) => (None, Some(h)),
                        None => return true,
                    },
                    BinaryOp::Le => (None, Some(lit)),
                    BinaryOp::Gt => match lit.checked_add(1) {
                        Some(l) => (Some(l), None),
                        None => return true,
                    },
                    BinaryOp::Ge => (Some(lit), None),
                    _ => unreachable!(),
                };
                self.assume_bounds(&key, lo, hi)
            }
            _ => match key_of(cond) {
                Some(key) => {
                    if taken {
                        self.assume_ne(&key, Const::Int(0))
                    } else {
                        self.assume_eq(&key, Const::Int(0))
                    }
                }
                None => true,
            },
        }
    }

    /// Assumes a `switch` edge. `value` is the case constant, or `None` for
    /// the default / implicit no-match edge, in which case the scrutinee is
    /// known to differ from every labelled constant in `all_values`.
    pub fn assume_case(
        &self,
        scrutinee: &Expr,
        value: Option<&Expr>,
        all_values: &[Const],
    ) -> Option<FactSet> {
        let Some(key) = key_of(scrutinee) else {
            // Untracked scrutinee: neutral, never refutes.
            return Some(self.clone());
        };
        let mut next = self.clone();
        let ok = match value {
            Some(v) => match const_of(v) {
                Some(c) => next.assume_eq(&key, c),
                None => true,
            },
            None => all_values.iter().all(|c| next.assume_ne(&key, c.clone())),
        };
        if ok {
            Some(next)
        } else {
            None
        }
    }

    fn assume_eq(&mut self, key: &str, c: Const) -> bool {
        let known = self.get(key).cloned().unwrap_or_default();
        if known.ne.contains(&c) {
            return false;
        }
        if let Some(d) = &known.eq {
            // Distinct symbolic constants are not assumed distinct values.
            if d != &c && matches!((d, &c), (Const::Int(_), Const::Int(_))) {
                return false;
            }
        }
        if let Const::Int(v) = c {
            if known.truth == Some(v == 0) {
                return false;
            }
            if known.lo.is_some_and(|lo| v < lo) || known.hi.is_some_and(|hi| v > hi) {
                return false;
            }
        }
        let f = self.entry(key);
        if let Const::Int(v) = c {
            f.truth = Some(v != 0);
        }
        f.eq = Some(c);
        true
    }

    fn assume_ne(&mut self, key: &str, c: Const) -> bool {
        let known = self.get(key).cloned().unwrap_or_default();
        if known.eq.as_ref() == Some(&c) {
            return false;
        }
        if c == Const::Int(0) {
            if known.truth == Some(false) {
                return false;
            }
            self.entry(key).truth = Some(true);
        }
        self.entry(key).ne.insert(c);
        true
    }

    fn assume_bounds(&mut self, key: &str, lo: Option<i64>, hi: Option<i64>) -> bool {
        let known = self.get(key).cloned().unwrap_or_default();
        let lo = match (known.lo, lo) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        let hi = match (known.hi, hi) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if let (Some(l), Some(h)) = (lo, hi) {
            if l > h {
                return false;
            }
        }
        if let Some(Const::Int(v)) = known.eq {
            if lo.is_some_and(|l| v < l) || hi.is_some_and(|h| v > h) {
                return false;
            }
        }
        // A range excluding zero contradicts known falsiness.
        if known.truth == Some(false) && (lo.is_some_and(|l| l > 0) || hi.is_some_and(|h| h < 0)) {
            return false;
        }
        let f = self.entry(key);
        f.lo = lo;
        f.hi = hi;
        true
    }

    /// Kills facts invalidated by the side effects of one statement
    /// (assignments, `++`/`--`, declarations, and address-taking).
    pub fn invalidate_stmt(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Expr(e) => self.invalidate_expr(e),
            StmtKind::Decl(d) => {
                self.drop_key(&d.name);
                if let Some(Initializer::Expr(e)) = &d.init {
                    self.invalidate_expr(e);
                }
            }
            _ => {}
        }
        self.facts.retain(|(_, f)| !f.is_vacuous());
    }

    /// Kills facts for every lvalue `e` might write to. Function calls are
    /// deliberately *not* treated as clobbering tracked globals: handler
    /// guards like `gMode` are set by the dispatcher, not by the helpers
    /// called between correlated branches, and clobbering on every
    /// `DB_FREE()` would defeat the pruning this module exists for.
    pub fn invalidate_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Assign { lhs, rhs, .. } => {
                match key_of(lhs) {
                    Some(key) => self.drop_key(&key),
                    // A store through an lvalue we cannot track (`*p = …`,
                    // `buf[i] = …`) may write to anything whose address was
                    // taken.
                    None => self.clobber_escaped(),
                }
                self.invalidate_expr(lhs);
                self.invalidate_expr(rhs);
            }
            ExprKind::Postfix { operand, .. }
            | ExprKind::Unary {
                op: UnaryOp::PreInc | UnaryOp::PreDec,
                operand,
            } => {
                match key_of(operand) {
                    Some(key) => self.drop_key(&key),
                    // `(*p)++`, `buf[i]--`: an untracked write, like above.
                    None => self.clobber_escaped(),
                }
                self.invalidate_expr(operand);
            }
            ExprKind::Unary {
                op: UnaryOp::AddrOf,
                operand,
            } => {
                // The address escapes; anything may write through it, here
                // or later on this path.
                if let Some(key) = key_of(operand) {
                    self.drop_key(&key);
                    if !self.escaped.contains(&key) {
                        Arc::make_mut(&mut self.escaped).insert(key);
                    }
                }
                self.invalidate_expr(operand);
            }
            ExprKind::Unary { operand, .. } => self.invalidate_expr(operand),
            ExprKind::Call { callee, args } => {
                self.invalidate_expr(callee);
                for a in args {
                    self.invalidate_expr(a);
                }
            }
            ExprKind::Binary { lhs, rhs, .. } => {
                self.invalidate_expr(lhs);
                self.invalidate_expr(rhs);
            }
            ExprKind::Ternary { cond, then, els } => {
                self.invalidate_expr(cond);
                self.invalidate_expr(then);
                self.invalidate_expr(els);
            }
            ExprKind::Index { base, index } => {
                self.invalidate_expr(base);
                self.invalidate_expr(index);
            }
            ExprKind::Member { base, .. } => self.invalidate_expr(base),
            ExprKind::Cast { expr, .. } => self.invalidate_expr(expr),
            ExprKind::Comma(a, b) => {
                self.invalidate_expr(a);
                self.invalidate_expr(b);
            }
            _ => {}
        }
    }

    /// Drops the facts of every key whose address has escaped. Called on
    /// stores whose target we cannot name; the escape set itself survives
    /// (the pointer still exists).
    fn clobber_escaped(&mut self) {
        if self.escaped.is_empty() {
            return;
        }
        let escaped = Arc::clone(&self.escaped);
        for key in escaped.iter() {
            self.drop_key(key);
        }
    }

    /// Records every `&lvalue` under `stmt` in the escape set, without
    /// touching facts. Traversals seed the initial fact set with the whole
    /// function so an aliased store is handled even when the address was
    /// taken on an earlier path segment, in a sibling branch, or before a
    /// fact about the aliased variable was established.
    pub fn seed_escapes_stmt(&mut self, stmt: &Stmt) {
        walk_stmt(&mut EscapeScan(Arc::make_mut(&mut self.escaped)), stmt);
    }

    /// Expression form of [`FactSet::seed_escapes_stmt`], for branch
    /// conditions, switch scrutinees, and return values.
    pub fn seed_escapes_expr(&mut self, e: &Expr) {
        let mut scan = EscapeScan(Arc::make_mut(&mut self.escaped));
        scan.visit_expr(e);
        walk_expr(&mut scan, e);
    }

    /// Hands the accumulated escape set to `Cfg::build`, which scans a
    /// function once and shares the result with every traversal over it.
    pub(crate) fn into_escapes(self) -> Arc<BTreeSet<String>> {
        self.escaped
    }

    /// The starting fact set of a pruning traversal: no facts yet, escape
    /// set shared with the CFG's one-time scan.
    pub(crate) fn from_escapes(escaped: Arc<BTreeSet<String>>) -> FactSet {
        FactSet {
            escaped,
            ..FactSet::default()
        }
    }
}

/// Visitor collecting the keys of address-taken lvalues.
struct EscapeScan<'a>(&'a mut BTreeSet<String>);

impl Visitor for EscapeScan<'_> {
    fn visit_expr(&mut self, e: &Expr) {
        if let ExprKind::Unary {
            op: UnaryOp::AddrOf,
            operand,
        } = &e.kind
        {
            if let Some(key) = key_of(operand) {
                self.0.insert(key);
            }
        }
    }
}

/// The stable key of a trackable lvalue: a plain identifier or a member
/// chain rooted at one (`header.nh.len`). Anything else — dereferences,
/// indexing, call results — is untracked.
pub fn key_of(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::Ident(name) => {
            if is_manifest_const(name) {
                None
            } else {
                Some(name.clone())
            }
        }
        ExprKind::Member { base, field, arrow } => {
            let mut k = key_of(base)?;
            k.push_str(if *arrow { "->" } else { "." });
            k.push_str(field);
            Some(k)
        }
        ExprKind::Cast { expr, .. } => key_of(expr),
        _ => None,
    }
}

/// Extracts a comparison constant: an integer/char literal (possibly
/// negated) or a manifest-constant identifier.
pub fn const_of(e: &Expr) -> Option<Const> {
    match &e.kind {
        ExprKind::IntLit(v, _) => Some(Const::Int(*v)),
        ExprKind::CharLit(c) => Some(Const::Int(*c as i64)),
        ExprKind::Unary {
            op: UnaryOp::Neg,
            operand,
        } => match const_of(operand)? {
            // `-(i64::MIN)` has no i64 value; yield no constant rather than
            // panicking (debug) or wrapping (release).
            Const::Int(v) => v.checked_neg().map(Const::Int),
            Const::Sym(_) => None,
        },
        ExprKind::Ident(name) if is_manifest_const(name) => Some(Const::Sym(name.clone())),
        ExprKind::Cast { expr, .. } => const_of(expr),
        _ => None,
    }
}

fn int_of(e: &Expr) -> Option<i64> {
    match const_of(e)? {
        Const::Int(v) => Some(v),
        Const::Sym(_) => None,
    }
}

/// FLASH manifest constants are SHOUTING_CASE macros (`OPC_UPGRADE`,
/// `LEN_NODATA`); those are treated as opaque constant values, not as
/// mutable lvalues.
fn is_manifest_const(name: &str) -> bool {
    name.chars()
        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && name.chars().any(|c| c.is_ascii_uppercase())
}

/// Mirror a comparison so the tracked key is on the left.
fn flip(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::Le => BinaryOp::Ge,
        BinaryOp::Ge => BinaryOp::Le,
        other => other,
    }
}

/// The comparison that holds on the else-edge.
fn negate(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Ge,
        BinaryOp::Ge => BinaryOp::Lt,
        BinaryOp::Gt => BinaryOp::Le,
        BinaryOp::Le => BinaryOp::Gt,
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::parse_translation_unit;

    fn expr(src: &str) -> Expr {
        let tu = parse_translation_unit(&format!("void f(void) {{ x = {src}; }}"), "t.c").unwrap();
        let f = tu.function("f").unwrap();
        match &f.body[0].kind {
            StmtKind::Expr(e) => match &e.kind {
                ExprKind::Assign { rhs, .. } => (**rhs).clone(),
                _ => panic!("expected assignment"),
            },
            _ => panic!("expected expression statement"),
        }
    }

    #[test]
    fn correlated_negation_refuted() {
        let g = expr("gMode");
        let ng = expr("!gMode");
        let facts = FactSet::new().assume(&g, true).unwrap();
        assert!(facts.assume(&ng, true).is_none(), "gMode && !gMode");
        assert!(facts.assume(&ng, false).is_some());
        assert!(facts.assume(&g, true).is_some(), "re-assuming is fine");
    }

    #[test]
    fn eq_ne_constants() {
        let eq = expr("op == OPC_UPGRADE");
        let ne = expr("op != OPC_UPGRADE");
        let facts = FactSet::new().assume(&eq, true).unwrap();
        assert!(facts.assume(&ne, true).is_none());
        assert!(facts.assume(&eq, true).is_some());
        let facts = FactSet::new().assume(&ne, true).unwrap();
        assert!(facts.assume(&eq, true).is_none());
    }

    #[test]
    fn reversed_operands_and_int_literals() {
        let a = expr("3 == n");
        let b = expr("n == 4");
        let facts = FactSet::new().assume(&a, true).unwrap();
        assert!(facts.assume(&b, true).is_none(), "n is 3, not 4");
    }

    #[test]
    fn bounds_contradict() {
        let lt = expr("len < 8");
        let gt = expr("len > 16");
        let facts = FactSet::new().assume(&lt, true).unwrap();
        assert!(facts.assume(&gt, true).is_none());
        assert!(facts.assume(&gt, false).is_some());
        // Bound vs equality.
        let eq = expr("len == 32");
        assert!(facts.assume(&eq, true).is_none());
    }

    #[test]
    fn member_chains_tracked() {
        let has = expr("header.nh.len == LEN_WORD");
        let not = expr("header.nh.len != LEN_WORD");
        let facts = FactSet::new().assume(&has, true).unwrap();
        assert!(facts.assume(&not, true).is_none());
    }

    #[test]
    fn logical_connectives() {
        let both = expr("gMode && gBusy");
        let facts = FactSet::new().assume(&both, true).unwrap();
        assert!(facts.assume(&expr("!gMode"), true).is_none());
        assert!(facts.assume(&expr("!gBusy"), true).is_none());
        // `||` not-taken means both disjuncts were false.
        let either = expr("gMode || gBusy");
        let facts = FactSet::new().assume(&either, false).unwrap();
        assert!(facts.assume(&expr("gMode"), true).is_none());
        // `||` taken tells us nothing about individual disjuncts.
        let facts = FactSet::new().assume(&either, true).unwrap();
        assert!(facts.assume(&expr("!gMode"), true).is_some());
    }

    #[test]
    fn untracked_conditions_are_neutral() {
        for src in [
            "DIR_STATE() == DIR_SHARED",
            "gOpClass & 1",
            "MAGIC_PI_STATUS()",
        ] {
            let c = expr(src);
            let facts = FactSet::new().assume(&c, true).unwrap();
            assert!(facts.assume(&c, false).is_some(), "{src} must stay neutral");
        }
    }

    #[test]
    fn assignment_invalidates() {
        let g = expr("gMode");
        let facts = FactSet::new().assume(&g, true).unwrap();
        let tu = parse_translation_unit("void f(void) { gMode = next(); }", "t.c").unwrap();
        let f = tu.function("f").unwrap();
        let mut facts = facts;
        facts.invalidate_stmt(&f.body[0]);
        assert!(facts.assume(&expr("!gMode"), true).is_some());
    }

    #[test]
    fn calls_do_not_clobber() {
        let g = expr("gMode");
        let facts = FactSet::new().assume(&g, true).unwrap();
        let tu = parse_translation_unit("void f(void) { DB_FREE(h); }", "t.c").unwrap();
        let f = tu.function("f").unwrap();
        let mut facts = facts;
        facts.invalidate_stmt(&f.body[0]);
        assert!(facts.assume(&expr("!gMode"), true).is_none());
    }

    #[test]
    fn address_of_clobbers() {
        let g = expr("gMode");
        let mut facts = FactSet::new().assume(&g, true).unwrap();
        let tu = parse_translation_unit("void f(void) { probe(&gMode); }", "t.c").unwrap();
        facts.invalidate_stmt(&tu.function("f").unwrap().body[0]);
        assert!(facts.assume(&expr("!gMode"), true).is_some());
    }

    #[test]
    fn deref_store_clobbers_escaped() {
        let tu = parse_translation_unit("void f(void) { p = &gMode; *p = 0; }", "t.c").unwrap();
        let f = tu.function("f").unwrap();
        let mut facts = FactSet::new();
        facts.invalidate_stmt(&f.body[0]); // `p = &gMode`: gMode escapes
        let mut facts = facts.assume(&expr("gMode"), true).unwrap();
        facts.invalidate_stmt(&f.body[1]); // `*p = 0` may write gMode
        assert!(facts.assume(&expr("!gMode"), true).is_some());
    }

    #[test]
    fn index_store_clobbers_escaped() {
        let tu =
            parse_translation_unit("void f(void) { probe(&len); buf[i] = 0; }", "t.c").unwrap();
        let f = tu.function("f").unwrap();
        let mut facts = FactSet::new();
        facts.invalidate_stmt(&f.body[0]);
        let mut facts = facts.assume(&expr("len < 8"), true).unwrap();
        facts.invalidate_stmt(&f.body[1]); // `buf` could alias `&len`
        assert!(facts.assume(&expr("len > 16"), true).is_some());
    }

    #[test]
    fn untracked_store_without_escape_is_neutral() {
        // No address was taken, so an index store cannot alias `gMode` and
        // the pruning power is retained.
        let facts = FactSet::new().assume(&expr("gMode"), true).unwrap();
        let tu = parse_translation_unit("void f(void) { buf[i] = 0; }", "t.c").unwrap();
        let mut facts = facts;
        facts.invalidate_stmt(&tu.function("f").unwrap().body[0]);
        assert!(facts.assume(&expr("!gMode"), true).is_none());
    }

    #[test]
    fn seeded_escape_covers_earlier_or_sibling_address_taking() {
        // The address is taken in a branch this path never executed; with
        // the function-wide seed the `*p = 0` store still clobbers gMode.
        let tu = parse_translation_unit("void f(void) { if (c) { p = &gMode; } *p = 0; }", "t.c")
            .unwrap();
        let f = tu.function("f").unwrap();
        let mut seeded = FactSet::new();
        for s in &f.body {
            seeded.seed_escapes_stmt(s);
        }
        let mut facts = seeded.assume(&expr("gMode"), true).unwrap();
        facts.invalidate_stmt(&f.body[1]);
        assert!(facts.assume(&expr("!gMode"), true).is_some());
    }

    #[test]
    fn extreme_literal_bounds_are_neutral() {
        let len = Expr::synth(ExprKind::Ident("len".into()));
        let cmp = |op: BinaryOp, rhs: i64| {
            Expr::synth(ExprKind::Binary {
                op,
                lhs: Box::new(len.clone()),
                rhs: Box::new(Expr::synth(ExprKind::IntLit(rhs, rhs.to_string()))),
            })
        };
        // `len < i64::MIN` / `len > i64::MAX`: the normalized bound would
        // overflow; no fact is recorded and nothing panics or wraps.
        let facts = FactSet::new()
            .assume(&cmp(BinaryOp::Lt, i64::MIN), true)
            .unwrap();
        assert!(facts.assume(&cmp(BinaryOp::Gt, i64::MAX), true).is_some());
        // The else-edge of `len >= i64::MIN` normalizes to the same `< MIN`.
        let facts = FactSet::new()
            .assume(&cmp(BinaryOp::Ge, i64::MIN), false)
            .unwrap();
        assert!(facts.assume(&cmp(BinaryOp::Le, i64::MAX), false).is_some());
    }

    #[test]
    fn negated_min_literal_is_no_constant() {
        let neg_min = Expr::synth(ExprKind::Unary {
            op: UnaryOp::Neg,
            operand: Box::new(Expr::synth(ExprKind::IntLit(
                i64::MIN,
                i64::MIN.to_string(),
            ))),
        });
        assert_eq!(const_of(&neg_min), None);
    }

    #[test]
    fn member_invalidated_by_base_assignment() {
        let c = expr("header.nh.len == LEN_WORD");
        let mut facts = FactSet::new().assume(&c, true).unwrap();
        let tu = parse_translation_unit("void f(void) { header = fresh(); }", "t.c").unwrap();
        facts.invalidate_stmt(&tu.function("f").unwrap().body[0]);
        assert!(facts
            .assume(&expr("header.nh.len != LEN_WORD"), true)
            .is_some());
    }

    #[test]
    fn switch_case_facts() {
        let scrut = expr("gOpClass");
        let zero = expr("0");
        let one = expr("1");
        let all = vec![Const::Int(0), Const::Int(1)];
        let on_zero = FactSet::new()
            .assume_case(&scrut, Some(&zero), &all)
            .unwrap();
        // In the `case 0:` arm a later `case 1` test is infeasible.
        assert!(on_zero.assume_case(&scrut, Some(&one), &all).is_none());
        assert!(on_zero.assume_case(&scrut, Some(&zero), &all).is_some());
        // The default edge excludes every labelled constant.
        let dflt = FactSet::new().assume_case(&scrut, None, &all).unwrap();
        assert!(dflt.assume_case(&scrut, Some(&zero), &all).is_none());
        assert!(dflt.assume_case(&scrut, Some(&one), &all).is_none());
    }

    #[test]
    fn constant_conditions() {
        assert!(FactSet::new().assume(&expr("0"), true).is_none());
        assert!(FactSet::new().assume(&expr("0"), false).is_some());
        assert!(FactSet::new().assume(&expr("1"), true).is_some());
        assert!(FactSet::new().assume(&expr("1"), false).is_none());
    }

    #[test]
    fn distinct_symbolic_constants_not_assumed_unequal() {
        // LEN_WORD and LEN_CACHELINE might expand to the same value; seeing
        // `len == LEN_WORD` must not refute `len == LEN_CACHELINE`.
        let a = expr("len == LEN_WORD");
        let b = expr("len == LEN_CACHELINE");
        let facts = FactSet::new().assume(&a, true).unwrap();
        assert!(facts.assume(&b, true).is_some());
    }
}
