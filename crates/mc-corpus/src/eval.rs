//! Joining checker reports against the planted-defect manifest.
//!
//! This is the evaluation harness behind the table reproductions: each
//! report is attributed to the planted item in the same `(checker,
//! function)` slot; reports with no slot are *unexpected* (in a correct
//! reproduction there are none), and planted items that received fewer
//! reports than expected are *missed*.

use crate::{Planted, PlantedKind, Protocol};
use mc_driver::Report;
use std::collections::BTreeMap;

/// The outcome of evaluating one protocol's reports against its manifest.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// Planted items with the number of reports attributed to each.
    pub matched: Vec<(Planted, usize)>,
    /// Planted items that received fewer reports than expected.
    pub missed: Vec<Planted>,
    /// Reports that match no planted item.
    pub unexpected: Vec<Report>,
}

impl Outcome {
    /// Total reports attributed to planted items of the given kind and
    /// checker (empty checker matches all).
    pub fn reports_of(&self, checker: &str, kind: PlantedKind) -> usize {
        self.matched
            .iter()
            .filter(|(p, _)| p.kind == kind && (checker.is_empty() || p.checker == checker))
            .map(|(_, n)| *n)
            .sum()
    }

    /// Whether every planted item was fully found and nothing unexpected
    /// was reported.
    pub fn is_exact(&self) -> bool {
        self.missed.is_empty() && self.unexpected.is_empty()
    }
}

/// Evaluates `reports` (from running the checker suite over `protocol`)
/// against the protocol's manifest, assuming the driver's default
/// path-feasibility pruning was on.
pub fn evaluate(protocol: &Protocol, reports: &[Report]) -> Outcome {
    evaluate_with(protocol, reports, true)
}

/// Evaluates `reports` against the manifest under an explicit pruning
/// setting: each planted item expects [`crate::Planted::expected`]`(pruned)`
/// reports, so prunable false positives are *required absent* when `pruned`
/// and *required present* when not.
pub fn evaluate_with(protocol: &Protocol, reports: &[Report], pruned: bool) -> Outcome {
    evaluate_full(protocol, reports, pruned, false, false)
}

/// Evaluates `reports` under explicit pruning, call-site resolution, and
/// symbolic refutation settings: each planted item expects
/// [`crate::Planted::expected_full`]`(pruned, interproc, refute)` reports.
/// Summary-resolvable false positives (frees in wrappers, lengths assigned
/// in helpers, un-annotated write-back subroutines) are *required absent*
/// when `interproc`; refutable false positives (infeasible guard
/// correlations) are *required absent* when `refute` — the caller passes
/// the reports that survived the refutation pass, i.e. with `refuted`
/// verdicts already dropped.
pub fn evaluate_full(
    protocol: &Protocol,
    reports: &[Report],
    pruned: bool,
    interproc: bool,
    refute: bool,
) -> Outcome {
    // Group reports by (checker, function).
    let mut by_slot: BTreeMap<(String, String), Vec<Report>> = BTreeMap::new();
    for r in reports {
        by_slot
            .entry((r.checker.clone(), r.function.clone()))
            .or_default()
            .push(r.clone());
    }
    let mut out = Outcome::default();
    for planted in &protocol.manifest {
        let key = (planted.checker.clone(), planted.function.clone());
        let got = by_slot.remove(&key).unwrap_or_default();
        let n = got.len();
        let expected = planted.expected_full(pruned, interproc, refute);
        if n < expected {
            out.missed.push(planted.clone());
        }
        out.matched.push((planted.clone(), n.min(expected)));
        // Surplus reports in a planted slot are unexpected.
        if n > expected {
            out.unexpected.extend(got.into_iter().skip(expected));
        }
    }
    for (_, rest) in by_slot {
        out.unexpected.extend(rest);
    }
    out
}

/// Per-checker error / false-positive tallies for one protocol, in the
/// shape of the paper's tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Tally {
    /// Reports attributed to planted bugs.
    pub errors: usize,
    /// Reports attributed to planted false positives.
    pub false_positives: usize,
    /// Reports attributed to minor violations.
    pub minor: usize,
    /// Reports with no planted counterpart (should be zero).
    pub unexpected: usize,
}

/// Tallies the outcome for one checker.
pub fn tally(outcome: &Outcome, checker: &str) -> Tally {
    Tally {
        errors: outcome.reports_of(checker, PlantedKind::Bug)
            + outcome.reports_of(checker, PlantedKind::Incident),
        false_positives: outcome.reports_of(checker, PlantedKind::FalsePositive),
        minor: outcome.reports_of(checker, PlantedKind::Minor),
        unexpected: outcome
            .unexpected
            .iter()
            .filter(|r| r.checker == checker)
            .count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::Span;

    fn planted(checker: &str, function: &str, kind: PlantedKind, n: usize) -> Planted {
        Planted {
            checker: checker.into(),
            file: "f.c".into(),
            function: function.into(),
            kind,
            expected_reports: n,
            expected_reports_pruned: n,
            expected_reports_interproc: n,
            expected_reports_refute: n,
            note: String::new(),
        }
    }

    fn report(checker: &str, function: &str) -> Report {
        Report::error(checker, "f.c", function, Span::new(1, 1), "m")
    }

    fn proto(manifest: Vec<Planted>) -> Protocol {
        Protocol {
            name: "t".into(),
            files: vec![],
            spec: Default::default(),
            manifest,
        }
    }

    #[test]
    fn exact_match() {
        let p = proto(vec![planted("c1", "f1", PlantedKind::Bug, 1)]);
        let out = evaluate(&p, &[report("c1", "f1")]);
        assert!(out.is_exact());
        assert_eq!(out.reports_of("c1", PlantedKind::Bug), 1);
    }

    #[test]
    fn missed_detection() {
        let p = proto(vec![planted("c1", "f1", PlantedKind::Bug, 1)]);
        let out = evaluate(&p, &[]);
        assert_eq!(out.missed.len(), 1);
        assert!(!out.is_exact());
    }

    #[test]
    fn unexpected_report() {
        let p = proto(vec![]);
        let out = evaluate(&p, &[report("c1", "somewhere")]);
        assert_eq!(out.unexpected.len(), 1);
    }

    #[test]
    fn surplus_in_slot_is_unexpected() {
        let p = proto(vec![planted("c1", "f1", PlantedKind::FalsePositive, 1)]);
        let out = evaluate(&p, &[report("c1", "f1"), report("c1", "f1")]);
        // Reports are deduplicated upstream normally; here two identical
        // ones: one matches, one is surplus.
        assert_eq!(out.unexpected.len(), 1);
        assert_eq!(out.reports_of("c1", PlantedKind::FalsePositive), 1);
    }

    #[test]
    fn prunable_false_positive_expected_absent_when_pruned() {
        let mut fp = planted("c1", "f1", PlantedKind::FalsePositive, 2);
        fp.expected_reports_pruned = 0;
        assert!(fp.prunable());
        let p = proto(vec![fp]);
        // With pruning on (the default), the slot must be empty...
        let out = evaluate(&p, &[]);
        assert!(out.is_exact());
        // ...and any report there is unexpected.
        let out = evaluate(&p, &[report("c1", "f1")]);
        assert_eq!(out.unexpected.len(), 1);
        // Without pruning, the two reports are required.
        let out = evaluate_with(&p, &[report("c1", "f1"), report("c1", "f1")], false);
        assert!(out.is_exact());
        let out = evaluate_with(&p, &[], false);
        assert_eq!(out.missed.len(), 1);
    }

    #[test]
    fn interproc_resolvable_false_positive_expected_absent_when_resolved() {
        let mut fp = planted("directory", "NIGet", PlantedKind::FalsePositive, 1);
        fp.expected_reports_interproc = 0;
        assert!(fp.interproc_resolvable());
        assert!(!fp.prunable());
        let p = proto(vec![fp]);
        // Local analysis (with or without pruning) must report it...
        let out = evaluate_full(&p, &[report("directory", "NIGet")], true, false, false);
        assert!(out.is_exact());
        // ...the summary engine must not...
        let out = evaluate_full(&p, &[], true, true, false);
        assert!(out.is_exact());
        // ...and a surviving report under interproc is unexpected.
        let out = evaluate_full(&p, &[report("directory", "NIGet")], true, true, false);
        assert_eq!(out.unexpected.len(), 1);
        // Resolution is independent of pruning: interproc removes it even
        // in an unpruned run.
        let out = evaluate_full(&p, &[], false, true, false);
        assert!(out.is_exact());
    }

    #[test]
    fn refutable_false_positive_expected_absent_when_refuted() {
        let mut fp = planted("send_wait", "PISpin", PlantedKind::FalsePositive, 1);
        fp.expected_reports_refute = 0;
        assert!(fp.refutable());
        assert!(!fp.prunable());
        assert!(!fp.interproc_resolvable());
        let p = proto(vec![fp]);
        // Without the refutation pass the report is required...
        let out = evaluate_full(&p, &[report("send_wait", "PISpin")], true, true, false);
        assert!(out.is_exact());
        // ...with it, the slot must be empty (the caller drops refuted
        // reports before evaluating)...
        let out = evaluate_full(&p, &[], true, true, true);
        assert!(out.is_exact());
        // ...and a survivor is unexpected.
        let out = evaluate_full(&p, &[report("send_wait", "PISpin")], true, true, true);
        assert_eq!(out.unexpected.len(), 1);
        // Refutation composes with the other passes but does not require
        // them.
        let out = evaluate_full(&p, &[], false, false, true);
        assert!(out.is_exact());
    }

    #[test]
    fn tally_separates_kinds() {
        let p = proto(vec![
            planted("c1", "f1", PlantedKind::Bug, 1),
            planted("c1", "f2", PlantedKind::FalsePositive, 2),
            planted("c1", "f3", PlantedKind::Minor, 1),
        ]);
        let out = evaluate(
            &p,
            &[
                report("c1", "f1"),
                report("c1", "f2"),
                report("c1", "f2"),
                report("c1", "f3"),
            ],
        );
        let t = tally(&out, "c1");
        assert_eq!(t.errors, 1);
        assert_eq!(t.false_positives, 2);
        assert_eq!(t.minor, 1);
        assert_eq!(t.unexpected, 0);
    }
}
