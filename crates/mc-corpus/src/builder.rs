//! Low-level source construction: a tiny builder that accumulates the body
//! of one C function and renders it with the FLASH prologue conventions.

/// How a routine is rendered (hooks, classification prefix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FnKind {
    /// Hardware handler: `HANDLER_DEFS(); HANDLER_PROLOGUE();`.
    Hardware,
    /// Software handler: `SWHANDLER_DEFS(); SWHANDLER_PROLOGUE();`.
    Software,
    /// Ordinary procedure: `PROC_DEFS(); PROC_PROLOGUE();`.
    Procedure,
}

/// Accumulates one function body.
#[derive(Debug, Clone)]
pub struct FuncBuf {
    /// Function name.
    pub name: String,
    /// Kind (decides the hooks).
    pub kind: FnKind,
    /// Return type (only procedures ever deviate from `void`).
    pub ret: &'static str,
    /// When `true`, the simulator hooks are omitted (planting a Table 5
    /// violation).
    pub omit_hooks: bool,
    body: Vec<String>,
    /// Number of local declarations emitted (the Table 5 "Vars" metric).
    pub decls: usize,
    indent: usize,
}

impl FuncBuf {
    /// Starts a function of the given kind.
    pub fn new(name: impl Into<String>, kind: FnKind) -> FuncBuf {
        FuncBuf {
            name: name.into(),
            kind,
            ret: "void",
            omit_hooks: false,
            body: Vec::new(),
            decls: 0,
            indent: 1,
        }
    }

    /// Appends one body line at the current indentation.
    pub fn line(&mut self, s: impl Into<String>) -> &mut Self {
        let pad = "    ".repeat(self.indent);
        self.body.push(format!("{pad}{}", s.into()));
        self
    }

    /// Appends a local declaration `int name = init;`, counting it.
    pub fn decl(&mut self, name: &str, init: &str) -> &mut Self {
        self.decls += 1;
        self.line(format!("int {name} = {init};"))
    }

    /// Opens a block: writes `header {` and indents.
    pub fn open(&mut self, header: &str) -> &mut Self {
        self.line(format!("{header} {{"));
        self.indent += 1;
        self
    }

    /// Closes the innermost block.
    pub fn close(&mut self) -> &mut Self {
        self.indent -= 1;
        self.line("}")
    }

    /// Closes with an `else {` continuation.
    pub fn else_open(&mut self) -> &mut Self {
        self.indent -= 1;
        self.line("} else {");
        self.indent += 1;
        self
    }

    /// Current number of body lines.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the body is still empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Renders the complete function definition.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{} {}(void)\n{{\n", self.ret, self.name));
        if !self.omit_hooks {
            let (defs, prologue) = match self.kind {
                FnKind::Hardware => ("HANDLER_DEFS", "HANDLER_PROLOGUE"),
                FnKind::Software => ("SWHANDLER_DEFS", "SWHANDLER_PROLOGUE"),
                FnKind::Procedure => ("PROC_DEFS", "PROC_PROLOGUE"),
            };
            out.push_str(&format!("    {defs}();\n    {prologue}();\n"));
        }
        for l in &self.body {
            out.push_str(l);
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_hooks_and_body() {
        let mut f = FuncBuf::new("NITest", FnKind::Hardware);
        f.decl("x", "0");
        f.open("if (x)");
        f.line("x = 1;");
        f.close();
        let src = f.render();
        assert!(src.starts_with("void NITest(void)"));
        assert!(src.contains("HANDLER_DEFS();"));
        assert!(src.contains("    int x = 0;"));
        assert!(src.contains("    if (x) {"));
        assert_eq!(f.decls, 1);
        // And it parses.
        let tu = mc_ast::parse_translation_unit(&src, "t.c").unwrap();
        assert_eq!(tu.functions().count(), 1);
    }

    #[test]
    fn omit_hooks_flag() {
        let f = FuncBuf::new("NIBad", FnKind::Hardware);
        let mut f = f;
        f.omit_hooks = true;
        f.line("x = 1;");
        assert!(!f.render().contains("HANDLER_DEFS"));
    }

    #[test]
    fn else_blocks_render() {
        let mut f = FuncBuf::new("p_helper", FnKind::Procedure);
        f.open("if (a)");
        f.line("b();");
        f.else_open();
        f.line("c();");
        f.close();
        let src = f.render();
        assert!(src.contains("} else {"));
        mc_ast::parse_translation_unit(&src, "t.c").unwrap();
    }

    #[test]
    fn procedure_ret_type() {
        let mut f = FuncBuf::new("cf_release", FnKind::Procedure);
        f.ret = "int";
        f.line("return 0;");
        let src = f.render();
        assert!(src.starts_with("int cf_release(void)"));
        mc_ast::parse_translation_unit(&src, "t.c").unwrap();
    }
}
