//! A small deterministic RNG for corpus generation.
//!
//! The generator only ever needs seeded Bernoulli draws, so instead of an
//! external `rand` dependency (unavailable in offline builds) it uses a
//! splitmix64 stream. Determinism contract: the same seed always yields
//! the same protocol on every platform, which the manifest-exactness tests
//! rely on.

/// A seeded splitmix64 generator.
#[derive(Debug, Clone)]
pub struct CorpusRng {
    state: u64,
}

impl CorpusRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> CorpusRng {
        CorpusRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Bernoulli draw with probability `p`, clamped to `[0, 1]` (the
    /// generator occasionally passes a residual budget slightly outside
    /// that range).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = CorpusRng::seed_from_u64(0xF1A5);
        let mut b = CorpusRng::seed_from_u64(0xF1A5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut r = CorpusRng::seed_from_u64(7);
        for _ in 0..50 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
        // Out-of-range probabilities are clamped, not panicking.
        assert!(r.gen_bool(1.5));
        assert!(!r.gen_bool(-0.5));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut r = CorpusRng::seed_from_u64(42);
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}
