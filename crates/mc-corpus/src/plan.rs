//! The per-protocol generation plan: structural targets from Table 1/5 and
//! the planted-defect quotas from Tables 2–6 and §7 of the paper.
//!
//! Every number here is taken directly from the paper so the regenerated
//! tables can be compared one-to-one. The generator treats the *operation
//! quotas* (reads, sends, allocations, directory operations, send-waits)
//! and the *planted-defect counts* as exact; lines of code and path counts
//! are structural targets it approximates.

/// The names of the five protocols plus the shared code, in table order.
pub const PROTOCOL_NAMES: [&str; 6] = ["bitvector", "dyn_ptr", "sci", "coma", "rac", "common"];

/// Structural and quota plan for one protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtoPlan {
    /// Protocol name.
    pub name: &'static str,
    /// Table 1: lines of code target.
    pub loc: usize,
    /// Table 1: number of entry-to-exit paths.
    pub paths: u64,
    /// Table 1: average path length (statements).
    pub avg_path_len: u64,
    /// Table 1: maximum path length (statements).
    pub max_path_len: u64,
    /// Table 5: routines (handlers + procedures).
    pub routines: usize,
    /// Table 5: declared variables.
    pub vars: usize,
    /// Table 2 "Applied": `MISCBUS_READ_DB` occurrences.
    pub reads: usize,
    /// Table 3 "Applied": total send occurrences.
    pub sends: usize,
    /// Table 6 "Applied": `DB_ALLOC` occurrences.
    pub allocs: usize,
    /// Table 6 "Applied": directory operations.
    pub dir_ops: usize,
    /// Table 6 "Applied": waited sends plus wait calls.
    pub send_waits: usize,

    // ---- planted defects ----
    /// Table 2: buffer-race bugs.
    pub race_bugs: usize,
    /// Table 2: buffer-race false positives (intentional debug reads).
    pub race_fps: usize,
    /// Table 3: message-length bugs.
    pub msglen_bugs: usize,
    /// Table 3: message-length false positives (run-time selected sends;
    /// each planted site yields two reports and counts as two).
    pub msglen_fps: usize,
    /// Message-length false positives from a length assigned inside a
    /// helper — resolved by the summary engine (`--interproc`), reported
    /// by the per-function machine.
    pub msglen_fp_helper: usize,
    /// Table 4: buffer-management bugs (double frees / leaks).
    pub buf_bugs: usize,
    /// Table 4: of `buf_bugs`, how many are leaks (the rest double frees).
    pub buf_bug_leaks: usize,
    /// Table 4: minor violations (unreachable/legacy code).
    pub buf_minor: usize,
    /// Table 4: useful annotations to plant (`has_buffer`, `no_free_needed`).
    pub buf_annotations: usize,
    /// Table 4: useless-annotation (false-positive) reports. Correlated
    /// branch sites yield two reports each; data-dependent frees one.
    pub buf_fps: usize,
    /// Buffer-management false positives from a free hidden inside an
    /// un-annotated wrapper — resolved by the summary engine.
    pub buf_fp_wrapper: usize,
    /// Table 5: routines with missing simulator hooks (reported).
    pub hook_bugs: usize,
    /// Table 5: hook violations inside unimplemented (`FATAL_ERROR`)
    /// routines — present in the code but not reported.
    pub hook_suppressed: usize,
    /// §7: lane-quota bugs.
    pub lane_bugs: usize,
    /// Table 6: allocation-check false positives (debug prints).
    pub alloc_fps: usize,
    /// Table 6: directory bugs.
    pub dir_bugs: usize,
    /// Table 6 §9.1: directory FPs from un-annotated write-back helpers.
    pub dir_fp_subroutine: usize,
    /// Table 6 §9.1: directory FPs from speculative back-out without NAK.
    pub dir_fp_speculative: usize,
    /// Table 6 §9.1: directory FPs from explicit address computation.
    pub dir_fp_abstraction: usize,
    /// Table 6: send-wait false positives (manual status-register spins).
    pub sw_fps: usize,
    /// §11: manual refcount-increment calls (exactly one in all of FLASH).
    pub refcount_incidents: usize,
}

/// The six plans, in [`PROTOCOL_NAMES`] order.
pub const PLANS: [ProtoPlan; 6] = [
    ProtoPlan {
        name: "bitvector",
        loc: 10_386,
        paths: 486,
        avg_path_len: 87,
        max_path_len: 563,
        routines: 168,
        vars: 489,
        reads: 14,
        sends: 205,
        allocs: 17,
        dir_ops: 214,
        send_waits: 32,
        race_bugs: 4,
        race_fps: 0,
        msglen_bugs: 3,
        msglen_fps: 0,
        msglen_fp_helper: 0,
        buf_bugs: 2,
        buf_bug_leaks: 0,
        buf_minor: 1,
        buf_annotations: 0,
        buf_fps: 1,
        buf_fp_wrapper: 0,
        hook_bugs: 2,
        hook_suppressed: 0,
        lane_bugs: 1,
        alloc_fps: 0,
        dir_bugs: 1,
        dir_fp_subroutine: 1,
        dir_fp_speculative: 0,
        dir_fp_abstraction: 2,
        sw_fps: 2,
        refcount_incidents: 1,
    },
    ProtoPlan {
        name: "dyn_ptr",
        loc: 18_438,
        paths: 2322,
        avg_path_len: 135,
        max_path_len: 399,
        routines: 227,
        vars: 768,
        reads: 16,
        sends: 316,
        allocs: 19,
        dir_ops: 382,
        send_waits: 38,
        race_bugs: 0,
        race_fps: 0,
        msglen_bugs: 7,
        msglen_fps: 0,
        msglen_fp_helper: 1,
        buf_bugs: 2,
        buf_bug_leaks: 0,
        buf_minor: 2,
        buf_annotations: 3,
        buf_fps: 3,
        buf_fp_wrapper: 0,
        hook_bugs: 4,
        hook_suppressed: 0,
        lane_bugs: 1,
        alloc_fps: 2,
        dir_bugs: 0,
        dir_fp_subroutine: 4,
        dir_fp_speculative: 1,
        dir_fp_abstraction: 8,
        sw_fps: 2,
        refcount_incidents: 0,
    },
    ProtoPlan {
        name: "sci",
        loc: 11_473,
        paths: 1051,
        avg_path_len: 73,
        max_path_len: 330,
        routines: 214,
        vars: 794,
        reads: 2,
        sends: 308,
        allocs: 5,
        dir_ops: 88,
        send_waits: 11,
        race_bugs: 0,
        race_fps: 0,
        msglen_bugs: 0,
        msglen_fps: 0,
        msglen_fp_helper: 0,
        buf_bugs: 3,
        buf_bug_leaks: 1,
        buf_minor: 2,
        buf_annotations: 10,
        buf_fps: 10,
        buf_fp_wrapper: 1,
        hook_bugs: 0,
        hook_suppressed: 3,
        lane_bugs: 0,
        alloc_fps: 0,
        dir_bugs: 0,
        dir_fp_subroutine: 0,
        dir_fp_speculative: 0,
        dir_fp_abstraction: 1,
        sw_fps: 0,
        refcount_incidents: 0,
    },
    ProtoPlan {
        name: "coma",
        loc: 17_031,
        paths: 1131,
        avg_path_len: 135,
        max_path_len: 244,
        routines: 193,
        vars: 648,
        reads: 0,
        sends: 302,
        allocs: 32,
        dir_ops: 659,
        send_waits: 7,
        race_bugs: 0,
        race_fps: 0,
        msglen_bugs: 0,
        msglen_fps: 2,
        msglen_fp_helper: 0,
        buf_bugs: 0,
        buf_bug_leaks: 0,
        buf_minor: 0,
        buf_annotations: 0,
        buf_fps: 0,
        buf_fp_wrapper: 0,
        hook_bugs: 3,
        hook_suppressed: 0,
        lane_bugs: 0,
        alloc_fps: 0,
        dir_bugs: 0,
        dir_fp_subroutine: 5,
        dir_fp_speculative: 0,
        dir_fp_abstraction: 0,
        sw_fps: 0,
        refcount_incidents: 0,
    },
    ProtoPlan {
        name: "rac",
        loc: 14_396,
        paths: 1364,
        avg_path_len: 133,
        max_path_len: 516,
        routines: 200,
        vars: 668,
        reads: 10,
        sends: 346,
        allocs: 20,
        dir_ops: 424,
        send_waits: 35,
        race_bugs: 0,
        race_fps: 0,
        msglen_bugs: 8,
        msglen_fps: 0,
        msglen_fp_helper: 0,
        buf_bugs: 2,
        buf_bug_leaks: 0,
        buf_minor: 0,
        buf_annotations: 2,
        buf_fps: 4,
        buf_fp_wrapper: 0,
        hook_bugs: 2,
        hook_suppressed: 0,
        lane_bugs: 0,
        alloc_fps: 0,
        dir_bugs: 0,
        dir_fp_subroutine: 4,
        dir_fp_speculative: 2,
        dir_fp_abstraction: 3,
        sw_fps: 2,
        refcount_incidents: 0,
    },
    ProtoPlan {
        name: "common",
        loc: 8_783,
        paths: 1165,
        avg_path_len: 183,
        max_path_len: 461,
        routines: 62,
        vars: 398,
        reads: 17,
        sends: 73,
        allocs: 4,
        dir_ops: 1,
        send_waits: 2,
        race_bugs: 0,
        race_fps: 1,
        msglen_bugs: 0,
        msglen_fps: 0,
        msglen_fp_helper: 0,
        buf_bugs: 0,
        buf_bug_leaks: 0,
        buf_minor: 1,
        buf_annotations: 3,
        buf_fps: 7,
        buf_fp_wrapper: 0,
        hook_bugs: 0,
        hook_suppressed: 0,
        lane_bugs: 0,
        alloc_fps: 0,
        dir_bugs: 0,
        dir_fp_subroutine: 0,
        dir_fp_speculative: 0,
        dir_fp_abstraction: 0,
        sw_fps: 2,
        refcount_incidents: 0,
    },
];

/// Looks up the plan for a protocol.
pub fn plan_for(name: &str) -> Option<&'static ProtoPlan> {
    PLANS.iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper_headlines() {
        let total_bugs: usize = PLANS
            .iter()
            .map(|p| {
                p.race_bugs + p.msglen_bugs + p.buf_bugs + p.hook_bugs + p.lane_bugs + p.dir_bugs
            })
            .sum();
        // Table 7: 34 bugs total (9 buffer mgmt + 18 msglen + 2 lanes +
        // 4 race + 0 alloc + 1 directory + 0 send-wait + 11 exec... the
        // paper's Table 7 counts exec-restriction hook omissions under
        // "Execution-restriction: 0" and lists them in Table 5 separately;
        // its 34 = 9 + 18 + 2 + 4 + 0 + 1 + 0 + 0. Our plan plants the 11
        // hook omissions as well, so the grand planted-bug total is 45,
        // of which the Table 7 accounting covers 34.
        assert_eq!(total_bugs, 34 + 11);
        let table7_bugs: usize = PLANS
            .iter()
            .map(|p| p.race_bugs + p.msglen_bugs + p.buf_bugs + p.lane_bugs + p.dir_bugs)
            .sum();
        assert_eq!(table7_bugs, 34);
    }

    #[test]
    fn table2_applied_total() {
        let reads: usize = PLANS.iter().map(|p| p.reads).sum();
        assert_eq!(reads, 59);
    }

    #[test]
    fn table3_totals() {
        assert_eq!(PLANS.iter().map(|p| p.msglen_bugs).sum::<usize>(), 18);
        assert_eq!(PLANS.iter().map(|p| p.msglen_fps).sum::<usize>(), 2);
        assert_eq!(PLANS.iter().map(|p| p.sends).sum::<usize>(), 1550);
    }

    #[test]
    fn table4_totals() {
        assert_eq!(PLANS.iter().map(|p| p.buf_bugs).sum::<usize>(), 9);
        assert_eq!(PLANS.iter().map(|p| p.buf_minor).sum::<usize>(), 6);
        assert_eq!(PLANS.iter().map(|p| p.buf_annotations).sum::<usize>(), 18);
        assert_eq!(PLANS.iter().map(|p| p.buf_fps).sum::<usize>(), 25);
    }

    #[test]
    fn table5_totals() {
        assert_eq!(PLANS.iter().map(|p| p.hook_bugs).sum::<usize>(), 11);
        assert_eq!(PLANS.iter().map(|p| p.routines).sum::<usize>(), 1064);
        assert_eq!(PLANS.iter().map(|p| p.vars).sum::<usize>(), 3765);
    }

    #[test]
    fn table6_totals() {
        assert_eq!(PLANS.iter().map(|p| p.alloc_fps).sum::<usize>(), 2);
        assert_eq!(PLANS.iter().map(|p| p.allocs).sum::<usize>(), 97);
        let dir_fps: usize = PLANS
            .iter()
            .map(|p| p.dir_fp_subroutine + p.dir_fp_speculative + p.dir_fp_abstraction)
            .sum();
        assert_eq!(dir_fps, 31);
        assert_eq!(PLANS.iter().map(|p| p.dir_bugs).sum::<usize>(), 1);
        assert_eq!(PLANS.iter().map(|p| p.dir_ops).sum::<usize>(), 1768);
        assert_eq!(PLANS.iter().map(|p| p.sw_fps).sum::<usize>(), 8);
        assert_eq!(PLANS.iter().map(|p| p.send_waits).sum::<usize>(), 125);
    }

    #[test]
    fn interproc_resolvable_false_positives() {
        // The false positives the summary engine removes: every
        // un-annotated write-back subroutine site plus the two planted
        // helper-hidden sites (length assigned in a helper, free hidden in
        // a wrapper). 16 of the 47 pruned-baseline false positives, so the
        // `--interproc` corpus run must land at 31 — below the paper's 45.
        let resolvable: usize = PLANS
            .iter()
            .map(|p| p.dir_fp_subroutine + p.msglen_fp_helper + p.buf_fp_wrapper)
            .sum();
        assert_eq!(resolvable, 16);
        assert_eq!(PLANS.iter().map(|p| p.msglen_fp_helper).sum::<usize>(), 1);
        assert_eq!(PLANS.iter().map(|p| p.buf_fp_wrapper).sum::<usize>(), 1);
    }

    #[test]
    fn lanes_and_incidents() {
        assert_eq!(PLANS.iter().map(|p| p.lane_bugs).sum::<usize>(), 2);
        assert_eq!(PLANS.iter().map(|p| p.refcount_incidents).sum::<usize>(), 1);
    }

    #[test]
    fn loc_total_roughly_80k() {
        let loc: usize = PLANS.iter().map(|p| p.loc).sum();
        assert_eq!(loc, 80_507);
    }
}
