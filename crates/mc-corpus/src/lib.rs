//! # mc-corpus
//!
//! A deterministic synthetic stand-in for the (proprietary) Stanford FLASH
//! protocol sources: five cache-coherence protocols plus shared common
//! code, written in the FLASH macro vocabulary, with bugs, false-positive
//! triggers, and suppression annotations **seeded at exactly the
//! per-protocol counts the paper reports** in Tables 2–6 and §7.
//!
//! Each generated [`Protocol`] carries:
//!
//! * `files` — compilable C sources in the [`mc_checkers::flash`] idiom,
//! * `spec` — the [`mc_checkers::flash::FlashSpec`] tables (handler
//!   classification, lane quotas, routine tables) the checkers consult,
//! * `manifest` — the ground truth: every planted defect with the checker
//!   expected to find it and the number of reports it should produce.
//!
//! The [`eval`] module joins checker reports against the manifest, which is
//! how the table reproductions classify reports into errors and false
//! positives (and how the integration tests prove the checkers find all
//! planted defects and nothing else).
//!
//! # Example
//!
//! ```
//! use mc_corpus::{generate, plan::plan_for, DEFAULT_SEED};
//!
//! let proto = generate(plan_for("bitvector").unwrap(), DEFAULT_SEED);
//! assert_eq!(proto.name, "bitvector");
//! assert!(proto.manifest.iter().any(|p| p.checker == "wait_for_db"));
//! ```

#![warn(missing_docs)]

mod builder;
pub mod eval;
mod generate;
pub mod plan;
pub mod rng;

pub use builder::{FnKind, FuncBuf};
pub use generate::{generate, generate_all, generate_fleet, DEFAULT_SEED};

use mc_checkers::flash::FlashSpec;

/// One generated source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceFile {
    /// File name (e.g. `bitvector_ni.c`).
    pub name: String,
    /// Complete C source text.
    pub source: String,
}

/// How a planted item should be accounted in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlantedKind {
    /// A real defect the checker must report (an "Errors" column entry).
    Bug,
    /// A construct that provokes a report which is not a real defect (a
    /// "False Pos" / "Useless" column entry).
    FalsePositive,
    /// A technically-real violation in unreachable or legacy code (the
    /// "Minor" column of Table 4).
    Minor,
    /// A planted `has_buffer()` / `no_free_needed()` suppression call (the
    /// "Useful" column of Table 4); produces no report.
    Annotation,
    /// A violation the checker deliberately does not report (e.g. inside a
    /// `FATAL_ERROR` stub).
    Suppressed,
    /// The §11 manual-refcount call found by the post-incident check.
    Incident,
}

/// Ground truth for one planted item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Planted {
    /// Name of the checker expected to react (report name).
    pub checker: String,
    /// File containing the planted function.
    pub file: String,
    /// The planted function (one planted item per function).
    pub function: String,
    /// Accounting class.
    pub kind: PlantedKind,
    /// Number of reports the checker should produce for it.
    pub expected_reports: usize,
    /// Number of reports expected when path-feasibility pruning is on
    /// (the driver default). Differs from `expected_reports` only for the
    /// correlated-branch false-positive class, which pruning refutes.
    pub expected_reports_pruned: usize,
    /// Number of reports expected when the summary engine resolves call
    /// sites (`--interproc`). Differs from `expected_reports` only for
    /// false positives caused by a helper the local analysis cannot see
    /// into (un-annotated write-back subroutines, free wrappers, length
    /// assignments in helpers).
    pub expected_reports_interproc: usize,
    /// Number of reports expected to survive the symbolic refutation pass
    /// (`--refute`). Differs from `expected_reports` only for false
    /// positives whose witness path carries a linearly infeasible guard
    /// correlation the FactSet pruner cannot express.
    pub expected_reports_refute: usize,
    /// Human-readable description, mirroring the paper's anecdotes.
    pub note: String,
}

impl Planted {
    /// The report count expected under the given pruning setting.
    pub fn expected(&self, pruned: bool) -> usize {
        if pruned {
            self.expected_reports_pruned
        } else {
            self.expected_reports
        }
    }

    /// The report count expected under the given pruning, call-site
    /// resolution, and symbolic refutation settings. The three passes
    /// remove different false-positive classes, so the caps compose: each
    /// analysis can only remove reports, never add them.
    pub fn expected_full(&self, pruned: bool, interproc: bool, refute: bool) -> usize {
        let mut n = self.expected(pruned);
        if interproc {
            n = n.min(self.expected_reports_interproc);
        }
        if refute {
            n = n.min(self.expected_reports_refute);
        }
        n
    }

    /// Whether this item is a false positive the feasibility analysis
    /// removes.
    pub fn prunable(&self) -> bool {
        self.expected_reports_pruned < self.expected_reports
    }

    /// Whether this item is a false positive the summary engine removes.
    pub fn interproc_resolvable(&self) -> bool {
        self.expected_reports_interproc < self.expected_reports
    }

    /// Whether this item is a false positive the symbolic refutation pass
    /// removes.
    pub fn refutable(&self) -> bool {
        self.expected_reports_refute < self.expected_reports
    }
}

/// A complete generated protocol.
#[derive(Debug, Clone)]
pub struct Protocol {
    /// Protocol name (`bitvector`, `dyn_ptr`, `sci`, `coma`, `rac`,
    /// `common`).
    pub name: String,
    /// Generated sources.
    pub files: Vec<SourceFile>,
    /// Checker tables for this protocol.
    pub spec: FlashSpec,
    /// Ground-truth manifest of planted items.
    pub manifest: Vec<Planted>,
}

impl Protocol {
    /// Total generated lines of code (the Table 1 LOC metric).
    pub fn loc(&self) -> usize {
        self.files.iter().map(|f| f.source.lines().count()).sum()
    }

    /// The sources as `(source, file-name)` pairs for
    /// [`mc_driver::Driver::check_sources`].
    pub fn sources(&self) -> Vec<(String, String)> {
        self.files
            .iter()
            .map(|f| (f.source.clone(), f.name.clone()))
            .collect()
    }
}
