//! Protocol generation: orchestrates helpers, planted defects, clean
//! budget-consuming handlers, and filler, per the [`crate::plan`] quotas.

use crate::builder::{FnKind, FuncBuf};
use crate::plan::{ProtoPlan, PLANS};
use crate::rng::CorpusRng;
use crate::{Planted, PlantedKind, Protocol, SourceFile};
use mc_checkers::flash::FlashSpec;

/// The canonical corpus seed used by the table reproductions.
pub const DEFAULT_SEED: u64 = 0xF1A5;

/// Generates all six protocols (five + common) with the default plans.
pub fn generate_all(seed: u64) -> Vec<Protocol> {
    PLANS
        .iter()
        .enumerate()
        .map(|(i, p)| generate(p, seed.wrapping_add(i as u64)))
        .collect()
}

/// Generates one protocol from its plan.
pub fn generate(plan: &ProtoPlan, seed: u64) -> Protocol {
    Gen::new(plan, seed).run()
}

/// Generates a fleet-scale corpus: `scale` families of all six protocols.
///
/// Family 0 is byte-identical to [`generate_all`] — the canonical seed
/// corpus with its pinned Table 1–6 quotas and planted-defect ladder.
/// Each additional family `k` regenerates every plan under a seed derived
/// from `seed` and `k`, renames the protocol to `<name>_f<k>` (files keep
/// their plan-based names; protocols are checked per directory), and
/// appends one extra translation unit of deep call chains — hook-carrying
/// procedures that call straight down `depth` levels — so the scaled
/// call graphs are *deeper* than the seed corpus, not just wider. The
/// chains are checker-inert: no sends, reads, frees, or directory
/// operations, so every family reproduces its plan's planted-report
/// ladder unchanged.
///
/// Wholly deterministic in `(seed, scale)`. `scale` is clamped to at
/// least 1; `generate_fleet(seed, 1) == generate_all(seed)`.
pub fn generate_fleet(seed: u64, scale: usize) -> Vec<Protocol> {
    let mut out = generate_all(seed);
    for k in 1..scale.max(1) {
        let fam_seed = seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for (i, plan) in PLANS.iter().enumerate() {
            let mut p = generate(plan, fam_seed.wrapping_add(i as u64));
            let fam_name = format!("{}_f{k}", plan.name);
            p.files.push(depth_chains(&fam_name, plan.name, k));
            p.name = fam_name;
            out.push(p);
        }
    }
    out
}

/// One translation unit of deep, checker-inert call chains for family `k`.
///
/// Emits `CHAINS` independent chains; chain `c` is `depth` procedures
/// where `<fam>_chain<c>_d<j>` calls `<fam>_chain<c>_d<j+1>`, bottoming
/// out in a leaf. Depth varies with the family index (8–20 levels) so the
/// fleet's depth distribution spreads the way Table 1's path lengths do.
fn depth_chains(fam_name: &str, plan_name: &str, k: usize) -> SourceFile {
    const CHAINS: usize = 6;
    let depth = 8 + (k % 5) * 3;
    let mut src = String::new();
    src.push_str("#include \"flash.h\"\n");
    src.push_str(&format!("#include \"{plan_name}.h\"\n\n"));
    for c in 0..CHAINS {
        for d in (0..depth).rev() {
            let name = format!("{fam_name}_chain{c}_d{d}");
            let mut f = FuncBuf::new(&name, FnKind::Procedure);
            f.decl("v0", &format!("{}", (c * 31 + d) % 61));
            f.line(format!("v0 = (v0 * {}) & 2047;", 3 + (c + d) % 7));
            f.line("gScratch = gScratch ^ v0;");
            if d + 1 < depth {
                f.line(format!("{fam_name}_chain{c}_d{}();", d + 1));
            }
            src.push_str(&f.render());
            src.push('\n');
        }
    }
    SourceFile {
        name: format!("{fam_name}_depth.c"),
        source: src,
    }
}

/// Short camel-case protocol tag used in function names.
fn tag(name: &str) -> &'static str {
    match name {
        "bitvector" => "Bv",
        "dyn_ptr" => "Dp",
        "sci" => "Sci",
        "coma" => "Coma",
        "rac" => "Rac",
        _ => "Cmn",
    }
}

const VERBS: [&str; 12] = [
    "LocalGet",
    "RemoteGet",
    "LocalPut",
    "RemotePut",
    "Inval",
    "Ack",
    "Sharing",
    "Upgrade",
    "UncachedRead",
    "UncachedWrite",
    "WriteBack",
    "Replace",
];

struct Gen<'p> {
    plan: &'p ProtoPlan,
    rng: CorpusRng,
    spec: FlashSpec,
    manifest: Vec<Planted>,
    // Remaining budgets.
    reads: usize,
    sends: usize,
    allocs: usize,
    dir_ops: usize,
    send_waits: usize,
    vars: usize,
    routines_left: usize,
    loc_left: i64,
    // Output: functions per file.
    file_names: Vec<String>,
    file_bodies: Vec<Vec<String>>,
    next_file: usize,
    fn_counter: usize,
    lane_rr: usize,
    len_alt: bool,
}

impl<'p> Gen<'p> {
    fn new(plan: &'p ProtoPlan, seed: u64) -> Gen<'p> {
        let base = plan.name;
        let file_names: Vec<String> = if base == "common" {
            vec![
                "common_util.c".into(),
                "common_debug.c".into(),
                "common_boot.c".into(),
            ]
        } else {
            vec![
                format!("{base}_pi.c"),
                format!("{base}_ni.c"),
                format!("{base}_io.c"),
                format!("{base}_sw.c"),
                format!("{base}_util.c"),
            ]
        };
        let n_files = file_names.len();
        let mut spec = FlashSpec::new();
        spec.default_quota = [4, 4, 4, 4];
        Gen {
            plan,
            rng: CorpusRng::seed_from_u64(seed),
            spec,
            manifest: Vec::new(),
            reads: plan.reads,
            sends: plan.sends,
            allocs: plan.allocs,
            dir_ops: plan.dir_ops,
            send_waits: plan.send_waits,
            vars: plan.vars,
            routines_left: plan.routines,
            loc_left: plan.loc as i64,
            file_names,
            file_bodies: vec![Vec::new(); n_files],
            next_file: 0,
            fn_counter: 0,
            lane_rr: 0,
            len_alt: false,
        }
    }

    fn run(mut self) -> Protocol {
        self.emit_helpers();
        self.emit_planted();
        self.emit_deep_handler();
        self.emit_clean_handlers();
        self.emit_filler();
        self.assemble()
    }

    // ---------- naming / bookkeeping -------------------------------------

    fn hw_name(&mut self, iface: &str) -> String {
        let verb = VERBS[self.fn_counter % VERBS.len()];
        self.fn_counter += 1;
        let name = format!("{iface}{}{verb}{}", tag(self.plan.name), self.fn_counter);
        self.spec.hardware_handlers.insert(name.clone());
        name
    }

    fn sw_name(&mut self) -> String {
        self.fn_counter += 1;
        let name = format!("SW{}Task{}", tag(self.plan.name), self.fn_counter);
        self.spec.software_handlers.insert(name.clone());
        name
    }

    fn proc_name(&mut self, hint: &str) -> String {
        self.fn_counter += 1;
        format!("{}_{hint}_{}", self.plan.name, self.fn_counter)
    }

    /// Finalizes a function: appends to the next file round-robin, updates
    /// the variable / routine / line budgets. Returns the file name.
    fn push_fn(&mut self, f: &FuncBuf) -> String {
        let src = f.render();
        let lines = src.lines().count() as i64 + 1; // +1 blank separator
        self.loc_left -= lines;
        self.vars = self.vars.saturating_sub(f.decls);
        self.routines_left = self.routines_left.saturating_sub(1);
        let idx = self.next_file % self.file_bodies.len();
        self.next_file += 1;
        self.file_bodies[idx].push(src);
        self.file_names[idx].clone()
    }

    fn plant(
        &mut self,
        checker: &str,
        file: String,
        function: &str,
        kind: PlantedKind,
        expected: usize,
        note: &str,
    ) {
        self.manifest.push(Planted {
            checker: checker.to_string(),
            file,
            function: function.to_string(),
            kind,
            expected_reports: expected,
            expected_reports_pruned: expected,
            expected_reports_interproc: expected,
            expected_reports_refute: expected,
            note: note.to_string(),
        });
    }

    /// Marks the most recently planted item as refuted by the feasibility
    /// analysis: with pruning on (the driver default) it must produce
    /// `pruned` reports instead of `expected_reports`.
    fn prunable(&mut self, pruned: usize) {
        self.manifest
            .last_mut()
            .expect("plant before prunable")
            .expected_reports_pruned = pruned;
    }

    /// Marks the most recently planted item as resolved by the summary
    /// engine: with `--interproc` it must produce `resolved` reports
    /// instead of `expected_reports`.
    fn interproc_resolved(&mut self, resolved: usize) {
        self.manifest
            .last_mut()
            .expect("plant before interproc_resolved")
            .expected_reports_interproc = resolved;
    }

    /// Marks the most recently planted item as refuted by the symbolic
    /// refutation pass: with `--refute` it must keep only `kept` reports,
    /// the rest demoted to a `refuted` verdict.
    fn refuted(&mut self, kept: usize) {
        self.manifest
            .last_mut()
            .expect("plant before refuted")
            .expected_reports_refute = kept;
    }

    /// Re-aims the round-robin so the *next* function lands in the same
    /// file as the one just pushed. The refutation pass resolves callees
    /// per translation unit, so a helper the symbolic executor must inline
    /// has to live next to its caller.
    fn same_file_next(&mut self) {
        self.next_file += self.file_bodies.len() - 1;
    }

    // ---------- reusable segments -----------------------------------------

    /// Emits a length assignment plus a send on `lane`. Consumes 1 send
    /// (+1 send-wait when `wait`).
    fn emit_send(&mut self, f: &mut FuncBuf, lane: usize, data: bool, wait: bool) {
        let len = if data {
            self.len_alt = !self.len_alt;
            if self.len_alt {
                "LEN_CACHELINE"
            } else {
                "LEN_WORD"
            }
        } else {
            "LEN_NODATA"
        };
        f.line(format!("HANDLER_GLOBALS(header.nh.len) = {len};"));
        let flag = if data { "F_DATA" } else { "F_NODATA" };
        let w = if wait { "W_WAIT" } else { "W_NOWAIT" };
        let call = match lane {
            0 => format!("PI_SEND({flag}, 1, 0, {w}, 1, 0)"),
            1 => format!("IO_SEND({flag}, 1, 0, {w}, 1, 0)"),
            2 => format!("NI_SEND(MSG_REQ, {flag}, 1, {w}, 1, 0)"),
            _ => format!("NI_SEND(MSG_REPLY, {flag}, 1, {w}, 1, 0)"),
        };
        f.line(format!("{call};"));
        self.sends = self.sends.saturating_sub(1);
        if wait {
            self.send_waits = self.send_waits.saturating_sub(1);
        }
    }

    /// A synchronized data-buffer read. Consumes 1 read.
    fn seg_read(&mut self, f: &mut FuncBuf) {
        f.line("WAIT_FOR_DB_FULL(addr);");
        f.line("v0 = MISCBUS_READ_DB(addr, 0);");
        self.reads = self.reads.saturating_sub(1);
    }

    /// Send-with-wait then the matching wait. Consumes 1 send, 2
    /// send-waits.
    fn seg_intervention(&mut self, f: &mut FuncBuf, lane: usize) {
        self.emit_send(f, lane, false, true);
        let wait = match lane {
            0 => "PI_WAIT",
            1 => "IO_WAIT",
            _ => "NI_WAIT",
        };
        f.line(format!("{wait}();"));
        self.send_waits = self.send_waits.saturating_sub(1);
    }

    /// Directory read-modify-write. Consumes 4 dir ops. Most protocols
    /// guard the modification; coma's flat-handler style (many more
    /// directory operations per handler) updates unconditionally, which
    /// also keeps its Table 1 path count in range.
    fn seg_dir(&mut self, f: &mut FuncBuf) {
        f.line("DIR_LOAD();");
        if self.plan.name == "coma" {
            f.line("gProbe = DIR_STATE();");
            f.line("DIR_SET_STATE(DIR_DIRTY);");
        } else {
            f.open("if (DIR_STATE() == DIR_SHARED)");
            f.line("DIR_SET_STATE(DIR_DIRTY);");
            f.close();
        }
        f.line("DIR_WRITEBACK();");
        self.dir_ops = self.dir_ops.saturating_sub(4);
    }

    /// Directory read-only probe. Consumes 2 dir ops.
    fn seg_dir_probe(&mut self, f: &mut FuncBuf) {
        f.line("DIR_LOAD();");
        f.line("v0 = DIR_PTR();");
        self.dir_ops = self.dir_ops.saturating_sub(2);
    }

    /// Directory-consulting switch with per-state responses: the dominant
    /// handler shape in FLASH protocols. Consumes 4 dir ops and 2 sends.
    fn seg_dir_switch(&mut self, f: &mut FuncBuf) {
        f.line("DIR_LOAD();");
        f.open("switch (DIR_STATE())");
        f.line("case DIR_IDLE:");
        let lane_a = self.next_lane();
        self.emit_send(f, lane_a, true, false);
        f.line("    break;");
        f.line("case DIR_SHARED:");
        f.line("    DIR_SET_STATE(DIR_PENDING);");
        let lane_b = self.next_lane();
        self.emit_send(f, lane_b, false, false);
        f.line("    break;");
        f.line("default:");
        f.line("    break;");
        f.close();
        f.line("DIR_WRITEBACK();");
        self.dir_ops = self.dir_ops.saturating_sub(4);
    }

    /// Free the incoming buffer, allocate a fresh one, check, write.
    /// Consumes 1 allocation. Leaves the handler holding a buffer.
    fn seg_alloc(&mut self, f: &mut FuncBuf) {
        f.line("DB_FREE();");
        f.line("nb = DB_ALLOC();");
        f.open("if (nb != DB_FAIL)");
        f.line("DB_WRITE(nb, 0, v0);");
        f.close();
        self.allocs = self.allocs.saturating_sub(1);
    }

    /// Target number of sequential branchy filler units per routine,
    /// calibrated so the per-protocol path counts land near Table 1
    /// (paths multiply as 2^k in sequential branches).
    fn branchiness(&self) -> f64 {
        match self.plan.name {
            "bitvector" => 0.9,
            "dyn_ptr" => 2.6,
            "sci" => 2.4,
            "coma" => 2.1,
            "rac" => 2.2,
            _ => 4.2, // common
        }
    }

    /// Checker-inert arithmetic filler. `branchy` adds an if/else.
    fn seg_filler(&mut self, f: &mut FuncBuf, want_var: bool, branchy: bool) {
        let id = self.fn_counter * 97 + f.len();
        let v = format!("t{}", id % 1000);
        if want_var {
            f.decl(&v, &format!("{}", id % 61));
        } else {
            f.line(format!("v0 = v0 ^ {};", id % 251));
        }
        let target = if want_var { v } else { "v0".to_string() };
        if branchy {
            f.open(&format!("if ({target} > {})", id % 127));
            f.line(format!("{target} = {target} - {};", 1 + id % 13));
            f.else_open();
            f.line(format!("{target} = ({target} + {}) & 1023;", 3 + id % 29));
            f.close();
        } else {
            // Straight-line filler keeps path counts down while adding the
            // realistic bulk of address arithmetic.
            f.line(format!("{target} = ({target} * {}) & 2047;", 3 + id % 7));
            f.line(format!("gScratch = gScratch ^ {target};"));
            f.line(format!(
                "{target} = {target} + (gScratch >> {});",
                1 + id % 5
            ));
        }
    }

    /// Decides whether the `n`-th filler unit of a routine branches, given
    /// how many branchy constructs the routine already has.
    fn filler_branchy(&mut self, branchy_so_far: f64, already: f64) -> bool {
        let budget = self.branchiness() - already;
        if branchy_so_far + 1.0 <= budget {
            true
        } else if branchy_so_far < budget {
            self.rng.gen_bool(budget - branchy_so_far)
        } else {
            false
        }
    }

    fn next_lane(&mut self) -> usize {
        self.lane_rr = (self.lane_rr + 1) % 4;
        self.lane_rr
    }

    // ---------- helpers (spec tables) --------------------------------------

    fn emit_helpers(&mut self) {
        let proto = self.plan.name;
        // Free routine: expects the buffer, replies, frees.
        let name = format!("{proto}_send_reply_free");
        self.spec.free_routines.insert(name.clone());
        let mut f = FuncBuf::new(&name, FnKind::Procedure);
        f.decl("v0", "0");
        self.emit_send(&mut f, 3, true, false);
        f.line("DB_FREE();");
        self.push_fn(&f);

        // Use routine: reads the buffer, keeps it live. Only for protocols
        // that read data buffers at all (coma performs zero reads).
        if self.plan.reads > 0 {
            let name = format!("{proto}_peek_header");
            self.spec.use_routines.insert(name.clone());
            let mut f = FuncBuf::new(&name, FnKind::Procedure);
            f.decl("addr", "0");
            f.decl("v0", "0");
            self.seg_read(&mut f);
            self.push_fn(&f);
        }

        // Conditional-free routine: frees and returns 1, or returns 0.
        let name = format!("{proto}_maybe_release");
        self.spec.cond_free_routines.insert(name.clone());
        let mut f = FuncBuf::new(&name, FnKind::Procedure);
        f.ret = "int";
        f.open("if (gCongested)");
        f.line("DB_FREE();");
        f.line("return 1;");
        f.close();
        f.line("return 0;");
        self.push_fn(&f);

        // Annotated write-back helper (needs directory-op budget).
        if self.plan.dir_ops >= 2 {
            let name = format!("{proto}_dir_commit");
            self.spec.writeback_routines.insert(name.clone());
            let mut f = FuncBuf::new(&name, FnKind::Procedure);
            f.line("DIR_SET_STATE(DIR_SHARED);");
            f.line("DIR_WRITEBACK();");
            self.dir_ops = self.dir_ops.saturating_sub(2);
            self.push_fn(&f);
        }

        // UN-annotated write-back helper: used by the §9.1 subroutine
        // false positives.
        if self.plan.dir_fp_subroutine > 0 {
            let name = format!("{proto}_dir_update_raw");
            let mut f = FuncBuf::new(&name, FnKind::Procedure);
            f.line("DIR_SET_STATE(DIR_SHARED);");
            f.line("DIR_WRITEBACK();");
            self.dir_ops = self.dir_ops.saturating_sub(2);
            self.push_fn(&f);
        }
    }

    // ---------- planted defects -------------------------------------------

    fn emit_planted(&mut self) {
        for i in 0..self.plan.race_bugs {
            self.plant_race_bug(i);
        }
        for _ in 0..self.plan.race_fps {
            self.plant_race_fp();
        }
        for i in 0..self.plan.msglen_bugs {
            self.plant_msglen_bug(i);
        }
        if self.plan.msglen_fps > 0 {
            self.plant_msglen_fp_site(self.plan.msglen_fps);
        }
        for _ in 0..self.plan.msglen_fp_helper {
            self.plant_msglen_fp_helper();
        }
        let doubles = self.plan.buf_bugs - self.plan.buf_bug_leaks;
        for i in 0..doubles {
            self.plant_buf_double_free(i, PlantedKind::Bug, "double free (shared legacy)");
        }
        for _ in 0..self.plan.buf_bug_leaks {
            self.plant_buf_leak(PlantedKind::Bug, "leak on rare exit path");
        }
        for i in 0..self.plan.buf_minor {
            if i % 2 == 0 {
                self.plant_buf_double_free(
                    100 + i,
                    PlantedKind::Minor,
                    "violation in unreachable/legacy handler",
                );
            } else {
                self.plant_buf_leak(PlantedKind::Minor, "harmless violation (abstraction)");
            }
        }
        for i in 0..self.plan.buf_annotations {
            self.plant_buf_annotation(i);
        }
        // Useless-annotation (FP) decomposition: correlated-branch sites
        // yield two reports, data-dependent frees one.
        let pairs = self.plan.buf_fps / 2;
        let singles = self.plan.buf_fps % 2;
        for i in 0..pairs {
            self.plant_buf_fp_correlated(i);
        }
        for _ in 0..singles {
            self.plant_buf_fp_datadep();
        }
        for _ in 0..self.plan.buf_fp_wrapper {
            self.plant_buf_fp_wrapper();
        }
        for i in 0..self.plan.hook_bugs {
            self.plant_hook_bug(i);
        }
        for _ in 0..self.plan.hook_suppressed {
            self.plant_hook_suppressed();
        }
        for _ in 0..self.plan.lane_bugs {
            self.plant_lane_bug();
        }
        for _ in 0..self.plan.alloc_fps {
            self.plant_alloc_fp();
        }
        for _ in 0..self.plan.dir_bugs {
            self.plant_dir_bug();
        }
        for _ in 0..self.plan.dir_fp_subroutine {
            self.plant_dir_fp_subroutine();
        }
        for _ in 0..self.plan.dir_fp_speculative {
            self.plant_dir_fp_speculative();
        }
        for i in 0..self.plan.dir_fp_abstraction {
            self.plant_dir_fp_abstraction(i);
        }
        for _ in 0..self.plan.sw_fps {
            self.plant_send_wait_fp();
        }
        for _ in 0..self.plan.refcount_incidents {
            self.plant_refcount_incident();
        }
    }

    /// §4 bug: raw read, no synchronization anywhere on the path.
    fn plant_race_bug(&mut self, i: usize) {
        let name = self.hw_name("NI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.decl("addr", "0");
        f.decl("v0", "0");
        if i.is_multiple_of(2) {
            // The real bitvector shape: only the first byte read early.
            f.line("v0 = MISCBUS_READ_DB(addr, 0) & 255;");
            f.open("if (v0 == OPC_UPGRADE)");
            f.line("gFastPath = gFastPath + 1;");
            f.close();
        } else {
            f.open("if (gCornerCase)");
            f.line("v0 = MISCBUS_READ_DB(addr, 1);");
            f.close();
        }
        self.reads = self.reads.saturating_sub(1);
        f.line("DB_FREE();");
        let file = self.push_fn(&f);
        self.plant(
            "wait_for_db",
            file,
            &name,
            PlantedKind::Bug,
            1,
            "read races the hardware buffer fill",
        );
    }

    /// §4 false positive: debug code intentionally reads unsynchronized.
    fn plant_race_fp(&mut self) {
        let name = self.hw_name("NI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.decl("addr", "0");
        f.decl("v0", "0");
        f.line("v0 = MISCBUS_READ_DB(addr, 0);");
        f.line("debug_print(\"raw early dump\", v0);");
        f.line("DB_FREE();");
        self.reads = self.reads.saturating_sub(1);
        let file = self.push_fn(&f);
        self.plant(
            "wait_for_db",
            file,
            &name,
            PlantedKind::FalsePositive,
            1,
            "debug-only code violates the invariant intentionally",
        );
    }

    /// §5 bug: stale zero length when a data send fires on a rare path.
    fn plant_msglen_bug(&mut self, i: usize) {
        let name = self.hw_name(if i.is_multiple_of(2) { "NI" } else { "PI" });
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.decl("v0", "0");
        if i % 3 == 2 {
            // "eager mode" variant: nonzero length, nodata send.
            f.line("HANDLER_GLOBALS(header.nh.len) = LEN_CACHELINE;");
            f.open("if (gEagerMode)");
            f.open("if (gQueueFull)");
            f.line("NI_SEND(MSG_REPLY, F_NODATA, 1, W_NOWAIT, 1, 0);");
            f.close();
            f.close();
        } else {
            // "uncached read" variant: zero length, data send, guarded by
            // a rare double condition (dirty remote + full queue).
            f.line("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;");
            f.open("if (gDirtyRemote)");
            f.open("if (gQueueFull)");
            f.line("NI_SEND(MSG_REPLY, F_DATA, 1, W_NOWAIT, 1, 0);");
            f.close();
            f.close();
        }
        self.sends = self.sends.saturating_sub(1);
        f.line("DB_FREE();");
        let file = self.push_fn(&f);
        self.plant(
            "msglen_check",
            file,
            &name,
            PlantedKind::Bug,
            1,
            if i % 3 == 2 {
                "eager-mode handler, wrong length for nodata send"
            } else {
                "uncached-read handler, stale zero length for data send"
            },
        );
    }

    /// §5 false positives: a run-time variable selects matching assignment
    /// and send; the checker cannot prune the two impossible combinations.
    fn plant_msglen_fp_site(&mut self, expected: usize) {
        let name = self.hw_name("IO");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.open("if (gHasData)");
        f.line("HANDLER_GLOBALS(header.nh.len) = LEN_WORD;");
        f.else_open();
        f.line("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;");
        f.close();
        f.open("if (gHasData)");
        f.line("IO_SEND(F_DATA, 1, 0, W_NOWAIT, 1, 0);");
        f.else_open();
        f.line("IO_SEND(F_NODATA, 1, 0, W_NOWAIT, 1, 0);");
        f.close();
        self.sends = self.sends.saturating_sub(2);
        f.line("DB_FREE();");
        let file = self.push_fn(&f);
        self.plant(
            "msglen_check",
            file,
            &name,
            PlantedKind::FalsePositive,
            expected,
            "send parameter selected at run time; impossible paths flagged",
        );
        self.prunable(0);
    }

    /// §5 false positive the summary engine resolves: the length is
    /// assigned inside a helper, so the per-function machine still sees
    /// the stale zero length at the send. Under `--interproc` the helper's
    /// `zero_len -> nonzero_len` transfer is applied at the call site and
    /// the report disappears.
    fn plant_msglen_fp_helper(&mut self) {
        let helper = format!("{}_set_len_word", self.plan.name);
        let mut h = FuncBuf::new(&helper, FnKind::Procedure);
        h.line("HANDLER_GLOBALS(header.nh.len) = LEN_WORD;");
        self.push_fn(&h);

        let name = self.hw_name("IO");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.line("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;");
        f.line(format!("{helper}();"));
        f.line("IO_SEND(F_DATA, 1, 0, W_NOWAIT, 1, 0);");
        f.line("DB_FREE();");
        self.sends = self.sends.saturating_sub(1);
        let file = self.push_fn(&f);
        self.plant(
            "msglen_check",
            file,
            &name,
            PlantedKind::FalsePositive,
            1,
            "length assigned in a helper; the local machine sees a stale zero length",
        );
        self.interproc_resolved(0);
    }

    /// §6 false positive the summary engine resolves: the free happens
    /// inside an un-annotated wrapper, so the per-function machine thinks
    /// the handler leaks its buffer. Under `--interproc` the wrapper's
    /// `Has -> None` transfer is applied at the call site.
    fn plant_buf_fp_wrapper(&mut self) {
        let helper = format!("{}_free_raw", self.plan.name);
        let mut h = FuncBuf::new(&helper, FnKind::Procedure);
        h.line("DB_FREE();");
        self.push_fn(&h);

        let name = self.hw_name("PI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.decl("v0", "0");
        f.line("v0 = gTick & 511;");
        f.line(format!("{helper}();"));
        let file = self.push_fn(&f);
        self.plant(
            "buffer_mgmt",
            file,
            &name,
            PlantedKind::FalsePositive,
            1,
            "free hidden in an un-annotated wrapper; the handler appears to leak",
        );
        self.interproc_resolved(0);
    }

    /// §6 bug: double free (optionally buried under rare conditions).
    fn plant_buf_double_free(&mut self, i: usize, kind: PlantedKind, note: &str) {
        let name = self.hw_name("PI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.decl("v0", "0");
        self.emit_send(&mut f, self.lane_rr, true, false);
        if i.is_multiple_of(2) {
            f.line("DB_FREE();");
            f.line(format!("{}_send_reply_free();", self.plan.name));
            self.sends = self.sends.saturating_sub(0);
        } else {
            // Rare: both frees behind nested conditions.
            f.open("if (gRetryPath)");
            f.open("if (gIOBusy)");
            f.line("DB_FREE();");
            f.close();
            f.close();
            f.line("DB_FREE();");
        }
        let file = self.push_fn(&f);
        self.plant("buffer_mgmt", file, &name, kind, 1, note);
    }

    /// §6 bug/minor: missing free on one exit path.
    fn plant_buf_leak(&mut self, kind: PlantedKind, note: &str) {
        let name = self.hw_name("NI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.decl("v0", "0");
        f.open("if (gErrCase)");
        f.line("gErrCount = gErrCount + 1;");
        f.line("return;");
        f.close();
        self.emit_send(&mut f, self.lane_rr, false, false);
        f.line("DB_FREE();");
        let file = self.push_fn(&f);
        self.plant("buffer_mgmt", file, &name, kind, 1, note);
    }

    /// §6 useful annotation: a path that intentionally keeps the buffer for
    /// a subsequent handler.
    fn plant_buf_annotation(&mut self, i: usize) {
        let name = self.hw_name("NI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        if i.is_multiple_of(2) {
            f.open("if (gDeferToNext)");
            f.line("no_free_needed();");
            f.line("return;");
            f.close();
            f.line("DB_FREE();");
        } else {
            // Buffer implicitly handed over by hardware on this path.
            f.open("if (gChainedDelivery)");
            f.line("has_buffer();");
            f.line("DB_FREE();");
            f.line("return;");
            f.close();
            f.line("DB_FREE();");
        }
        let file = self.push_fn(&f);
        self.plant(
            "buffer_mgmt",
            file,
            &name,
            PlantedKind::Annotation,
            0,
            "annotation documents an intentional ownership transfer",
        );
    }

    /// §6 false-positive site: two branches on the same condition; the two
    /// infeasible interleavings yield a double-free and a leak report.
    fn plant_buf_fp_correlated(&mut self, i: usize) {
        let name = self.hw_name("PI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.decl("v0", &format!("{i}"));
        f.open("if (gMode)");
        f.line("DB_FREE();");
        f.close();
        f.line("v0 = v0 + 1;");
        f.open("if (!gMode)");
        f.line("DB_FREE();");
        f.close();
        let file = self.push_fn(&f);
        self.plant(
            "buffer_mgmt",
            file,
            &name,
            PlantedKind::FalsePositive,
            2,
            "correlated branches: unpruned infeasible paths",
        );
        self.prunable(0);
    }

    /// §6 false-positive site: data-dependent free (one leak report on the
    /// statically-possible but dynamically-impossible path).
    fn plant_buf_fp_datadep(&mut self) {
        let name = self.hw_name("IO");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.open("if (gOpClass & 1)");
        f.line("DB_FREE();");
        f.close();
        let file = self.push_fn(&f);
        self.plant(
            "buffer_mgmt",
            file,
            &name,
            PlantedKind::FalsePositive,
            1,
            "data-dependent free: the no-free path cannot happen at run time",
        );
    }

    /// §8 bug: handler missing the simulator hooks.
    fn plant_hook_bug(&mut self, i: usize) {
        let name = self.hw_name("NI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.omit_hooks = true;
        f.decl("v0", "0");
        f.line(format!("v0 = gTick + {i};"));
        f.line("DB_FREE();");
        let file = self.push_fn(&f);
        self.plant(
            "exec_restrict",
            file,
            &name,
            PlantedKind::Bug,
            1,
            "simulator hooks omitted; only simulation results affected",
        );
    }

    /// §8: hook violation inside an unimplemented routine — skipped by the
    /// checker, exactly as the paper declined to count sci's three.
    fn plant_hook_suppressed(&mut self) {
        let name = self.hw_name("NI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.omit_hooks = true;
        f.line("FATAL_ERROR();");
        let file = self.push_fn(&f);
        self.plant(
            "exec_restrict",
            file,
            &name,
            PlantedKind::Suppressed,
            0,
            "unimplemented routine (FATAL_ERROR): violation not counted",
        );
    }

    /// §7 bug: handler exceeds its lane allowance — either directly (the
    /// bitvector typo) or through a helper (the dyn_ptr workaround).
    fn plant_lane_bug(&mut self) {
        let via_helper = self.plan.name == "dyn_ptr";
        let name = self.hw_name("NI");
        self.spec.lane_quota.insert(name.clone(), [4, 4, 1, 4]);
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.decl("v0", "0");
        self.emit_send(&mut f, 2, false, false);
        if via_helper {
            let helper = format!("{}_hw_workaround", self.plan.name);
            let mut h = FuncBuf::new(&helper, FnKind::Procedure);
            h.line("HANDLER_GLOBALS(header.nh.len) = LEN_NODATA;");
            h.line("NI_SEND(MSG_REQ, F_NODATA, 1, W_NOWAIT, 1, 0);");
            self.sends = self.sends.saturating_sub(1);
            self.push_fn(&h);
            f.line(format!("{helper}();"));
        } else {
            // The typo: the same request duplicated.
            self.emit_send(&mut f, 2, false, false);
        }
        f.line("DB_FREE();");
        let file = self.push_fn(&f);
        self.plant(
            "lanes",
            file,
            &name,
            PlantedKind::Bug,
            1,
            if via_helper {
                "hardware workaround in helper pushes handler over lane quota"
            } else {
                "typo duplicates a request send beyond the lane quota"
            },
        );
    }

    /// §9 false positive: debug print of the raw handle before the check.
    fn plant_alloc_fp(&mut self) {
        let name = self.hw_name("PI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.decl("v0", "0");
        f.line("DB_FREE();");
        f.line("nb = DB_ALLOC();");
        f.line("debug_print(\"allocated\", nb);");
        f.open("if (nb != DB_FAIL)");
        f.line("DB_WRITE(nb, 0, v0);");
        f.close();
        f.line("DB_FREE();");
        self.allocs = self.allocs.saturating_sub(1);
        let file = self.push_fn(&f);
        self.plant(
            "alloc_check",
            file,
            &name,
            PlantedKind::FalsePositive,
            1,
            "debug print of the unchecked handle",
        );
    }

    /// §9 bug: modified entry never written back (no NAK either).
    fn plant_dir_bug(&mut self) {
        let name = self.hw_name("PI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.line("DIR_LOAD();");
        f.line("DIR_SET_STATE(DIR_PENDING);");
        f.line("DB_FREE();");
        self.dir_ops = self.dir_ops.saturating_sub(2);
        let file = self.push_fn(&f);
        self.plant(
            "directory",
            file,
            &name,
            PlantedKind::Bug,
            1,
            "stale directory entry: modification never written back",
        );
    }

    /// §9.1 FP: the write-back happens in an un-annotated subroutine.
    /// Like most of the paper's directory false positives this handler
    /// sits on a NAK-replying path, which the ranking heuristic demotes.
    fn plant_dir_fp_subroutine(&mut self) {
        let name = self.hw_name("NI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.line("DIR_LOAD();");
        f.line("DIR_SET_STATE(DIR_SHARED);");
        f.line(format!("{}_dir_update_raw();", self.plan.name));
        f.line("gReply = MSG_NAK;");
        f.line("DB_FREE();");
        self.dir_ops = self.dir_ops.saturating_sub(2);
        let file = self.push_fn(&f);
        self.plant(
            "directory",
            file,
            &name,
            PlantedKind::FalsePositive,
            1,
            "write-back subroutine not annotated in the checker table",
        );
        // The summary engine computes the subroutine's directory-state
        // transfer, so `--interproc` resolves what the annotation table
        // could not.
        self.interproc_resolved(0);
    }

    /// §9.1 FP: speculative modification backed out on the NAK path. The
    /// back-out is doubly guarded by a credit/debit correlation the
    /// FactSet pruner cannot relate but the refutation pass proves UNSAT:
    /// `nak = credit - debit` forces `nak == 0` under `credit == debit`.
    fn plant_dir_fp_speculative(&mut self) {
        let name = self.hw_name("PI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.decl("nak", "0");
        f.line("DIR_LOAD();");
        f.line("DIR_SET_STATE(DIR_PENDING);");
        f.line("nak = gNakCredit - gNakDebit;");
        f.open("if (gNakCredit == gNakDebit)");
        f.open("if (nak > 0)");
        f.line("gReply = MSG_NAK;");
        f.line("DB_FREE();");
        f.line("return;");
        f.close();
        f.close();
        f.line("DIR_WRITEBACK();");
        f.line("DB_FREE();");
        self.dir_ops = self.dir_ops.saturating_sub(3);
        let file = self.push_fn(&f);
        self.plant(
            "directory",
            file,
            &name,
            PlantedKind::FalsePositive,
            1,
            "speculative back-out on the NAK reply path",
        );
        self.refuted(0);
    }

    /// §9.1 FP: entry address computed by hand instead of DIR_ADDR().
    /// The hand computation is traced with a debug print, which the
    /// ranking heuristic reads as benign-by-construction evidence. The
    /// computation sits behind an infeasible credit/debit guard pair, so
    /// the refutation pass demotes the report; for the second site per
    /// protocol the correlated assignment lives in a straight-line helper
    /// in the same file — refutable only because the symbolic executor
    /// inlines the callee (the interprocedural witness splice).
    fn plant_dir_fp_abstraction(&mut self, i: usize) {
        let helper = (i == 1).then(|| {
            let helper = self.proc_name("credit_probe");
            let mut h = FuncBuf::new(&helper, FnKind::Procedure);
            h.line("gNakPending = gNakCredit - gNakDebit;");
            self.push_fn(&h);
            self.same_file_next();
            helper
        });
        let name = self.hw_name("IO");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.decl("entry", "0");
        f.line("DIR_LOAD();");
        let pending: &str = match &helper {
            Some(h) => {
                f.line(format!("{h}();"));
                "gNakPending"
            }
            None => {
                f.decl("nak", "0");
                f.line("nak = gNakCredit - gNakDebit;");
                "nak"
            }
        };
        f.open("if (gNakCredit == gNakDebit)");
        f.open(&format!("if ({pending} > 0)"));
        f.line("entry = DIR_ADDR_BASE + gLine * 8;");
        f.line("debug_print(\"dir entry\", entry);");
        f.close();
        f.close();
        f.line("DIR_WRITEBACK();");
        f.line("DB_FREE();");
        self.dir_ops = self.dir_ops.saturating_sub(2);
        let file = self.push_fn(&f);
        self.plant(
            "directory",
            file,
            &name,
            PlantedKind::FalsePositive,
            1,
            if helper.is_some() {
                "abstraction error behind a helper-correlated guard (interproc splice)"
            } else {
                "abstraction error: explicit directory address computation"
            },
        );
        self.refuted(0);
    }

    /// §9 FP: manual status-register spin instead of the wait macro. The
    /// waited send (and its spin) sits on an infeasible credit/debit path,
    /// so the dangling-wait report at the exit is refutable.
    fn plant_send_wait_fp(&mut self) {
        let name = self.hw_name("PI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.decl("nak", "0");
        f.line("nak = gNakCredit - gNakDebit;");
        f.open("if (gNakCredit == gNakDebit)");
        f.open("if (nak > 0)");
        self.emit_send(&mut f, 0, false, true);
        f.open("while (!MAGIC_PI_STATUS())");
        f.line("gSpin = gSpin + 1;");
        f.close();
        f.close();
        f.close();
        f.line("DB_FREE();");
        let file = self.push_fn(&f);
        self.plant(
            "send_wait",
            file,
            &name,
            PlantedKind::FalsePositive,
            1,
            "abstraction barrier broken: manual wait on status registers",
        );
        self.refuted(0);
    }

    /// §11: the single manual refcount bump in all of the protocol code.
    fn plant_refcount_incident(&mut self) {
        let name = self.hw_name("NI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.line("DB_REFCOUNT_INCR();");
        f.line("DB_FREE();");
        let file = self.push_fn(&f);
        self.plant(
            "refcount_bump",
            file,
            &name,
            PlantedKind::Incident,
            1,
            "the one manual refcount increment (post-incident check)",
        );
    }

    // ---------- Table 1 path-length calibration -----------------------------

    /// The longest-path target for this protocol's deep handler, chosen so
    /// the aggregate Table 1 max-path-length column lands within 2x of the
    /// paper (which measured real FLASH handlers far deeper than the
    /// op-quota handlers the generator otherwise produces).
    fn deep_target(&self) -> usize {
        match self.plan.name {
            "bitvector" => 380,
            "dyn_ptr" => 270,
            "sci" => 220,
            "coma" => 165,
            "rac" => 350,
            _ => 310, // common
        }
    }

    /// Emits one very long hardware handler per protocol — the FLASH
    /// protocols' biggest handlers inline whole state-machine arms, which
    /// is where the paper's 244–563-statement maximum paths come from.
    /// The body is straight-line address arithmetic split by four
    /// sequential branches whose arms touch only their own temporary, so
    /// it contributes 2^4 = 16 paths, no checker-visible operations
    /// beyond the closing free, and nothing the feasibility analysis
    /// could refute.
    fn emit_deep_handler(&mut self) {
        let target = self.deep_target();
        let name = self.hw_name("NI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.decl("addr", "0");
        f.decl("v0", "0");
        // Five straight-line runs separated by four branches; solve the
        // chunk size from the longest-path statement count: 2 hooks +
        // 2 decls + 4 * (decl + seed + branch + arm) + 5 * chunk + free.
        let chunk = target.saturating_sub(21) / 5;
        for run in 0..5usize {
            for i in 0..chunk {
                let k = run * chunk + i;
                match k % 3 {
                    0 => f.line(format!("v0 = (v0 * {}) & 2047;", 3 + k % 7)),
                    1 => f.line(format!("addr = addr + (v0 >> {});", 1 + k % 5)),
                    _ => f.line(format!("gScratch = gScratch ^ {};", k % 251)),
                };
            }
            if run < 4 {
                let d = format!("d{run}");
                f.decl(&d, "0");
                f.line(format!("{d} = gScratch & {};", 15 + run));
                f.open(&format!("if ({d} > {})", 3 + run));
                f.line(format!("{d} = {d} - 1;"));
                f.else_open();
                f.line(format!("{d} = {d} + {};", 2 + run));
                f.close();
            }
        }
        f.line("DB_FREE();");
        self.push_fn(&f);
    }

    // ---------- clean handlers and filler -----------------------------------

    fn has_op_budget(&self) -> bool {
        self.reads > 0
            || self.sends > 0
            || self.allocs > 0
            || self.dir_ops > 0
            || self.send_waits > 0
    }

    fn line_budget(&self) -> usize {
        if self.routines_left == 0 {
            return 12;
        }
        ((self.loc_left.max(0) as usize) / self.routines_left).clamp(10, 200)
    }

    fn var_budget(&self) -> usize {
        if self.routines_left == 0 {
            return 0;
        }
        (self.vars.div_ceil(self.routines_left)).min(12)
    }

    fn emit_clean_handlers(&mut self) {
        let ifaces = ["NI", "PI", "IO"];
        let mut idx = 0usize;
        while self.has_op_budget() && self.routines_left > 1 {
            // Software handlers occasionally, when allocations remain.
            if self.allocs > 0 && idx % 7 == 3 {
                self.clean_sw_handler();
            } else {
                self.clean_hw_handler(ifaces[idx % 3]);
            }
            idx += 1;
        }
        if self.has_op_budget() && self.routines_left > 0 {
            self.mop_up_handler();
        }
    }

    /// Consumes every remaining operation in one (possibly large) handler —
    /// the backstop that makes the quotas exact.
    fn mop_up_handler(&mut self) {
        let name = self.hw_name("NI");
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        f.decl("addr", "0");
        f.decl("v0", "0");
        while self.reads > 0 {
            self.seg_read(&mut f);
        }
        while self.send_waits >= 2 && self.sends > 0 {
            let lane = self.next_lane();
            self.seg_intervention(&mut f, lane);
        }
        if self.send_waits == 1 {
            f.line("NI_WAIT();");
            self.send_waits = 0;
        }
        // Spread leftover sends across switch arms so no path exceeds the
        // lane quota.
        while self.sends > 0 {
            f.open("switch (gOpClass)");
            for case in 0..4usize {
                if self.sends == 0 {
                    break;
                }
                f.line(format!("case {case}:"));
                let lane = self.next_lane();
                self.emit_send(&mut f, lane, case % 2 == 0, false);
                f.line("    break;");
            }
            f.line("default:");
            f.line("    break;");
            f.close();
        }
        while self.allocs > 0 {
            f.decl(&format!("nb{}", self.allocs), "0");
            f.line("DB_FREE();");
            f.line(format!("nb{} = DB_ALLOC();", self.allocs));
            f.open(&format!("if (nb{} != DB_FAIL)", self.allocs));
            f.line(format!("DB_WRITE(nb{}, 0, v0);", self.allocs));
            f.close();
            self.allocs -= 1;
        }
        self.drain_dir(&mut f);
        f.line("DB_FREE();");
        self.push_fn(&f);
    }

    /// Consumes directory-op remainders exactly (units of 4, 2, and 1).
    fn drain_dir(&mut self, f: &mut FuncBuf) {
        while self.dir_ops >= 4 {
            self.seg_dir(f);
        }
        if self.dir_ops >= 2 {
            self.seg_dir_probe(f);
        }
        if self.dir_ops == 1 {
            f.line("DIR_LOAD();");
            self.dir_ops = 0;
        }
    }

    fn clean_hw_handler(&mut self, iface: &str) {
        let name = self.hw_name(iface);
        let mut f = FuncBuf::new(&name, FnKind::Hardware);
        let line_budget = self.line_budget();
        let var_budget = self.var_budget();
        f.decl("addr", "0");
        f.decl("v0", "0");
        let mut local_sends_per_lane = [0usize; 4];
        let others_empty = self.sends == 0 && self.dir_ops == 0 && self.send_waits == 0;
        // Segments, budget permitting.
        if self.reads > 0 && (self.rng.gen_bool(0.8) || others_empty) {
            self.seg_read(&mut f);
        }
        if self.dir_ops >= 4 && self.sends >= 2 {
            self.seg_dir_switch(&mut f);
            local_sends_per_lane[self.lane_rr] += 1; // approximation
        }
        if self.send_waits >= 2 && self.sends > 0 {
            let lane = self.next_lane();
            if local_sends_per_lane[lane] < 3 {
                self.seg_intervention(&mut f, lane);
                local_sends_per_lane[lane] += 1;
            }
        } else if self.send_waits == 1 && self.sends == 0 {
            // Odd remainder: a lone wait (harmless; nothing outstanding).
            f.line("NI_WAIT();");
            self.send_waits = 0;
        }
        let mut direct_sends = 0;
        while self.sends > 0 && direct_sends < 4 && f.len() < line_budget {
            let lane = self.next_lane();
            if local_sends_per_lane[lane] >= 3 {
                break;
            }
            let data = self.rng.gen_bool(0.5);
            self.emit_send(&mut f, lane, data, false);
            local_sends_per_lane[lane] += 1;
            direct_sends += 1;
        }
        if self.allocs > 0 && (self.rng.gen_bool(0.5) || others_empty) {
            f.decl("nb", "0");
            self.seg_alloc(&mut f);
        }
        if self.dir_ops >= 4 && self.rng.gen_bool(0.6) {
            self.seg_dir(&mut f);
        } else if self.dir_ops >= 2 && self.dir_ops < 4 {
            self.seg_dir_probe(&mut f);
        } else if self.dir_ops == 1 {
            f.line("DIR_LOAD();");
            self.dir_ops = 0;
        }
        // Filler to the line budget, spending the var allowance. Branchy
        // units are rationed so path counts stay near Table 1; segments
        // already contributed branching, which we charge against the
        // budget.
        let mut vars_here = f.decls;
        let segment_branches = 1.2;
        let mut branchy_units = 0f64;
        while f.len() + 6 < line_budget {
            let want_var = vars_here < var_budget;
            if want_var {
                vars_here += 1;
            }
            let branchy = self.filler_branchy(branchy_units, segment_branches);
            if branchy {
                branchy_units += 1.0;
            }
            self.seg_filler(&mut f, want_var, branchy);
        }
        // Close the buffer: explicit free or via the free-routine table.
        if self.rng.gen_bool(0.85) {
            f.line("DB_FREE();");
        } else {
            f.line(format!("{}_send_reply_free();", self.plan.name));
        }
        self.push_fn(&f);
    }

    fn clean_sw_handler(&mut self) {
        let name = self.sw_name();
        let mut f = FuncBuf::new(&name, FnKind::Software);
        f.decl("v0", "0");
        f.decl("nb", "0");
        f.line("nb = DB_ALLOC();");
        f.open("if (nb != DB_FAIL)");
        f.line("DB_WRITE(nb, 0, v0);");
        f.close();
        self.allocs = self.allocs.saturating_sub(1);
        if self.sends > 0 {
            let lane = self.next_lane();
            self.emit_send(&mut f, lane, true, false);
        }
        let var_budget = self.var_budget();
        let mut vars_here = f.decls;
        let line_budget = self.line_budget().min(40);
        let mut branchy_units = 0f64;
        while f.len() + 6 < line_budget {
            let want_var = vars_here < var_budget;
            if want_var {
                vars_here += 1;
            }
            let branchy = self.filler_branchy(branchy_units, 1.0);
            if branchy {
                branchy_units += 1.0;
            }
            self.seg_filler(&mut f, want_var, branchy);
        }
        f.line("DB_FREE();");
        self.push_fn(&f);
    }

    fn emit_filler(&mut self) {
        while self.routines_left > 0 {
            let name = self.proc_name("util");
            let mut f = FuncBuf::new(&name, FnKind::Procedure);
            let line_budget = self.line_budget();
            let var_budget = self.var_budget().max(1);
            f.decl("v0", "1");
            let mut vars_here = 1;
            let mut branchy_units = 0f64;
            while f.len() + 6 < line_budget {
                let want_var = vars_here < var_budget;
                if want_var {
                    vars_here += 1;
                }
                let branchy = self.filler_branchy(branchy_units, 0.0);
                if branchy {
                    branchy_units += 1.0;
                }
                self.seg_filler(&mut f, want_var, branchy);
            }
            self.push_fn(&f);
        }
    }

    // ---------- assembly -----------------------------------------------------

    fn assemble(self) -> Protocol {
        let mut files = Vec::new();
        for (name, bodies) in self.file_names.iter().zip(&self.file_bodies) {
            let mut src = String::new();
            src.push_str("#include \"flash.h\"\n");
            src.push_str(&format!("#include \"{}.h\"\n\n", self.plan.name));
            src.push_str("enum DirStateE { DIR_IDLE, DIR_SHARED, DIR_DIRTY, DIR_PENDING };\n\n");
            for f in bodies {
                src.push_str(f);
                src.push('\n');
            }
            files.push(SourceFile {
                name: name.clone(),
                source: src,
            });
        }
        Protocol {
            name: self.plan.name.to_string(),
            files,
            spec: self.spec,
            manifest: self.manifest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_for;

    #[test]
    fn generated_protocol_parses() {
        let p = generate(plan_for("bitvector").unwrap(), DEFAULT_SEED);
        for f in &p.files {
            mc_ast::parse_translation_unit(&f.source, &f.name)
                .unwrap_or_else(|e| panic!("{}: {e}", f.name));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(plan_for("sci").unwrap(), 7);
        let b = generate(plan_for("sci").unwrap(), 7);
        assert_eq!(a.files.len(), b.files.len());
        for (x, y) in a.files.iter().zip(&b.files) {
            assert_eq!(x.source, y.source);
        }
        assert_eq!(a.manifest.len(), b.manifest.len());
    }

    #[test]
    fn routine_count_matches_plan() {
        for plan in &PLANS {
            let p = generate(plan, DEFAULT_SEED);
            let mut routines = 0;
            for f in &p.files {
                let tu = mc_ast::parse_translation_unit(&f.source, &f.name).unwrap();
                routines += tu.functions().count();
            }
            assert_eq!(routines, plan.routines, "{}", plan.name);
        }
    }

    #[test]
    fn op_quotas_met_exactly() {
        use mc_ast::{walk_function, Expr, Visitor};
        struct Counter {
            reads: usize,
            sends: usize,
            allocs: usize,
            dir_ops: usize,
        }
        impl Visitor for Counter {
            fn visit_expr(&mut self, e: &Expr) {
                if let Some((name, _)) = e.as_call() {
                    match name {
                        "MISCBUS_READ_DB" => self.reads += 1,
                        "PI_SEND" | "IO_SEND" | "NI_SEND" => self.sends += 1,
                        "DB_ALLOC" => self.allocs += 1,
                        "DIR_LOAD" | "DIR_STATE" | "DIR_PTR" | "DIR_SET_STATE" | "DIR_SET_PTR"
                        | "DIR_WRITEBACK" => self.dir_ops += 1,
                        _ => {}
                    }
                }
            }
        }
        for plan in &PLANS {
            let p = generate(plan, DEFAULT_SEED);
            let mut c = Counter {
                reads: 0,
                sends: 0,
                allocs: 0,
                dir_ops: 0,
            };
            for f in &p.files {
                let tu = mc_ast::parse_translation_unit(&f.source, &f.name).unwrap();
                for func in tu.functions() {
                    walk_function(&mut c, func);
                }
            }
            assert_eq!(c.reads, plan.reads, "{} reads", plan.name);
            assert_eq!(c.sends, plan.sends, "{} sends", plan.name);
            assert_eq!(c.allocs, plan.allocs, "{} allocs", plan.name);
            assert_eq!(c.dir_ops, plan.dir_ops, "{} dir ops", plan.name);
        }
    }

    #[test]
    fn path_lengths_within_2x_of_table1() {
        use mc_cfg::Cfg;
        for plan in &PLANS {
            let p = generate(plan, DEFAULT_SEED);
            let mut agg = mc_cfg::PathStats::default();
            for f in &p.files {
                let tu = mc_ast::parse_translation_unit(&f.source, &f.name).unwrap();
                for func in tu.functions() {
                    agg.merge(&Cfg::build(func).path_stats());
                }
            }
            let within_2x = |measured: f64, paper: u64| {
                let paper = paper as f64;
                measured >= paper / 2.0 && measured <= paper * 2.0
            };
            assert!(
                within_2x(agg.avg_len(), plan.avg_path_len),
                "{}: avg path len {:.0} vs paper {}",
                plan.name,
                agg.avg_len(),
                plan.avg_path_len
            );
            assert!(
                within_2x(agg.max_len as f64, plan.max_path_len),
                "{}: max path len {} vs paper {}",
                plan.name,
                agg.max_len,
                plan.max_path_len
            );
            assert!(
                within_2x(agg.paths as f64, plan.paths),
                "{}: paths {} vs paper {}",
                plan.name,
                agg.paths,
                plan.paths
            );
        }
    }

    #[test]
    fn fleet_scale_one_is_the_seed_corpus() {
        let base = generate_all(DEFAULT_SEED);
        let fleet = generate_fleet(DEFAULT_SEED, 1);
        assert_eq!(base.len(), fleet.len());
        for (a, b) in base.iter().zip(&fleet) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.files.len(), b.files.len());
            for (x, y) in a.files.iter().zip(&b.files) {
                assert_eq!(x.name, y.name);
                assert_eq!(x.source, y.source);
            }
        }
    }

    #[test]
    fn fleet_is_deterministic_and_parses() {
        let a = generate_fleet(DEFAULT_SEED, 3);
        let b = generate_fleet(DEFAULT_SEED, 3);
        assert_eq!(a.len(), 18);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            for (fx, fy) in x.files.iter().zip(&y.files) {
                assert_eq!(fx.source, fy.source);
            }
        }
        // Scaled families must still parse, depth file included.
        let fam = &a[6]; // first family-1 protocol
        assert!(fam.name.ends_with("_f1"));
        for f in &fam.files {
            mc_ast::parse_translation_unit(&f.source, &f.name)
                .unwrap_or_else(|e| panic!("{}: {e}", f.name));
        }
    }

    #[test]
    fn fleet_scale_ten_reaches_ten_thousand_functions() {
        let fleet = generate_fleet(DEFAULT_SEED, 10);
        assert_eq!(fleet.len(), 60);
        let mut functions = 0usize;
        for p in &fleet {
            for f in &p.files {
                let tu = mc_ast::parse_translation_unit(&f.source, &f.name).unwrap();
                functions += tu.functions().count();
            }
        }
        assert!(
            functions >= 10_000,
            "scale-10 fleet has {functions} functions, want >= 10000"
        );
    }

    #[test]
    fn loc_within_tolerance() {
        for plan in &PLANS {
            let p = generate(plan, DEFAULT_SEED);
            let loc: usize = p.files.iter().map(|f| f.source.lines().count()).sum();
            let target = plan.loc as f64;
            let ratio = loc as f64 / target;
            assert!(
                (0.7..1.3).contains(&ratio),
                "{}: {loc} lines vs target {target}",
                plan.name
            );
        }
    }
}
