//! The reproduction's keystone test: running the complete checker suite
//! over every generated protocol finds **every planted defect** (bugs,
//! false-positive triggers, the §11 incident) and **nothing else**.
//!
//! This is what makes the regenerated Tables 2–7 trustworthy: error and
//! false-positive columns come from joining reports against ground truth,
//! not from trusting the checkers.

use mc_checkers::all_checkers;
use mc_corpus::eval::{evaluate_full, evaluate_with, tally};
use mc_corpus::{generate, plan::PLANS, PlantedKind, DEFAULT_SEED};
use mc_driver::{Driver, Verdict};

fn run_suite(proto: &mc_corpus::Protocol, prune: bool) -> Vec<mc_driver::Report> {
    let mut driver = Driver::new();
    driver.prune(prune);
    all_checkers(&mut driver, &proto.spec).unwrap();
    driver.check_sources(&proto.sources()).unwrap()
}

#[test]
fn every_protocol_matches_its_manifest() {
    // Both with the driver's default path-feasibility pruning and without
    // it, the suite must find every planted defect the manifest expects
    // under that setting — and nothing else.
    for prune in [true, false] {
        for (i, plan) in PLANS.iter().enumerate() {
            let proto = generate(plan, DEFAULT_SEED.wrapping_add(i as u64));
            let reports = run_suite(&proto, prune);
            let outcome = evaluate_with(&proto, &reports, prune);
            assert!(
                outcome.missed.is_empty(),
                "{} (prune={prune}): checkers missed planted defects: {:#?}",
                plan.name,
                outcome.missed
            );
            assert!(
                outcome.unexpected.is_empty(),
                "{} (prune={prune}): unexpected reports (checker noise): {:#?}",
                plan.name,
                outcome
                    .unexpected
                    .iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn pruning_never_drops_a_planted_bug() {
    // The tentpole soundness claim, stated directly: every planted item
    // that is a real defect keeps its full report count when pruning is
    // on; only the correlated-branch false-positive class shrinks.
    for (i, plan) in PLANS.iter().enumerate() {
        let proto = generate(plan, DEFAULT_SEED.wrapping_add(i as u64));
        for p in &proto.manifest {
            if p.kind == PlantedKind::FalsePositive {
                continue;
            }
            assert_eq!(
                p.expected(true),
                p.expected(false),
                "{}: {} in {} must not be prunable",
                plan.name,
                p.checker,
                p.function
            );
        }
    }
}

#[test]
fn pruning_cuts_false_positives_and_summaries_cut_them_further() {
    // Paper totals: 69 planted false-positive reports across Tables 2-6,
    // plus the two helper-hidden demonstration sites for the summary
    // engine (length assigned in a helper, free hidden in a wrapper),
    // for 71. The feasibility analysis refutes the 24 that ride on
    // correlated branches (22 buffer-management, 2 msglen), leaving 47.
    // Call-site resolution removes the 16 helper-hidden ones (14
    // un-annotated write-back subroutines plus the 2 demonstration
    // sites), leaving 31 — below the paper's 45. The symbolic refutation
    // pass then demotes the 25 with linearly infeasible guard
    // correlations (14 directory abstraction + 3 directory speculative +
    // 8 send-wait), leaving the 6 honest false positives no path-local
    // analysis can remove.
    let mut unpruned = 0;
    let mut pruned = 0;
    let mut interproc = 0;
    let mut refute = 0;
    for (i, plan) in PLANS.iter().enumerate() {
        let proto = generate(plan, DEFAULT_SEED.wrapping_add(i as u64));
        for p in &proto.manifest {
            if p.kind == PlantedKind::FalsePositive {
                unpruned += p.expected(false);
                pruned += p.expected(true);
                interproc += p.expected_full(true, true, false);
                refute += p.expected_full(true, true, true);
            }
        }
    }
    assert_eq!(unpruned, 71);
    assert_eq!(pruned, 47);
    assert_eq!(interproc, 31);
    assert_eq!(refute, 6);
}

#[test]
fn interproc_never_drops_a_planted_bug() {
    // Summaries may only remove false positives: every planted bug,
    // incident, and minor violation keeps its full report count when
    // call-site resolution is on.
    for (i, plan) in PLANS.iter().enumerate() {
        let proto = generate(plan, DEFAULT_SEED.wrapping_add(i as u64));
        for p in &proto.manifest {
            if p.kind == PlantedKind::FalsePositive {
                continue;
            }
            assert_eq!(
                p.expected_full(true, true, false),
                p.expected(true),
                "{}: {} in {} must not be interproc-resolvable",
                plan.name,
                p.checker,
                p.function
            );
        }
    }
}

#[test]
fn refutation_never_drops_a_planted_bug() {
    // The refutation pass may only remove false positives: every planted
    // bug, incident, and minor violation keeps its full report count when
    // symbolic refutation is on.
    for (i, plan) in PLANS.iter().enumerate() {
        let proto = generate(plan, DEFAULT_SEED.wrapping_add(i as u64));
        for p in &proto.manifest {
            if p.kind == PlantedKind::FalsePositive {
                continue;
            }
            assert_eq!(
                p.expected_full(true, true, true),
                p.expected_full(true, true, false),
                "{}: {} in {} must not be refutable",
                plan.name,
                p.checker,
                p.function
            );
        }
    }
}

#[test]
fn refutation_matches_the_manifest_end_to_end() {
    // The fourth FP-ladder rung, proven against ground truth: with
    // pruning, call-site resolution, and symbolic refutation all on, the
    // reports that survive (verdict != refuted) match exactly the
    // manifest's refute-column expectations — every planted bug is still
    // found, every refutable false positive is demoted, and nothing else
    // is touched.
    for (i, plan) in PLANS.iter().enumerate() {
        let proto = generate(plan, DEFAULT_SEED.wrapping_add(i as u64));
        let mut driver = Driver::new();
        driver.prune(true).interproc(true).refute(true);
        all_checkers(&mut driver, &proto.spec).unwrap();
        let reports = driver.check_sources(&proto.sources()).unwrap();
        let kept: Vec<_> = reports
            .into_iter()
            .filter(|r| r.verdict != Verdict::Refuted)
            .collect();
        let outcome = evaluate_full(&proto, &kept, true, true, true);
        assert!(
            outcome.missed.is_empty(),
            "{}: refutation dropped planted defects: {:#?}",
            plan.name,
            outcome.missed
        );
        assert!(
            outcome.unexpected.is_empty(),
            "{}: reports survived that the refutation pass should demote: {:#?}",
            plan.name,
            outcome
                .unexpected
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn interproc_witness_splice_refutes_through_the_helper() {
    // The helper-correlated abstraction sites: the `nak = credit - debit`
    // assignment lives in a straight-line helper in the same file, so the
    // witness refutes only because the symbolic executor inlines the
    // callee. Both the planted marker and the actual verdict are checked.
    let mut spliced = 0;
    for (i, plan) in PLANS.iter().enumerate() {
        let proto = generate(plan, DEFAULT_SEED.wrapping_add(i as u64));
        let sites: Vec<_> = proto
            .manifest
            .iter()
            .filter(|p| p.note.contains("interproc splice"))
            .cloned()
            .collect();
        assert_eq!(
            sites.len(),
            usize::from(plan.dir_fp_abstraction >= 2),
            "{}: one helper-spliced site iff two or more abstraction sites",
            plan.name
        );
        if sites.is_empty() {
            continue;
        }
        spliced += sites.len();
        let mut driver = Driver::new();
        driver.refute(true);
        all_checkers(&mut driver, &proto.spec).unwrap();
        let reports = driver.check_sources(&proto.sources()).unwrap();
        for site in &sites {
            let got: Vec<_> = reports
                .iter()
                .filter(|r| r.checker == site.checker && r.function == site.function)
                .collect();
            assert_eq!(got.len(), 1, "{}: {}", plan.name, site.function);
            assert_eq!(
                got[0].verdict,
                Verdict::Refuted,
                "{}: {} must refute through the inlined helper",
                plan.name,
                site.function
            );
        }
    }
    assert_eq!(spliced, 3, "bitvector, dyn_ptr, and rac carry one each");
}

#[test]
fn per_checker_tallies_match_the_paper() {
    // The paper's xg++ had no feasibility pruning, so the table
    // reproduction runs with pruning off.
    // (checker, [bitvector, dyn_ptr, sci, coma, rac, common]) expected
    // error counts, straight from Tables 2-6 and §7.
    let expected_errors: &[(&str, [usize; 6])] = &[
        ("wait_for_db", [4, 0, 0, 0, 0, 0]),
        ("msglen_check", [3, 7, 0, 0, 8, 0]),
        ("buffer_mgmt", [2, 2, 3, 0, 2, 0]),
        ("lanes", [1, 1, 0, 0, 0, 0]),
        ("exec_restrict", [2, 4, 0, 3, 2, 0]),
        ("alloc_check", [0, 0, 0, 0, 0, 0]),
        ("directory", [1, 0, 0, 0, 0, 0]),
        ("send_wait", [0, 0, 0, 0, 0, 0]),
    ];
    // On top of the paper's counts, dyn_ptr carries the one
    // helper-assigned-length msglen site and sci the one free-wrapper
    // buffer site — the summary-engine demonstration sites, which an
    // xg++-style local run reports like any other false positive.
    let expected_fps: &[(&str, [usize; 6])] = &[
        ("wait_for_db", [0, 0, 0, 0, 0, 1]),
        ("msglen_check", [0, 1, 0, 2, 0, 0]),
        ("buffer_mgmt", [1, 3, 11, 0, 4, 7]),
        ("lanes", [0, 0, 0, 0, 0, 0]),
        ("alloc_check", [0, 2, 0, 0, 0, 0]),
        ("directory", [3, 13, 1, 5, 9, 0]),
        ("send_wait", [2, 2, 0, 0, 2, 2]),
    ];
    for (i, plan) in PLANS.iter().enumerate() {
        let proto = generate(plan, DEFAULT_SEED.wrapping_add(i as u64));
        let reports = run_suite(&proto, false);
        let outcome = evaluate_with(&proto, &reports, false);
        for (checker, counts) in expected_errors {
            let t = tally(&outcome, checker);
            let errors = t.errors;
            assert_eq!(
                errors, counts[i],
                "{}: {checker} errors (got {errors}, want {})",
                plan.name, counts[i]
            );
        }
        for (checker, counts) in expected_fps {
            let t = tally(&outcome, checker);
            assert_eq!(
                t.false_positives, counts[i],
                "{}: {checker} false positives",
                plan.name
            );
        }
    }
}

#[test]
fn refcount_incident_found_once_in_bitvector() {
    let proto = generate(&PLANS[0], DEFAULT_SEED);
    let reports = run_suite(&proto, true);
    let incident: Vec<_> = reports
        .iter()
        .filter(|r| r.checker == "refcount_bump")
        .collect();
    assert_eq!(incident.len(), 1);
}

#[test]
fn annotations_planted_and_silent() {
    for (i, plan) in PLANS.iter().enumerate() {
        let proto = generate(plan, DEFAULT_SEED.wrapping_add(i as u64));
        let planted_annotations = proto
            .manifest
            .iter()
            .filter(|p| p.kind == PlantedKind::Annotation)
            .count();
        assert_eq!(planted_annotations, plan.buf_annotations, "{}", plan.name);
        // Count annotation calls in the source.
        let calls: usize = proto
            .files
            .iter()
            .map(|f| {
                f.source.matches("no_free_needed()").count()
                    + f.source.matches("has_buffer()").count()
            })
            .sum();
        assert_eq!(
            calls, plan.buf_annotations,
            "{} annotation calls",
            plan.name
        );
    }
}
