//! Property test: manifest exactness is seed-independent. Whatever seed
//! the generator runs with, the checker suite finds every planted defect
//! and nothing else.

use mc_checkers::all_checkers;
use mc_corpus::eval::evaluate;
use mc_corpus::{generate, plan::plan_for};
use mc_driver::Driver;
use proptest::prelude::*;

proptest! {
    // Each case checks an ~10 kLOC protocol; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn bitvector_manifest_exact_for_any_seed(seed in any::<u64>()) {
        let proto = generate(plan_for("bitvector").unwrap(), seed);
        let mut driver = Driver::new();
        all_checkers(&mut driver, &proto.spec).unwrap();
        let reports = driver.check_sources(&proto.sources()).unwrap();
        let outcome = evaluate(&proto, &reports);
        prop_assert!(outcome.missed.is_empty(), "missed: {:#?}", outcome.missed);
        prop_assert!(
            outcome.unexpected.is_empty(),
            "unexpected: {:#?}",
            outcome.unexpected.iter().map(|r| r.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sci_manifest_exact_for_any_seed(seed in any::<u64>()) {
        let proto = generate(plan_for("sci").unwrap(), seed);
        let mut driver = Driver::new();
        all_checkers(&mut driver, &proto.spec).unwrap();
        let reports = driver.check_sources(&proto.sources()).unwrap();
        let outcome = evaluate(&proto, &reports);
        prop_assert!(outcome.missed.is_empty());
        prop_assert!(
            outcome.unexpected.is_empty(),
            "unexpected: {:#?}",
            outcome.unexpected.iter().map(|r| r.to_string()).collect::<Vec<_>>()
        );
    }
}
