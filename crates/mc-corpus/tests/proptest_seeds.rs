//! Property tests over random corpus seeds.
//!
//! 1. Manifest exactness is seed-independent: whatever seed the generator
//!    runs with, the checker suite finds every planted defect and nothing
//!    else — with path-feasibility pruning on (the driver default), which
//!    also proves pruning never drops a planted true positive.
//! 2. The two traversal modes agree: on loop-free functions (the whole
//!    corpus), StateSet-with-pruning and Exhaustive-with-pruning produce
//!    identical reports.

use mc_checkers::all_checkers;
use mc_corpus::eval::evaluate;
use mc_corpus::{generate, plan::plan_for, PlantedKind};
use mc_driver::Driver;
use proptest::prelude::*;

fn checked(proto: &mc_corpus::Protocol, mode: mc_cfg::Mode) -> Vec<mc_driver::Report> {
    let mut driver = Driver::new();
    driver.mode = mode;
    all_checkers(&mut driver, &proto.spec).unwrap();
    driver.check_sources(&proto.sources()).unwrap()
}

proptest! {
    // Each case checks an ~10 kLOC protocol; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn bitvector_manifest_exact_for_any_seed(seed in any::<u64>()) {
        let proto = generate(plan_for("bitvector").unwrap(), seed);
        let reports = checked(&proto, mc_cfg::Mode::StateSet);
        let outcome = evaluate(&proto, &reports);
        prop_assert!(outcome.missed.is_empty(), "missed: {:#?}", outcome.missed);
        prop_assert!(
            outcome.unexpected.is_empty(),
            "unexpected: {:#?}",
            outcome.unexpected.iter().map(|r| r.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sci_manifest_exact_for_any_seed(seed in any::<u64>()) {
        let proto = generate(plan_for("sci").unwrap(), seed);
        let reports = checked(&proto, mc_cfg::Mode::StateSet);
        let outcome = evaluate(&proto, &reports);
        prop_assert!(outcome.missed.is_empty());
        prop_assert!(
            outcome.unexpected.is_empty(),
            "unexpected: {:#?}",
            outcome.unexpected.iter().map(|r| r.to_string()).collect::<Vec<_>>()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // coma holds the two planted msglen false positives; with pruning on
    // their slot must stay empty while every real bug keeps its full
    // report count.
    #[test]
    fn coma_pruning_drops_msglen_fps_but_no_bugs(seed in any::<u64>()) {
        let proto = generate(plan_for("coma").unwrap(), seed);
        let reports = checked(&proto, mc_cfg::Mode::StateSet);
        for p in &proto.manifest {
            let in_slot = reports
                .iter()
                .filter(|r| r.checker == p.checker && r.function == p.function)
                .count();
            if p.kind == PlantedKind::FalsePositive && p.checker == "msglen_check" {
                prop_assert_eq!(in_slot, 0, "msglen FP in {} must be pruned", p.function);
            } else if p.kind != PlantedKind::FalsePositive {
                prop_assert!(
                    in_slot >= p.expected_reports,
                    "{}/{} lost reports to pruning: {in_slot} < {}",
                    p.checker, p.function, p.expected_reports
                );
            }
        }
    }

    // Mode equivalence on loop-free functions: the state-set worklist
    // (facts folded into traversal state with a sound join) and the
    // explicit-path stack must refute the same edges and report the same
    // violations. Functions with back edges (the send-wait FP spin
    // loops) are excluded — there the exhaustive bounded revisit and the
    // worklist join legitimately explore different path sets.
    #[test]
    fn state_set_and_exhaustive_agree_with_pruning_on_loop_free_functions(
        seed in any::<u64>()
    ) {
        let proto = generate(plan_for("bitvector").unwrap(), seed);
        let mut driver = Driver::new();
        let units = driver.parse_units(&proto.sources()).unwrap();
        let loopy: std::collections::HashSet<String> = units
            .iter()
            .flat_map(|u| {
                u.unit
                    .functions()
                    .zip(&u.cfgs)
                    .filter(|(_, cfg)| !cfg.back_edges().is_empty())
                    .map(|(f, _)| f.name.clone())
            })
            .collect();
        prop_assert!(loopy.len() < 4, "only the spin-loop FP sites may loop");
        let loop_free = |reports: Vec<mc_driver::Report>| -> Vec<mc_driver::Report> {
            reports
                .into_iter()
                .filter(|r| !loopy.contains(&r.function))
                .collect()
        };
        let state_set = loop_free(checked(&proto, mc_cfg::Mode::StateSet));
        let exhaustive = loop_free(checked(
            &proto,
            mc_cfg::Mode::Exhaustive { max_paths: 1_000_000 },
        ));
        prop_assert_eq!(state_set, exhaustive);
    }
}
