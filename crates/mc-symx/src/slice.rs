//! Backward slicing of a reconstructed witness path.
//!
//! The symbolic executor only needs the statements that can influence the
//! path's branch conditions (the constraints). The slice walks the
//! [`PathOp`] sequence backward from the end, keeping every branch/switch
//! decision and every statement whose definitions can reach a variable the
//! kept suffix reads.
//!
//! The def/use domain is deliberately coarse — three levels:
//!
//! - exact keys (`mc_cfg::feasibility::key_of` lvalues);
//! - *all globals* (a call may write any global, plus any address-taken
//!   local);
//! - *everything* (a store through an unresolvable lvalue like `*p`).
//!
//! Coarseness only ever *keeps more*: dropping a statement the executor
//! would have used to havoc state would be unsound (it could refute a
//! feasible path), so the keep-test errs toward keeping. Slicing is a
//! precision-preserving performance pass, nothing else.

use crate::path::PathOp;
use mc_ast::{Expr, ExprKind, Function, Initializer, Stmt, StmtKind, UnaryOp};
use mc_cfg::feasibility::key_of;
use std::collections::BTreeSet;

/// How much of the path the slice kept.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceStats {
    /// Operations in the reconstructed path.
    pub total_ops: usize,
    /// Operations the executor actually runs.
    pub kept_ops: usize,
}

/// The function's name scope, computed once per analysis: declared locals
/// (including parameters) and address-taken keys. A key whose root segment
/// is a non-escaped local is private to the frame; everything else is
/// global-like (a call may read or write it).
#[derive(Debug, Default)]
pub struct Scope {
    /// Parameter and local-declaration names.
    pub locals: BTreeSet<String>,
    /// Keys that appear under `&` anywhere in the function.
    pub escaped: BTreeSet<String>,
}

impl Scope {
    /// Collects the scope of `func`.
    pub fn of(func: &Function) -> Scope {
        let mut scope = Scope::default();
        for p in &func.params {
            if !p.name.is_empty() {
                scope.locals.insert(p.name.clone());
            }
        }
        for s in &func.body {
            collect_stmt(s, &mut scope);
        }
        scope
    }

    /// Whether `key` (an lvalue key like `h->len` or `gCount`) can be
    /// touched from outside the frame.
    pub fn is_globalish(&self, key: &str) -> bool {
        let root = key.split(['.', '-']).next().unwrap_or(key);
        !self.locals.contains(root) || self.escaped.contains(key) || self.escaped.contains(root)
    }
}

fn collect_stmt(s: &Stmt, scope: &mut Scope) {
    match &s.kind {
        StmtKind::Decl(d) => {
            scope.locals.insert(d.name.clone());
            if let Some(Initializer::Expr(e)) = &d.init {
                collect_expr(e, scope);
            }
        }
        StmtKind::Expr(e) => collect_expr(e, scope),
        StmtKind::Block(body) => body.iter().for_each(|s| collect_stmt(s, scope)),
        StmtKind::If { cond, then, els } => {
            collect_expr(cond, scope);
            collect_stmt(then, scope);
            if let Some(els) = els {
                collect_stmt(els, scope);
            }
        }
        StmtKind::While { cond, body } | StmtKind::DoWhile { body, cond } => {
            collect_expr(cond, scope);
            collect_stmt(body, scope);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(init) = init {
                collect_stmt(init, scope);
            }
            if let Some(cond) = cond {
                collect_expr(cond, scope);
            }
            if let Some(step) = step {
                collect_expr(step, scope);
            }
            collect_stmt(body, scope);
        }
        StmtKind::Switch { scrutinee, cases } => {
            collect_expr(scrutinee, scope);
            for c in cases {
                c.body.iter().for_each(|s| collect_stmt(s, scope));
            }
        }
        StmtKind::Return(Some(e)) => collect_expr(e, scope),
        StmtKind::Label(_, inner) => collect_stmt(inner, scope),
        StmtKind::Empty
        | StmtKind::Break
        | StmtKind::Continue
        | StmtKind::Return(None)
        | StmtKind::Goto(_) => {}
    }
}

fn collect_expr(e: &Expr, scope: &mut Scope) {
    if let ExprKind::Unary {
        op: UnaryOp::AddrOf,
        operand,
    } = &e.kind
    {
        if let Some(k) = key_of(operand) {
            scope.escaped.insert(k);
        }
    }
    for_each_child(e, &mut |c| collect_expr(c, scope));
}

/// Visits every direct subexpression of `e`.
pub fn for_each_child(e: &Expr, f: &mut dyn FnMut(&Expr)) {
    match &e.kind {
        ExprKind::IntLit(..)
        | ExprKind::FloatLit(..)
        | ExprKind::CharLit(..)
        | ExprKind::StrLit(..)
        | ExprKind::Ident(..) => {}
        ExprKind::Call { callee, args } => {
            f(callee);
            args.iter().for_each(&mut *f);
        }
        ExprKind::Binary { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Unary { operand, .. } | ExprKind::Postfix { operand, .. } => f(operand),
        ExprKind::Assign { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        ExprKind::Ternary { cond, then, els } => {
            f(cond);
            f(then);
            f(els);
        }
        ExprKind::Index { base, index } => {
            f(base);
            f(index);
        }
        ExprKind::Member { base, .. } => f(base),
        ExprKind::Cast { expr, .. } => f(expr),
        ExprKind::Comma(a, b) => {
            f(a);
            f(b);
        }
        ExprKind::SizeofType(_) | ExprKind::Wildcard(_) => {}
    }
}

/// Definitions and uses of one statement, in the coarse three-level domain.
#[derive(Debug, Default)]
struct DefUse {
    defs: BTreeSet<String>,
    uses: BTreeSet<String>,
    /// A call occurred: defines and uses every global-like key.
    touches_globals: bool,
    /// A store through an unresolvable lvalue: defines everything.
    defs_all: bool,
}

fn scan_expr(e: &Expr, du: &mut DefUse) {
    match &e.kind {
        ExprKind::Ident(name) => {
            // Manifest-constant names (`key_of == None`) count as uses
            // too: a SHOUTING-named global may still be written, and the
            // havocking store/call must survive the slice for reads on
            // either side of it to be decided soundly.
            du.uses.insert(name.clone());
        }
        ExprKind::Member { base, .. } => {
            if let Some(k) = key_of(e) {
                du.uses.insert(k);
            } else {
                scan_expr(base, du);
            }
        }
        ExprKind::Assign { op, lhs, rhs } => {
            scan_expr(rhs, du);
            match key_of(lhs) {
                Some(k) => {
                    if op.is_some() {
                        du.uses.insert(k.clone());
                    }
                    du.defs.insert(k);
                }
                None => {
                    // `*p = …`, `a[i] = …`: unknown target.
                    du.defs_all = true;
                    scan_expr(lhs, du);
                }
            }
        }
        ExprKind::Unary {
            op: UnaryOp::PreInc | UnaryOp::PreDec,
            operand,
        } => match key_of(operand) {
            Some(k) => {
                du.uses.insert(k.clone());
                du.defs.insert(k);
            }
            None => {
                du.defs_all = true;
                scan_expr(operand, du);
            }
        },
        ExprKind::Postfix { operand, .. } => match key_of(operand) {
            Some(k) => {
                du.uses.insert(k.clone());
                du.defs.insert(k);
            }
            None => {
                du.defs_all = true;
                scan_expr(operand, du);
            }
        },
        ExprKind::Call { args, .. } => {
            du.touches_globals = true;
            args.iter().for_each(|a| scan_expr(a, du));
        }
        _ => for_each_child(e, &mut |c| scan_expr(c, du)),
    }
}

fn def_use_of(stmt: &Stmt) -> DefUse {
    let mut du = DefUse::default();
    match &stmt.kind {
        StmtKind::Expr(e) => scan_expr(e, &mut du),
        StmtKind::Decl(d) => {
            du.defs.insert(d.name.clone());
            if let Some(Initializer::Expr(e)) = &d.init {
                scan_expr(e, &mut du);
            }
        }
        _ => {}
    }
    du
}

/// What the kept suffix still needs, walking backward.
#[derive(Debug, Default)]
struct Relevant {
    keys: BTreeSet<String>,
    /// A kept statement calls out: every global-like key is relevant.
    all_globals: bool,
}

/// Slices `ops` backward to the statements that can influence its branch
/// and switch conditions. Decisions themselves are always kept.
pub fn backward_slice(ops: &[PathOp], scope: &Scope) -> (Vec<PathOp>, SliceStats) {
    let mut rel = Relevant::default();
    let mut keep = vec![false; ops.len()];
    for (i, op) in ops.iter().enumerate().rev() {
        match op {
            PathOp::Branch { cond, .. } => {
                keep[i] = true;
                let mut du = DefUse::default();
                scan_expr(cond, &mut du);
                rel.keys.extend(du.uses);
                rel.all_globals |= du.touches_globals;
            }
            PathOp::Case {
                scrutinee,
                arm,
                excluded,
            } => {
                keep[i] = true;
                let mut du = DefUse::default();
                scan_expr(scrutinee, &mut du);
                if let Some(arm) = arm {
                    scan_expr(arm, &mut du);
                }
                excluded.iter().for_each(|e| scan_expr(e, &mut du));
                rel.keys.extend(du.uses);
                rel.all_globals |= du.touches_globals;
            }
            PathOp::Return => keep[i] = true,
            PathOp::Stmt(stmt) => {
                let du = def_use_of(stmt);
                let hits_keys = du.defs.iter().any(|k| rel.keys.contains(k))
                    || (rel.all_globals && du.defs.iter().any(|k| scope.is_globalish(k)));
                let hits_globals = du.touches_globals
                    && (rel.all_globals || rel.keys.iter().any(|k| scope.is_globalish(k)));
                let hits_all = du.defs_all && (rel.all_globals || !rel.keys.is_empty());
                if hits_keys || hits_globals || hits_all {
                    keep[i] = true;
                    // Only exact single-key defs kill; the coarse levels are
                    // may-defs and must not remove relevance.
                    if !du.defs_all && !du.touches_globals {
                        for d in &du.defs {
                            rel.keys.remove(d);
                        }
                    }
                    rel.keys.extend(du.uses);
                    rel.all_globals |= du.touches_globals;
                }
            }
        }
    }
    let kept: Vec<PathOp> = ops
        .iter()
        .zip(&keep)
        .filter(|(_, k)| **k)
        .map(|(op, _)| op.clone())
        .collect();
    let stats = SliceStats {
        total_ops: ops.len(),
        kept_ops: kept.len(),
    };
    (kept, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mc_ast::{parse_expr, parse_stmt};

    fn stmt(src: &str) -> PathOp {
        PathOp::Stmt(parse_stmt(src).expect("stmt"))
    }

    fn branch(src: &str, taken: bool) -> PathOp {
        PathOp::Branch {
            cond: parse_expr(src).expect("cond"),
            taken,
        }
    }

    #[test]
    fn unrelated_stores_are_sliced_away() {
        let ops = vec![
            stmt("gNoise = 7;"),
            stmt("gNak = gCredit - gDebit;"),
            branch("gCredit == gDebit", true),
            branch("gNak > 0", true),
        ];
        let (kept, stats) = backward_slice(&ops, &Scope::default());
        assert_eq!(stats.total_ops, 4);
        assert_eq!(stats.kept_ops, 3, "kept: {kept:?}");
        assert!(matches!(&kept[0], PathOp::Stmt(s)
            if matches!(&s.kind, StmtKind::Expr(e)
                if matches!(&e.kind, ExprKind::Assign { lhs, .. }
                    if key_of(lhs).as_deref() == Some("gNak")))));
    }

    #[test]
    fn transitive_dependencies_are_kept() {
        let ops = vec![stmt("a = gIn;"), stmt("b = a + 1;"), branch("b > 0", true)];
        let (_, stats) = backward_slice(&ops, &Scope::default());
        assert_eq!(stats.kept_ops, 3);
    }

    #[test]
    fn calls_stay_when_globals_are_relevant() {
        let ops = vec![stmt("HOOK();"), branch("gCount > 0", true)];
        let (_, stats) = backward_slice(&ops, &Scope::default());
        // The call may write gCount: it must survive the slice.
        assert_eq!(stats.kept_ops, 2);
    }

    #[test]
    fn calls_drop_when_only_locals_are_relevant() {
        let mut scope = Scope::default();
        scope.locals.insert("x".into());
        let ops = vec![stmt("HOOK();"), stmt("x = 3;"), branch("x > 0", true)];
        let (kept, stats) = backward_slice(&ops, &scope);
        assert_eq!(stats.kept_ops, 2, "kept: {kept:?}");
    }
}
