//! Witness-path reconstruction: turn a report's rendered [`PathStep`] chain
//! back into the sequence of statements, branch decisions, and switch
//! dispatches it took through the function's CFG.
//!
//! The traversal engine records witness steps as `(span, note)` pairs (see
//! `mc-cfg/src/witness.rs`); the CFG itself is not serialized with them. The
//! reconstruction re-walks [`Cfg::build`]'s graph and matches steps
//! one-to-one against what the engine would have emitted:
//!
//! - every block node emits a `"statement"` step at the statement's span;
//! - summarized calls emit ``"call `f`"`` steps right after their containing
//!   statement (or right before the terminator step, for calls inside the
//!   terminator expression) — they are consumed as markers, since the
//!   executor rediscovers calls in the expressions themselves;
//! - `Branch` terminators emit `"branch taken"`/`"branch not taken"` at the
//!   condition's span, which makes the reconstruction deterministic;
//! - `Switch` terminators emit `"switch case"` at the scrutinee's span
//!   *without naming the arm* — the only nondeterminism, resolved by
//!   backtracking over the labeled targets under a small budget; when
//!   more than one labeled arm reconstructs (multi-label fall-through),
//!   the dispatching value is ambiguous and recorded without an arm
//!   equality;
//! - `Jump` terminators emit nothing and are followed silently.
//!
//! Anything that does not reconstruct exactly — foreign-file steps from an
//! interprocedural splice, lane-counter trace notes, a span mismatch, a
//! budget blow-up — yields `None`, which the caller maps to
//! [`Verdict::Unknown`]: a path we cannot replay symbolically is never
//! refuted.
//!
//! [`Verdict::Unknown`]: crate::Verdict::Unknown

use mc_ast::{Expr, Span, Stmt};
use mc_cfg::{BlockId, Cfg, PathStep, Terminator};

/// One operation of the reconstructed path, in execution order.
#[derive(Debug, Clone)]
pub enum PathOp {
    /// A straight-line statement was executed.
    Stmt(Stmt),
    /// `cond` was evaluated and the `taken` edge followed.
    Branch {
        /// The branch condition.
        cond: Expr,
        /// `true` for the then-edge.
        taken: bool,
    },
    /// A switch dispatched on `scrutinee`.
    Case {
        /// The switched expression.
        scrutinee: Expr,
        /// `Some(v)` when exactly one labeled arm reconstructs the rest of
        /// the witness (implies `scrutinee == v`). `None` either for the
        /// default/fallthrough edge (see `excluded`) or when *several*
        /// labeled arms reconstruct — multi-label fall-through like
        /// `case 1: case 2: body;` chains the arms to the same block, so
        /// the step chain cannot say which value dispatched and no arm
        /// equality may be asserted.
        arm: Option<Expr>,
        /// For the default edge: the labeled values that did *not* match
        /// (each implies `scrutinee != v`). Empty for labeled arms,
        /// ambiguous or not.
        excluded: Vec<Expr>,
    },
    /// The function returned.
    Return,
}

/// Parsed form of one witness step note.
enum Ev {
    Stmt(Span),
    Branch(Span, bool),
    Case(Span),
    CaseDefault(Span),
    Return(Span),
    Call,
}

/// Parses rendered steps back into events. `None` when any step is foreign
/// (non-empty file: interprocedural splice into another unit) or carries a
/// note the traversal engine does not emit (lane-counter traces).
fn parse_steps(steps: &[PathStep]) -> Option<Vec<Ev>> {
    steps
        .iter()
        .map(|s| {
            if !s.file.is_empty() {
                return None;
            }
            Some(match s.note.as_str() {
                "statement" => Ev::Stmt(s.span),
                "branch taken" => Ev::Branch(s.span, true),
                "branch not taken" => Ev::Branch(s.span, false),
                "switch case" => Ev::Case(s.span),
                "switch default" => Ev::CaseDefault(s.span),
                "return" => Ev::Return(s.span),
                note if note.starts_with("call `") && note.ends_with('`') => Ev::Call,
                _ => return None,
            })
        })
        .collect()
}

/// Node-visit budget for the backtracking walk. Witness paths are a few
/// hundred steps; the budget only matters for adversarial switch nests.
const BUDGET: usize = 100_000;

struct Recon<'a> {
    cfg: &'a Cfg,
    evs: Vec<Ev>,
    budget: usize,
}

/// Reconstructs `steps` through `cfg`. `None` means the path cannot be
/// replayed symbolically (foreign steps, mismatch, or budget exhausted).
pub fn reconstruct(cfg: &Cfg, steps: &[PathStep]) -> Option<Vec<PathOp>> {
    let evs = parse_steps(steps)?;
    let mut r = Recon {
        cfg,
        evs,
        budget: BUDGET,
    };
    let mut ops = Vec::new();
    if r.walk(cfg.entry, 0, &mut ops) {
        Some(ops)
    } else {
        None
    }
}

impl Recon<'_> {
    /// Consumes `"call"` marker events at `pos`. Returns the next position.
    fn skip_calls(&self, mut pos: usize) -> usize {
        while matches!(self.evs.get(pos), Some(Ev::Call)) {
            pos += 1;
        }
        pos
    }

    /// Matches events from `pos` onward starting at `block`. On success the
    /// consumed operations are appended to `ops`; on failure `ops` is
    /// restored to its incoming length.
    fn walk(&mut self, block: BlockId, mut pos: usize, ops: &mut Vec<PathOp>) -> bool {
        let mark = ops.len();
        if self.budget == 0 {
            return false;
        }
        self.budget -= 1;
        // The witness ends at the violation event, anywhere in the graph.
        if pos >= self.evs.len() {
            return true;
        }
        let b = &self.cfg.blocks[block.0];
        for node in &b.nodes {
            match self.evs.get(pos) {
                Some(Ev::Stmt(span)) if *span == node.stmt.span => {
                    ops.push(PathOp::Stmt(node.stmt.clone()));
                    pos += 1;
                }
                Some(_) => {
                    ops.truncate(mark);
                    return false;
                }
                None => return true,
            }
            // Summarized calls inside the statement fire right after it.
            pos = self.skip_calls(pos);
            if pos >= self.evs.len() {
                return true;
            }
        }
        // Calls inside the terminator expression fire before its step.
        pos = self.skip_calls(pos);
        if pos >= self.evs.len() {
            return true;
        }
        let ok = match &b.term {
            Terminator::Jump(t) => self.walk(*t, pos, ops),
            Terminator::Branch {
                cond,
                then_to,
                else_to,
            } => match self.evs.get(pos) {
                Some(Ev::Branch(span, taken)) if *span == cond.span => {
                    let taken = *taken;
                    ops.push(PathOp::Branch {
                        cond: cond.clone(),
                        taken,
                    });
                    let next = if taken { *then_to } else { *else_to };
                    self.walk(next, pos + 1, ops)
                }
                _ => false,
            },
            Terminator::Switch {
                scrutinee,
                targets,
                fallthrough,
            } => match self.evs.get(pos) {
                Some(Ev::Case(span)) if *span == scrutinee.span => {
                    // The arm is not recorded in the step: try each labeled
                    // target. If exactly one reconstructs, the arm equality
                    // holds; if several do (multi-label fall-through arms
                    // chain to the same block, so their step chains are
                    // identical), the dispatching value is ambiguous and no
                    // equality may be asserted — committing to the first
                    // match could refute a path that actually dispatched on
                    // a later label.
                    let mut matched: Vec<(Expr, Vec<PathOp>)> = Vec::new();
                    for (value, target) in targets {
                        let Some(value) = value else { continue };
                        let mut arm_ops = Vec::new();
                        if self.walk(*target, pos + 1, &mut arm_ops) {
                            matched.push((value.clone(), arm_ops));
                            if matched.len() > 1 {
                                break;
                            }
                        }
                    }
                    match matched.len() {
                        0 => false,
                        n => {
                            let (value, arm_ops) = matched.swap_remove(0);
                            ops.push(PathOp::Case {
                                scrutinee: scrutinee.clone(),
                                arm: (n == 1).then_some(value),
                                excluded: Vec::new(),
                            });
                            ops.extend(arm_ops);
                            true
                        }
                    }
                }
                Some(Ev::CaseDefault(span)) if *span == scrutinee.span => {
                    let target = targets
                        .iter()
                        .find(|(v, _)| v.is_none())
                        .map(|(_, t)| *t)
                        .unwrap_or(*fallthrough);
                    ops.push(PathOp::Case {
                        scrutinee: scrutinee.clone(),
                        arm: None,
                        excluded: targets.iter().filter_map(|(v, _)| v.clone()).collect(),
                    });
                    self.walk(target, pos + 1, ops)
                }
                _ => false,
            },
            Terminator::Return { span, .. } => match self.evs.get(pos) {
                Some(Ev::Return(s)) if s == span => {
                    ops.push(PathOp::Return);
                    // Nothing executes after the return.
                    pos + 1 >= self.evs.len()
                }
                _ => false,
            },
        };
        if !ok {
            ops.truncate(mark);
        }
        ok
    }
}

/// Renders the steps the traversal engine would emit along one concrete
/// path: `dirs` is consumed at each `Branch` (0 = else, 1 = then) and
/// `Switch` (labeled-arm index, or -1 for the default edge); the walk stops
/// when `dirs` runs out or the function returns. Test-only: production
/// witnesses come from the engine itself.
#[cfg(test)]
pub(crate) fn trace(cfg: &Cfg, dirs: &[isize]) -> Vec<PathStep> {
    use mc_cfg::StepKind;
    let mut out = Vec::new();
    let mut block = cfg.entry;
    let mut di = 0;
    loop {
        let b = &cfg.blocks[block.0];
        for n in &b.nodes {
            out.push(PathStep::new(n.stmt.span, StepKind::Stmt.note()));
        }
        match &b.term {
            Terminator::Jump(t) => block = *t,
            Terminator::Branch {
                cond,
                then_to,
                else_to,
            } => {
                if di >= dirs.len() {
                    return out;
                }
                let taken = dirs[di] != 0;
                di += 1;
                out.push(PathStep::new(cond.span, StepKind::Branch(taken).note()));
                block = if taken { *then_to } else { *else_to };
            }
            Terminator::Switch {
                scrutinee,
                targets,
                fallthrough,
            } => {
                if di >= dirs.len() {
                    return out;
                }
                let d = dirs[di];
                di += 1;
                if d < 0 {
                    out.push(PathStep::new(scrutinee.span, StepKind::CaseDefault.note()));
                    block = targets
                        .iter()
                        .find(|(v, _)| v.is_none())
                        .map(|(_, t)| *t)
                        .unwrap_or(*fallthrough);
                } else {
                    let labeled: Vec<&(Option<Expr>, BlockId)> =
                        targets.iter().filter(|(v, _)| v.is_some()).collect();
                    out.push(PathStep::new(scrutinee.span, StepKind::Case.note()));
                    block = labeled[d as usize].1;
                }
            }
            Terminator::Return { span, .. } => {
                out.push(PathStep::new(*span, StepKind::Return.note()));
                return out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn cfg_of(src: &str, name: &str) -> Cfg {
        let unit = mc_ast::parse_translation_unit(src, "test.c").expect("parse");
        let f = unit.function(name).expect("function");
        Cfg::build(f)
    }

    fn steps(evs: &[(u32, u32, &str)]) -> Vec<PathStep> {
        evs.iter()
            .map(|(l, c, n)| PathStep::new(Span { line: *l, col: *c }, *n))
            .collect()
    }

    #[test]
    fn straight_line_path_reconstructs() {
        let cfg = cfg_of("void f(void) {\n  int x;\n  x = 1;\n}\n", "f");
        // Spans: decl at 2:3, assignment at 3:3.
        let ops = reconstruct(&cfg, &steps(&[(2, 3, "statement"), (3, 3, "statement")]))
            .expect("reconstruct");
        assert_eq!(ops.len(), 2);
        assert!(matches!(ops[0], PathOp::Stmt(_)));
    }

    #[test]
    fn branch_steps_select_the_edge() {
        let src = "void f(void) {\n  int x;\n  if (x > 0) {\n    x = 1;\n  } else {\n    x = 2;\n  }\n}\n";
        let cfg = cfg_of(src, "f");
        let taken = reconstruct(&cfg, &trace(&cfg, &[1])).expect("taken edge");
        assert!(matches!(taken[1], PathOp::Branch { taken: true, .. }));
        let not_taken = reconstruct(&cfg, &trace(&cfg, &[0])).expect("else edge");
        assert!(matches!(not_taken[1], PathOp::Branch { taken: false, .. }));
        // Corrupting a statement span after the edge is a mismatch.
        let mut bad = trace(&cfg, &[1]);
        let idx = bad.len() - 2; // the then-block statement
        assert_eq!(bad[idx].note, "statement");
        bad[idx].span = Span { line: 6, col: 5 };
        assert!(reconstruct(&cfg, &bad).is_none());
    }

    #[test]
    fn switch_arms_resolve_by_backtracking() {
        let src = "void f(int m) {\n  switch (m) {\n  case 1:\n    m = 10;\n    break;\n  case 2:\n    m = 20;\n    break;\n  }\n}\n";
        let cfg = cfg_of(src, "f");
        let ops = reconstruct(&cfg, &steps(&[(2, 11, "switch case"), (7, 5, "statement")]))
            .expect("case 2 arm");
        match &ops[0] {
            PathOp::Case { arm: Some(v), .. } => {
                assert!(matches!(v.kind, mc_ast::ExprKind::IntLit(2, _)));
            }
            other => panic!("expected labeled case, got {other:?}"),
        }
        // The default edge of a default-less switch excludes both labels.
        let ops = reconstruct(&cfg, &steps(&[(2, 11, "switch default")])).expect("fallthrough");
        match &ops[0] {
            PathOp::Case {
                arm: None,
                excluded,
                ..
            } => assert_eq!(excluded.len(), 2),
            other => panic!("expected default case, got {other:?}"),
        }
    }

    #[test]
    fn multi_label_fallthrough_arms_are_ambiguous() {
        // `case 1:` has an empty body chained by Jump into `case 2:`'s, so
        // both arms reconstruct the same step chain — the dispatching
        // value cannot be recovered and no arm equality may be asserted.
        let src = "void f(int m) {\n  switch (m) {\n  case 1:\n  case 2:\n    m = 20;\n    break;\n  }\n}\n";
        let cfg = cfg_of(src, "f");
        let ops = reconstruct(&cfg, &steps(&[(2, 11, "switch case"), (5, 5, "statement")]))
            .expect("fall-through arms");
        match &ops[0] {
            PathOp::Case {
                arm: None,
                excluded,
                ..
            } => assert!(excluded.is_empty(), "ambiguous case excludes nothing"),
            other => panic!("expected ambiguous case, got {other:?}"),
        }
    }

    #[test]
    fn foreign_and_unknown_steps_bail() {
        let cfg = cfg_of("void f(void) {\n  int x;\n}\n", "f");
        let mut foreign = steps(&[(2, 3, "statement")]);
        foreign[0].file = "other.c".into();
        assert!(reconstruct(&cfg, &foreign).is_none());
        assert!(reconstruct(&cfg, &steps(&[(2, 3, "gBuf in f")])).is_none());
    }

    #[test]
    fn call_markers_are_consumed() {
        let src = "void f(void) {\n  helper();\n  if (helper()) {\n    return;\n  }\n}\n";
        let cfg = cfg_of(src, "f");
        // The engine fires summarized-call steps after their containing
        // statement and before the terminator step; splice them in the way
        // `fire_calls` would.
        let mut with_calls = trace(&cfg, &[1]);
        assert_eq!(with_calls.len(), 3); // stmt, branch, return
        let branch_span = with_calls[1].span;
        with_calls.insert(1, PathStep::new(with_calls[0].span, "call `helper`"));
        with_calls.insert(2, PathStep::new(branch_span, "call `helper`"));
        let ops = reconstruct(&cfg, &with_calls).expect("reconstruct with call markers");
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[2], PathOp::Return));
    }
}
